//! Stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The wormsim workspace builds in fully offline environments where the real
//! `serde_derive` cannot be fetched. The simulator itself never serializes
//! through serde trait machinery (all file output is hand-formatted CSV/JSON),
//! so the derives only need to accept the annotations that appear in the
//! source — including field attributes such as `#[serde(skip)]` — and emit a
//! trivial impl of the shim's marker trait, so bounds like `T: Serialize`
//! keep compiling. If real serialization is ever needed, swap the workspace
//! `serde` dependency back to the crates.io release; no call sites change.
//!
//! Limitation: the marker impl is only emitted for non-generic types (every
//! annotated type in this workspace today). A generic type still compiles
//! with the annotation but gets no marker impl.

use proc_macro::TokenStream;
use proc_macro::TokenTree;

/// Extracts the name of the annotated type, provided it is non-generic.
///
/// Scans only top-level tokens, so `struct`/`enum` inside attribute groups
/// (doc comments, `#[serde(...)]`) cannot be mistaken for the item keyword.
fn non_generic_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(token) = tokens.next() {
        let TokenTree::Ident(ident) = token else {
            continue;
        };
        let keyword = ident.to_string();
        if keyword != "struct" && keyword != "enum" && keyword != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return None;
        };
        // A `<` right after the name means generics: skip the impl rather
        // than guess at bounds without a real parser.
        if let Some(TokenTree::Punct(punct)) = tokens.next() {
            if punct.as_char() == '<' {
                return None;
            }
        }
        return Some(name.to_string());
    }
    None
}

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to a trivial impl of the shim's `Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("marker impl parses"),
        None => TokenStream::new(),
    }
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to a trivial impl of the shim's `Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("marker impl parses"),
        None => TokenStream::new(),
    }
}

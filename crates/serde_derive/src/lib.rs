//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The wormsim workspace builds in fully offline environments where the real
//! `serde_derive` cannot be fetched. The simulator itself never serializes
//! through serde trait machinery (all file output is hand-formatted CSV/JSON),
//! so the derives only need to *accept* the annotations that appear in the
//! source — including field attributes such as `#[serde(skip)]` — and emit
//! nothing. If real serialization is ever needed, swap the workspace `serde`
//! dependency back to the crates.io release; no call sites change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Property-based tests: every traffic pattern's sampler agrees with its
//! declared exact distribution, and distributions are proper.

use proptest::prelude::*;
use wormsim_topology::{NodeId, Topology};
use wormsim_traffic::{SimRng, TrafficConfig};

fn arb_setup() -> impl Strategy<Value = (Topology, TrafficConfig, u32, u64)> {
    let topo = prop_oneof![
        Just(Topology::torus(&[8, 8])),
        Just(Topology::torus(&[16, 16])),
        Just(Topology::mesh(&[8, 8])),
        Just(Topology::torus(&[4, 4, 4])),
    ];
    let config = prop_oneof![
        Just(TrafficConfig::Uniform),
        Just(TrafficConfig::Hotspot {
            nodes: vec![vec![0, 0]],
            fraction: 0.04
        }),
        Just(TrafficConfig::Local { radius: 1 }),
        Just(TrafficConfig::Transpose),
        Just(TrafficConfig::BitReversal),
        Just(TrafficConfig::Complement),
    ];
    (topo, config, any::<u32>(), any::<u64>()).prop_map(|(t, c, src, seed)| {
        let n = t.num_nodes();
        (t, c, src % n, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Destination distributions are proper probability vectors with no
    /// self-traffic.
    #[test]
    fn distributions_are_proper((topo, config, src, _) in arb_setup()) {
        // Hotspot coordinates are 2-D in the strategy; fix for 3-D tori.
        let config = fix_dims(&topo, config);
        let Ok(pattern) = config.build(&topo) else { return Ok(()) };
        let dist = pattern.dest_distribution(NodeId::new(src));
        prop_assert_eq!(dist.len(), topo.num_nodes() as usize);
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        prop_assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert_eq!(dist[src as usize], 0.0);
    }

    /// Sampling never returns the source and always lands on a node with
    /// positive declared probability.
    #[test]
    fn samples_match_support((topo, config, src, seed) in arb_setup()) {
        let config = fix_dims(&topo, config);
        let Ok(pattern) = config.build(&topo) else { return Ok(()) };
        let src = NodeId::new(src);
        let dist = pattern.dest_distribution(src);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..200 {
            let dest = pattern.sample_dest(src, &mut rng);
            prop_assert_ne!(dest, src);
            prop_assert!(
                dist[dest.as_usize()] > 0.0,
                "sampled {:?} with zero declared probability", dest
            );
        }
    }

    /// Hop-class weights are a proper distribution whose mean matches the
    /// declared mean distance.
    #[test]
    fn hop_class_weights_are_proper((topo, config, _, _) in arb_setup()) {
        let config = fix_dims(&topo, config);
        let Ok(pattern) = config.build(&topo) else { return Ok(()) };
        let weights = pattern.hop_class_weights(&topo);
        let total: f64 = weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(weights[0], 0.0, "no zero-hop messages");
        let mean: f64 = weights.iter().enumerate().map(|(h, w)| h as f64 * w).sum();
        prop_assert!((mean - pattern.mean_distance(&topo)).abs() < 1e-9);
    }
}

/// The strategy hard-codes 2-D hotspot coordinates; pad or truncate to the
/// topology's dimensionality so higher-dimensional cases stay exercised.
fn fix_dims(topo: &Topology, config: TrafficConfig) -> TrafficConfig {
    match config {
        TrafficConfig::Hotspot { nodes, fraction } => TrafficConfig::Hotspot {
            nodes: nodes
                .into_iter()
                .map(|mut coords| {
                    coords.resize(topo.num_dims(), 0);
                    coords
                })
                .collect(),
            fraction,
        },
        other => other,
    }
}

//! Uniform random traffic.

use crate::{SimRng, TrafficPattern};
use wormsim_topology::{NodeId, Topology};

/// Uniform traffic: every other node is an equally likely destination.
///
/// The paper motivates it as "representative of the traffic generated in
/// massively parallel computations in which array data are distributed
/// among the nodes using hashing techniques".
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_traffic::{Uniform, TrafficPattern, SimRng};
///
/// let topo = Topology::torus(&[16, 16]);
/// let uniform = Uniform::new(&topo);
/// let mut rng = SimRng::seed_from(1);
/// let dest = uniform.sample_dest(topo.node_at(&[0, 0]), &mut rng);
/// assert_ne!(dest, topo.node_at(&[0, 0]));
/// ```
#[derive(Clone, Debug)]
pub struct Uniform {
    num_nodes: u32,
}

impl Uniform {
    /// Builds uniform traffic for `topo`.
    pub fn new(topo: &Topology) -> Self {
        Uniform {
            num_nodes: topo.num_nodes(),
        }
    }
}

impl TrafficPattern for Uniform {
    fn name(&self) -> String {
        "uniform".to_owned()
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        let r = rng.uniform_below(self.num_nodes - 1);
        // Skip over the source index to exclude self-traffic without bias.
        NodeId::new(if r >= src.index() { r + 1 } else { r })
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        let p = 1.0 / (self.num_nodes - 1) as f64;
        let mut dist = vec![p; self.num_nodes as usize];
        dist[src.as_usize()] = 0.0;
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_samples_self_and_covers_everything() {
        let topo = Topology::torus(&[4, 4]);
        let uniform = Uniform::new(&topo);
        let src = NodeId::new(7);
        let mut rng = SimRng::seed_from(2);
        let mut seen = [false; 16];
        for _ in 0..2_000 {
            let d = uniform.sample_dest(src, &mut rng);
            assert_ne!(d, src);
            seen[d.as_usize()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn mean_distance_matches_topology() {
        let topo = Topology::torus(&[16, 16]);
        let uniform = Uniform::new(&topo);
        assert!((uniform.mean_distance(&topo) - topo.uniform_avg_distance()).abs() < 1e-9);
    }

    #[test]
    fn hop_class_weights_match_distance_distribution() {
        let topo = Topology::torus(&[8, 8]);
        let uniform = Uniform::new(&topo);
        let weights = uniform.hop_class_weights(&topo);
        let exact = topo.uniform_distance_distribution();
        for (h, &w) in weights.iter().enumerate() {
            assert!((w - exact.weight(h)).abs() < 1e-9, "hop class {h}");
        }
    }
}

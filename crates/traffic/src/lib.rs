//! Traffic patterns, arrival processes, and message-length distributions.
//!
//! The ISCA '93 study drives its 16×16 torus with three workloads —
//! **uniform**, **hotspot** (one node receiving ≈11.5× the traffic of any
//! other), and **local** (destinations uniform in a 7×7 neighborhood) —
//! with geometrically distributed message interarrival times and fixed
//! 16-flit messages. This crate implements those three patterns plus the
//! classic permutation workloads (transpose, bit-reversal, complement) the
//! paper cites from Glass & Ni for cross-checks.
//!
//! A [`TrafficPattern`] does two things:
//!
//! * [`sample_dest`](TrafficPattern::sample_dest) — draw a destination for
//!   a newly generated message, and
//! * [`dest_distribution`](TrafficPattern::dest_distribution) — report the
//!   *exact* destination probabilities from a source, from which the
//!   simulator derives hop-class weights for the paper's stratified
//!   latency estimator and the exact mean distance used to convert offered
//!   channel utilization into an injection rate.
//!
//! # Example
//!
//! ```
//! use wormsim_topology::Topology;
//! use wormsim_traffic::{TrafficConfig, SimRng};
//!
//! let topo = Topology::torus(&[16, 16]);
//! let pattern = TrafficConfig::Uniform.build(&topo)?;
//!
//! let mut rng = SimRng::seed_from(42);
//! let src = topo.node_at(&[3, 3]);
//! let dest = pattern.sample_dest(src, &mut rng);
//! assert_ne!(dest, src);
//!
//! // Exact average distance: the paper's 8.03 for uniform 16^2 traffic.
//! let mean = pattern.mean_distance(&topo);
//! assert!((mean - 8.03).abs() < 0.01);
//! # Ok::<(), wormsim_traffic::TrafficError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod error;
mod hotspot;
mod length;
mod local;
mod pattern;
mod permutations;
mod rng;
mod uniform;

pub use arrival::ArrivalProcess;
pub use error::TrafficError;
pub use hotspot::Hotspot;
pub use length::MessageLength;
pub use local::Local;
pub use pattern::{TrafficConfig, TrafficPattern};
pub use permutations::{BitReversal, Complement, Permutation, Transpose};
pub use rng::SimRng;
pub use uniform::Uniform;

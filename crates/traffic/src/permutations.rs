//! Permutation traffic: transpose, bit-reversal, complement, and custom maps.
//!
//! The paper notes that Glass & Ni report north-last beating e-cube "for
//! other types of nonuniform traffic such as matrix transpose"; these
//! patterns make that cross-check runnable.

use crate::{SimRng, TrafficError, TrafficPattern};
use wormsim_topology::{NodeId, Topology};

fn uniform_non_self(num_nodes: u32, src: NodeId, rng: &mut SimRng) -> NodeId {
    let r = rng.uniform_below(num_nodes - 1);
    NodeId::new(if r >= src.index() { r + 1 } else { r })
}

fn fixed_map_distribution(num_nodes: u32, src: NodeId, dest: Option<NodeId>) -> Vec<f64> {
    let n = num_nodes as usize;
    let mut dist = vec![0.0; n];
    match dest {
        Some(d) => dist[d.as_usize()] = 1.0,
        None => {
            // Fixed point of the permutation: fall back to uniform traffic.
            let p = 1.0 / (num_nodes - 1) as f64;
            dist.fill(p);
            dist[src.as_usize()] = 0.0;
        }
    }
    dist
}

/// Matrix-transpose traffic: `(x, y) -> (y, x)`.
///
/// Nodes on the diagonal (fixed points) fall back to uniform destinations.
#[derive(Clone, Debug)]
pub struct Transpose {
    topo: Topology,
}

impl Transpose {
    /// Builds transpose traffic.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::RequiresSquare2d`] unless the network is a
    /// square two-dimensional torus or mesh.
    pub fn new(topo: &Topology) -> Result<Self, TrafficError> {
        if topo.num_dims() != 2 || topo.radix(0) != topo.radix(1) {
            return Err(TrafficError::RequiresSquare2d {
                pattern: "transpose",
            });
        }
        Ok(Transpose { topo: topo.clone() })
    }

    fn map(&self, src: NodeId) -> Option<NodeId> {
        let x = self.topo.coord(src, 0);
        let y = self.topo.coord(src, 1);
        if x == y {
            None
        } else {
            Some(self.topo.node_at(&[y, x]))
        }
    }
}

impl TrafficPattern for Transpose {
    fn name(&self) -> String {
        "transpose".to_owned()
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        match self.map(src) {
            Some(d) => d,
            None => uniform_non_self(self.topo.num_nodes(), src, rng),
        }
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        fixed_map_distribution(self.topo.num_nodes(), src, self.map(src))
    }
}

/// Bit-reversal traffic: the destination's flat index is the source's flat
/// index with its bits reversed.
///
/// Fixed points (palindromic indices) fall back to uniform destinations.
#[derive(Clone, Debug)]
pub struct BitReversal {
    num_nodes: u32,
    bits: u32,
}

impl BitReversal {
    /// Builds bit-reversal traffic.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::RequiresPowerOfTwo`] unless the node count is
    /// a power of two.
    pub fn new(topo: &Topology) -> Result<Self, TrafficError> {
        let n = topo.num_nodes();
        if !n.is_power_of_two() {
            return Err(TrafficError::RequiresPowerOfTwo {
                pattern: "bit-reversal",
            });
        }
        Ok(BitReversal {
            num_nodes: n,
            bits: n.trailing_zeros(),
        })
    }

    fn map(&self, src: NodeId) -> Option<NodeId> {
        let reversed = src.index().reverse_bits() >> (32 - self.bits);
        if reversed == src.index() {
            None
        } else {
            Some(NodeId::new(reversed))
        }
    }
}

impl TrafficPattern for BitReversal {
    fn name(&self) -> String {
        "bit-reversal".to_owned()
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        match self.map(src) {
            Some(d) => d,
            None => uniform_non_self(self.num_nodes, src, rng),
        }
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        fixed_map_distribution(self.num_nodes, src, self.map(src))
    }
}

/// Complement traffic: every coordinate is mirrored, `c -> k - 1 - c`.
///
/// Fixed points (possible only with odd radices) fall back to uniform
/// destinations.
#[derive(Clone, Debug)]
pub struct Complement {
    topo: Topology,
}

impl Complement {
    /// Builds complement traffic for any topology.
    pub fn new(topo: &Topology) -> Self {
        Complement { topo: topo.clone() }
    }

    fn map(&self, src: NodeId) -> Option<NodeId> {
        let coords: Vec<u16> = (0..self.topo.num_dims())
            .map(|d| self.topo.radix(d) - 1 - self.topo.coord(src, d))
            .collect();
        let dest = self.topo.node_at(&coords);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

impl TrafficPattern for Complement {
    fn name(&self) -> String {
        "complement".to_owned()
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        match self.map(src) {
            Some(d) => d,
            None => uniform_non_self(self.topo.num_nodes(), src, rng),
        }
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        fixed_map_distribution(self.topo.num_nodes(), src, self.map(src))
    }
}

/// A custom permutation given as an explicit destination table.
///
/// # Example
///
/// ```
/// use wormsim_topology::{NodeId, Topology};
/// use wormsim_traffic::{Permutation, TrafficPattern};
///
/// let topo = Topology::torus(&[2, 2]);
/// // A cyclic shift 0->1->2->3->0.
/// let map: Vec<NodeId> = [1u32, 2, 3, 0].iter().map(|&i| NodeId::new(i)).collect();
/// let p = Permutation::new(&topo, map)?;
/// assert_eq!(p.dest_distribution(NodeId::new(3))[0], 1.0);
/// # Ok::<(), wormsim_traffic::TrafficError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Permutation {
    num_nodes: u32,
    map: Vec<NodeId>,
}

impl Permutation {
    /// Builds a custom permutation pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::BadPermutation`] if the table length differs
    /// from the node count or any entry is out of range.
    pub fn new(topo: &Topology, map: Vec<NodeId>) -> Result<Self, TrafficError> {
        if map.len() != topo.num_nodes() as usize
            || map.iter().any(|d| d.index() >= topo.num_nodes())
        {
            return Err(TrafficError::BadPermutation);
        }
        Ok(Permutation {
            num_nodes: topo.num_nodes(),
            map,
        })
    }

    fn map(&self, src: NodeId) -> Option<NodeId> {
        let dest = self.map[src.as_usize()];
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

impl TrafficPattern for Permutation {
    fn name(&self) -> String {
        "permutation".to_owned()
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        match self.map(src) {
            Some(d) => d,
            None => uniform_non_self(self.num_nodes, src, rng),
        }
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        fixed_map_distribution(self.num_nodes, src, self.map(src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_swaps_coordinates() {
        let topo = Topology::torus(&[8, 8]);
        let t = Transpose::new(&topo).unwrap();
        let mut rng = SimRng::seed_from(1);
        let src = topo.node_at(&[2, 5]);
        assert_eq!(t.sample_dest(src, &mut rng), topo.node_at(&[5, 2]));
    }

    #[test]
    fn transpose_diagonal_falls_back_to_uniform() {
        let topo = Topology::torus(&[8, 8]);
        let t = Transpose::new(&topo).unwrap();
        let src = topo.node_at(&[3, 3]);
        let dist = t.dest_distribution(src);
        assert_eq!(dist[src.as_usize()], 0.0);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist[0] - 1.0 / 63.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_requires_square() {
        assert!(Transpose::new(&Topology::torus(&[8, 4])).is_err());
        assert!(Transpose::new(&Topology::torus(&[4, 4, 4])).is_err());
    }

    #[test]
    fn bit_reversal_maps_indices() {
        let topo = Topology::torus(&[4, 4]);
        let b = BitReversal::new(&topo).unwrap();
        // 16 nodes, 4 bits: index 1 (0001) -> 8 (1000).
        let mut rng = SimRng::seed_from(1);
        assert_eq!(b.sample_dest(NodeId::new(1), &mut rng), NodeId::new(8));
        // 6 (0110) is a palindrome: falls back to uniform.
        assert_ne!(b.sample_dest(NodeId::new(6), &mut rng), NodeId::new(6));
    }

    #[test]
    fn bit_reversal_requires_power_of_two() {
        assert!(BitReversal::new(&Topology::torus(&[6, 6])).is_err());
    }

    #[test]
    fn complement_mirrors_coordinates() {
        let topo = Topology::torus(&[16, 16]);
        let c = Complement::new(&topo);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(
            c.sample_dest(topo.node_at(&[0, 0]), &mut rng),
            topo.node_at(&[15, 15])
        );
    }

    #[test]
    fn complement_fixed_point_on_odd_radix() {
        let topo = Topology::mesh(&[5, 5]);
        let c = Complement::new(&topo);
        let center = topo.node_at(&[2, 2]);
        let dist = c.dest_distribution(center);
        assert_eq!(dist[center.as_usize()], 0.0);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_validates_table() {
        let topo = Topology::torus(&[2, 2]);
        assert!(Permutation::new(&topo, vec![NodeId::new(0); 3]).is_err());
        assert!(Permutation::new(&topo, vec![NodeId::new(9); 4]).is_err());
    }
}

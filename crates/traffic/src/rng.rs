//! A small, fast, reproducible random-number generator.
//!
//! The paper's methodology keeps *separate random-number streams* for
//! destination selection, interarrival times, and so on, and re-seeds them
//! between sampling periods. [`SimRng`] is a PCG-XSH-RR 64/32 generator:
//! 64-bit state, 32-bit output, splittable into independent streams via the
//! odd increment, and identical output on every platform and toolchain —
//! which `rand`'s `SmallRng` explicitly does not guarantee across versions.

use serde::{Deserialize, Serialize};

/// A PCG-XSH-RR 64/32 pseudo-random generator.
///
/// # Example
///
/// ```
/// use wormsim_traffic::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u32(), b.next_u32()); // fully deterministic
///
/// let mut s = SimRng::stream(7, 3); // independent stream #3 of seed 7
/// let x = s.uniform_below(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl SimRng {
    /// Creates a generator from a seed, using stream 0.
    pub fn seed_from(seed: u64) -> Self {
        Self::stream(seed, 0)
    }

    /// Creates one of 2⁶³ independent streams for the same seed.
    ///
    /// Streams with different `stream` ids produce statistically
    /// independent sequences — the paper's "separate sequences of random
    /// numbers ... for the distribution of message interarrival time,
    /// selection of destination, etc.".
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// A uniform integer in `0..bound` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u32() as u64;
            let m = x * bound as u64;
            let low = m as u32;
            if low >= bound || low >= (u32::MAX - bound + 1) % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// A geometric "gap" sample: the number of cycles until the next
    /// success of a per-cycle Bernoulli(`p`) process, in `1..`.
    ///
    /// Uses inversion, so one uniform sample per gap regardless of `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        if p >= 1.0 {
            return 1;
        }
        let u = 1.0 - self.uniform_f64(); // in (0, 1]
        let gap = (u.ln() / (1.0 - p).ln()).ceil();
        if gap < 1.0 {
            1
        } else {
            gap as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = SimRng::stream(123, 0);
        let mut b = SimRng::stream(123, 1);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 3,
            "streams should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn uniform_below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed_from(9);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.uniform_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10000"
            );
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn geometric_mean_matches_inverse_rate() {
        let mut rng = SimRng::seed_from(17);
        let p = 0.05;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.5, "mean {mean} vs {}", 1.0 / p);
    }

    #[test]
    fn geometric_at_p_one_is_always_one() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(rng.geometric(1.0), 1);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((28_500..31_500).contains(&hits), "{hits}");
    }
}

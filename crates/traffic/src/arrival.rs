//! Message arrival processes.

use crate::{SimRng, TrafficError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// When nodes generate new messages.
///
/// The paper uses geometrically distributed interarrival times, which is
/// exactly a per-cycle Bernoulli process; [`ArrivalProcess::next_gap`]
/// samples the geometric gap directly so idle nodes cost nothing per cycle.
///
/// # Example
///
/// ```
/// use wormsim_traffic::{ArrivalProcess, SimRng};
///
/// let arrivals = ArrivalProcess::geometric(0.02)?;
/// let mut rng = SimRng::seed_from(4);
/// let gap = arrivals.next_gap(&mut rng).unwrap();
/// assert!(gap >= 1);
/// assert!((arrivals.rate() - 0.02).abs() < 1e-12);
/// # Ok::<(), wormsim_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Geometric interarrival times with per-cycle probability `rate`.
    Geometric {
        /// Probability that a node generates a message in a given cycle.
        rate: f64,
    },
    /// Deterministic arrivals every `period` cycles.
    Periodic {
        /// The fixed gap between arrivals, in cycles.
        period: u64,
    },
    /// No arrivals (drained-network experiments).
    Off,
}

impl ArrivalProcess {
    /// Geometric arrivals at the given per-cycle rate.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidRate`] unless `0 <= rate <= 1`.
    pub fn geometric(rate: f64) -> Result<Self, TrafficError> {
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(TrafficError::InvalidRate { value: rate });
        }
        Ok(if rate == 0.0 {
            ArrivalProcess::Off
        } else {
            ArrivalProcess::Geometric { rate }
        })
    }

    /// The long-run messages-per-cycle rate of this process.
    pub fn rate(&self) -> f64 {
        match self {
            ArrivalProcess::Geometric { rate } => *rate,
            ArrivalProcess::Periodic { period } => 1.0 / *period as f64,
            ArrivalProcess::Off => 0.0,
        }
    }

    /// Samples the gap (in cycles, at least 1) until the next arrival, or
    /// `None` if arrivals are off.
    pub fn next_gap(&self, rng: &mut SimRng) -> Option<u64> {
        match self {
            ArrivalProcess::Geometric { rate } => Some(rng.geometric(*rate)),
            ArrivalProcess::Periodic { period } => Some((*period).max(1)),
            ArrivalProcess::Off => None,
        }
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalProcess::Geometric { rate } => write!(f, "geometric({rate:.5})"),
            ArrivalProcess::Periodic { period } => write!(f, "periodic({period})"),
            ArrivalProcess::Off => write!(f, "off"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_long_run_rate() {
        let p = ArrivalProcess::geometric(0.1).unwrap();
        let mut rng = SimRng::seed_from(77);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut rng).unwrap()).sum();
        let rate = n as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.005, "observed rate {rate}");
    }

    #[test]
    fn zero_rate_becomes_off() {
        let p = ArrivalProcess::geometric(0.0).unwrap();
        assert_eq!(p, ArrivalProcess::Off);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(p.next_gap(&mut rng), None);
        assert_eq!(p.rate(), 0.0);
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(ArrivalProcess::geometric(-0.1).is_err());
        assert!(ArrivalProcess::geometric(1.5).is_err());
        assert!(ArrivalProcess::geometric(f64::NAN).is_err());
    }

    #[test]
    fn periodic_gap_is_constant() {
        let p = ArrivalProcess::Periodic { period: 10 };
        let mut rng = SimRng::seed_from(1);
        assert_eq!(p.next_gap(&mut rng), Some(10));
        assert!((p.rate() - 0.1).abs() < 1e-12);
    }
}

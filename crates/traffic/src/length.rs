//! Message-length distributions.

use crate::{SimRng, TrafficError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How many flits a new message contains.
///
/// The paper fixes 16-flit messages ("in literature, fixed-length messages
/// with 16, 20, or 24 flits are commonly considered"); the mixed
/// distribution mirrors the 15/31-flit mix of Berman et al. that the paper
/// cites for comparison.
///
/// # Example
///
/// ```
/// use wormsim_traffic::{MessageLength, SimRng};
///
/// let len = MessageLength::fixed(16)?;
/// let mut rng = SimRng::seed_from(1);
/// assert_eq!(len.sample(&mut rng), 16);
/// assert_eq!(len.mean(), 16.0);
/// assert_eq!(len.max(), 16);
/// # Ok::<(), wormsim_traffic::TrafficError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MessageLength {
    /// Every message has exactly this many flits.
    Fixed {
        /// Flits per message.
        flits: u32,
    },
    /// Uniform between `min` and `max` flits inclusive.
    Uniform {
        /// Smallest message, in flits.
        min: u32,
        /// Largest message, in flits.
        max: u32,
    },
    /// Two fixed sizes: `long` with probability `long_fraction`, else
    /// `short`.
    Bimodal {
        /// The short message size, in flits.
        short: u32,
        /// The long message size, in flits.
        long: u32,
        /// Probability of a long message.
        long_fraction: f64,
    },
}

impl MessageLength {
    /// Fixed-size messages.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidLength`] if `flits` is zero.
    pub fn fixed(flits: u32) -> Result<Self, TrafficError> {
        if flits == 0 {
            return Err(TrafficError::InvalidLength);
        }
        Ok(MessageLength::Fixed { flits })
    }

    /// Uniformly distributed sizes in `min..=max`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidLength`] if `min` is zero or exceeds
    /// `max`.
    pub fn uniform(min: u32, max: u32) -> Result<Self, TrafficError> {
        if min == 0 || min > max {
            return Err(TrafficError::InvalidLength);
        }
        Ok(MessageLength::Uniform { min, max })
    }

    /// Bimodal sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidLength`] if either size is zero, and
    /// [`TrafficError::InvalidFraction`] if `long_fraction` is outside
    /// `[0, 1)`.
    pub fn bimodal(short: u32, long: u32, long_fraction: f64) -> Result<Self, TrafficError> {
        if short == 0 || long == 0 {
            return Err(TrafficError::InvalidLength);
        }
        if !(0.0..1.0).contains(&long_fraction) {
            return Err(TrafficError::InvalidFraction {
                value: long_fraction,
            });
        }
        Ok(MessageLength::Bimodal {
            short,
            long,
            long_fraction,
        })
    }

    /// Draws a message length in flits.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            MessageLength::Fixed { flits } => flits,
            MessageLength::Uniform { min, max } => min + rng.uniform_below(max - min + 1),
            MessageLength::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                if rng.bernoulli(long_fraction) {
                    long
                } else {
                    short
                }
            }
        }
    }

    /// The mean message length `m_l` used in the paper's Equations 2 and 4.
    pub fn mean(&self) -> f64 {
        match *self {
            MessageLength::Fixed { flits } => flits as f64,
            MessageLength::Uniform { min, max } => (min + max) as f64 / 2.0,
            MessageLength::Bimodal {
                short,
                long,
                long_fraction,
            } => long as f64 * long_fraction + short as f64 * (1.0 - long_fraction),
        }
    }

    /// The largest possible message, used to size cut-through and
    /// store-and-forward buffers.
    pub fn max(&self) -> u32 {
        match *self {
            MessageLength::Fixed { flits } => flits,
            MessageLength::Uniform { max, .. } => max,
            MessageLength::Bimodal { short, long, .. } => short.max(long),
        }
    }

    /// The smallest possible message. Zero only for distributions built by
    /// hand from the enum variants — the constructors reject it — and such
    /// configurations fail experiment validation.
    pub fn min(&self) -> u32 {
        match *self {
            MessageLength::Fixed { flits } => flits,
            MessageLength::Uniform { min, .. } => min,
            MessageLength::Bimodal { short, long, .. } => short.min(long),
        }
    }
}

impl fmt::Display for MessageLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MessageLength::Fixed { flits } => write!(f, "{flits} flits"),
            MessageLength::Uniform { min, max } => write!(f, "{min}-{max} flits"),
            MessageLength::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                write!(
                    f,
                    "{short}/{long} flits ({:.0}% long)",
                    long_fraction * 100.0
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let len = MessageLength::fixed(16).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(len.sample(&mut rng), 16);
        }
    }

    #[test]
    fn uniform_covers_range_and_mean() {
        let len = MessageLength::uniform(4, 8).unwrap();
        let mut rng = SimRng::seed_from(2);
        let mut seen = [false; 9];
        let mut total = 0u64;
        let n = 50_000;
        for _ in 0..n {
            let s = len.sample(&mut rng);
            assert!((4..=8).contains(&s));
            seen[s as usize] = true;
            total += s as u64;
        }
        assert!(seen[4..=8].iter().all(|&s| s));
        assert!((total as f64 / n as f64 - len.mean()).abs() < 0.05);
    }

    #[test]
    fn bimodal_mixes() {
        let len = MessageLength::bimodal(15, 31, 0.5).unwrap();
        assert_eq!(len.mean(), 23.0);
        assert_eq!(len.max(), 31);
        let mut rng = SimRng::seed_from(3);
        let longs = (0..10_000).filter(|_| len.sample(&mut rng) == 31).count();
        assert!((4_700..5_300).contains(&longs));
    }

    #[test]
    fn rejects_invalid() {
        assert!(MessageLength::fixed(0).is_err());
        assert!(MessageLength::uniform(0, 4).is_err());
        assert!(MessageLength::uniform(5, 4).is_err());
        assert!(MessageLength::bimodal(0, 4, 0.5).is_err());
        assert!(MessageLength::bimodal(4, 8, 1.5).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(MessageLength::fixed(16).unwrap().to_string(), "16 flits");
        assert_eq!(
            MessageLength::uniform(4, 8).unwrap().to_string(),
            "4-8 flits"
        );
    }
}

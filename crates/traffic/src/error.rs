//! Errors for traffic-pattern construction.

use std::fmt;

/// Errors produced when building traffic patterns or processes.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficError {
    /// A probability/fraction parameter was outside `[0, 1)`.
    InvalidFraction {
        /// The offending value.
        value: f64,
    },
    /// The local-traffic neighborhood does not fit the topology.
    RadiusTooLarge {
        /// Requested per-dimension radius.
        radius: u16,
        /// The smallest radix it must fit in (torus: `2r + 1 <= k`).
        radix: u16,
    },
    /// The pattern needs a two-dimensional square network.
    RequiresSquare2d {
        /// The pattern that was requested.
        pattern: &'static str,
    },
    /// The pattern needs a power-of-two node count.
    RequiresPowerOfTwo {
        /// The pattern that was requested.
        pattern: &'static str,
    },
    /// A custom permutation had the wrong length or out-of-range entries.
    BadPermutation,
    /// A message-length parameter was invalid (zero, or an empty range).
    InvalidLength,
    /// An injection rate was outside `[0, 1]`.
    InvalidRate {
        /// The offending value.
        value: f64,
    },
    /// A hotspot list was empty or referenced an out-of-range node.
    BadHotspots,
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidFraction { value } => {
                write!(f, "fraction {value} must be in [0, 1)")
            }
            TrafficError::RadiusTooLarge { radius, radix } => {
                write!(f, "neighborhood radius {radius} does not fit radix {radix}")
            }
            TrafficError::RequiresSquare2d { pattern } => {
                write!(f, "{pattern} requires a square two-dimensional network")
            }
            TrafficError::RequiresPowerOfTwo { pattern } => {
                write!(f, "{pattern} requires a power-of-two node count")
            }
            TrafficError::BadPermutation => write!(f, "invalid permutation table"),
            TrafficError::InvalidLength => write!(f, "invalid message length parameters"),
            TrafficError::InvalidRate { value } => {
                write!(f, "injection rate {value} must be in [0, 1]")
            }
            TrafficError::BadHotspots => write!(f, "hotspot list is empty or out of range"),
        }
    }
}

impl std::error::Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameters() {
        assert!(TrafficError::InvalidFraction { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(TrafficError::RadiusTooLarge {
            radius: 9,
            radix: 8
        }
        .to_string()
        .contains('9'));
    }
}

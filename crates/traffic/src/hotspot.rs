//! Hotspot traffic: uniform plus concentrated traffic to a few nodes.

use crate::{SimRng, TrafficError, TrafficPattern};
use wormsim_topology::{NodeId, Topology};

/// Hotspot traffic after Pfister & Norton: with probability `fraction` a
/// new message is directed at a hotspot node (chosen uniformly if there are
/// several); otherwise — or if that would be self-traffic — the destination
/// is uniform over the other nodes.
///
/// With the paper's parameters (16², one hotspot, 4%), the hotspot node
/// receives `0.04 + 0.96/255 ≈ 0.0438` of each node's traffic and any other
/// node `0.96/255 ≈ 0.0038` — "about 11.5 times more traffic than any other
/// node in the network".
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_traffic::{Hotspot, TrafficPattern};
///
/// let topo = Topology::torus(&[16, 16]);
/// let hs = Hotspot::new(&topo, vec![topo.node_at(&[15, 15])], 0.04)?;
/// let dist = hs.dest_distribution(topo.node_at(&[0, 0]));
/// let hot = dist[topo.node_at(&[15, 15]).as_usize()];
/// let other = dist[topo.node_at(&[1, 0]).as_usize()];
/// assert!((hot / other - 11.625).abs() < 0.01);
/// # Ok::<(), wormsim_traffic::TrafficError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Hotspot {
    num_nodes: u32,
    hotspots: Vec<NodeId>,
    fraction: f64,
}

impl Hotspot {
    /// Builds hotspot traffic for `topo`.
    ///
    /// # Errors
    ///
    /// Returns an error if `fraction` is outside `[0, 1)`, the hotspot list
    /// is empty, or a hotspot id is out of range.
    pub fn new(
        topo: &Topology,
        hotspots: Vec<NodeId>,
        fraction: f64,
    ) -> Result<Self, TrafficError> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(TrafficError::InvalidFraction { value: fraction });
        }
        if hotspots.is_empty() || hotspots.iter().any(|h| h.index() >= topo.num_nodes()) {
            return Err(TrafficError::BadHotspots);
        }
        Ok(Hotspot {
            num_nodes: topo.num_nodes(),
            hotspots,
            fraction,
        })
    }

    /// The hotspot nodes.
    pub fn hotspots(&self) -> &[NodeId] {
        &self.hotspots
    }

    /// The fraction of traffic directed at the hotspot set.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    fn sample_uniform_non_self(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        let r = rng.uniform_below(self.num_nodes - 1);
        NodeId::new(if r >= src.index() { r + 1 } else { r })
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> String {
        format!(
            "hotspot({}%x{})",
            self.fraction * 100.0,
            self.hotspots.len()
        )
    }

    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        if rng.bernoulli(self.fraction) {
            let h = self.hotspots[rng.uniform_below(self.hotspots.len() as u32) as usize];
            if h != src {
                return h;
            }
            // A hotspot never sends hotspot traffic to itself; fall back to
            // the uniform component.
        }
        self.sample_uniform_non_self(src, rng)
    }

    fn dest_distribution(&self, src: NodeId) -> Vec<f64> {
        let n = self.num_nodes as usize;
        let h = self.hotspots.len() as f64;
        // Probability mass that falls through to the uniform component:
        // the (1 - fraction) base, plus the hotspot draws that selected the
        // source itself.
        let mut uniform_mass = 1.0 - self.fraction;
        if self.hotspots.contains(&src) {
            uniform_mass += self.fraction / h;
        }
        let per_other = uniform_mass / (self.num_nodes - 1) as f64;
        let mut dist = vec![per_other; n];
        dist[src.as_usize()] = 0.0;
        for hs in &self.hotspots {
            if *hs != src {
                dist[hs.as_usize()] += self.fraction / h;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_probabilities() {
        let topo = Topology::torus(&[16, 16]);
        let hot = topo.node_at(&[15, 15]);
        let hs = Hotspot::new(&topo, vec![hot], 0.04).unwrap();
        let dist = hs.dest_distribution(topo.node_at(&[0, 0]));
        // "directed with 0.0438 probability to the hotspot node and with
        //  0.0038 probability to any other node"
        assert!((dist[hot.as_usize()] - 0.0438).abs() < 2e-4);
        assert!((dist[1] - 0.0038).abs() < 2e-4);
    }

    #[test]
    fn hotspot_source_excludes_itself() {
        let topo = Topology::torus(&[8, 8]);
        let hot = topo.node_at(&[7, 7]);
        let hs = Hotspot::new(&topo, vec![hot], 0.1).unwrap();
        let mut rng = SimRng::seed_from(5);
        for _ in 0..5_000 {
            assert_ne!(hs.sample_dest(hot, &mut rng), hot);
        }
        let dist = hs.dest_distribution(hot);
        assert_eq!(dist[hot.as_usize()], 0.0);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let topo = Topology::torus(&[4, 4]);
        let hot = topo.node_at(&[3, 3]);
        let hs = Hotspot::new(&topo, vec![hot], 0.25).unwrap();
        let src = topo.node_at(&[0, 0]);
        let dist = hs.dest_distribution(src);
        let mut rng = SimRng::seed_from(11);
        let mut counts = [0u32; 16];
        let trials = 160_000;
        for _ in 0..trials {
            counts[hs.sample_dest(src, &mut rng).as_usize()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / trials as f64;
            assert!(
                (observed - dist[i]).abs() < 0.005,
                "node {i}: observed {observed}, expected {}",
                dist[i]
            );
        }
    }

    #[test]
    fn multiple_hotspots_split_the_fraction() {
        let topo = Topology::torus(&[8, 8]);
        let a = topo.node_at(&[0, 4]);
        let b = topo.node_at(&[4, 0]);
        let hs = Hotspot::new(&topo, vec![a, b], 0.2).unwrap();
        let dist = hs.dest_distribution(topo.node_at(&[2, 2]));
        assert!((dist[a.as_usize()] - dist[b.as_usize()]).abs() < 1e-12);
        assert!(dist[a.as_usize()] > 0.1 / 2.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let topo = Topology::torus(&[4, 4]);
        let node = topo.node_at(&[0, 0]);
        assert!(matches!(
            Hotspot::new(&topo, vec![node], 1.0),
            Err(TrafficError::InvalidFraction { .. })
        ));
        assert!(matches!(
            Hotspot::new(&topo, vec![], 0.04),
            Err(TrafficError::BadHotspots)
        ));
        assert!(matches!(
            Hotspot::new(&topo, vec![NodeId::new(999)], 0.04),
            Err(TrafficError::BadHotspots)
        ));
    }
}

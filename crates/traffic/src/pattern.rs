//! The [`TrafficPattern`] trait and the [`TrafficConfig`] registry.

use crate::{BitReversal, Complement, Hotspot, Local, SimRng, TrafficError, Transpose, Uniform};
use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_topology::{NodeId, Topology};

/// A spatial traffic pattern: where newly generated messages go.
///
/// Implementations must be consistent: [`dest_distribution`] is the exact
/// law of [`sample_dest`], and destinations never equal the source.
///
/// [`dest_distribution`]: TrafficPattern::dest_distribution
/// [`sample_dest`]: TrafficPattern::sample_dest
pub trait TrafficPattern: Send + Sync + fmt::Debug {
    /// Human-readable name (e.g. `"hotspot(4%)"`).
    fn name(&self) -> String;

    /// Draws a destination for a message generated at `src`.
    ///
    /// Never returns `src` itself.
    fn sample_dest(&self, src: NodeId, rng: &mut SimRng) -> NodeId;

    /// The exact destination probabilities from `src`: entry `i` is the
    /// probability that a message from `src` goes to node `i`. Sums to 1;
    /// entry `src` is 0.
    fn dest_distribution(&self, src: NodeId) -> Vec<f64>;

    /// The exact distribution of message distances (hop classes) under this
    /// pattern, averaged over all sources: entry `h` is the probability a
    /// message travels `h` hops.
    ///
    /// These are the stratification weights of the paper's convergence
    /// methodology ("the weights of each hop-class are based on the
    /// frequency with which they appear for the traffic pattern being
    /// simulated").
    fn hop_class_weights(&self, topo: &Topology) -> Vec<f64> {
        let n = topo.num_nodes();
        let mut weights = vec![0.0; topo.diameter() as usize + 1];
        for src in topo.nodes() {
            for (dest, p) in self.dest_distribution(src).iter().enumerate() {
                if *p > 0.0 {
                    weights[topo.distance(src, NodeId::new(dest as u32)) as usize] += p;
                }
            }
        }
        for w in &mut weights {
            *w /= n as f64;
        }
        weights
    }

    /// The exact mean message distance `d̄` under this pattern.
    ///
    /// Used in the paper's Equation 4 to convert between injection rate and
    /// normalized channel utilization.
    fn mean_distance(&self, topo: &Topology) -> f64 {
        self.hop_class_weights(topo)
            .iter()
            .enumerate()
            .map(|(h, w)| h as f64 * w)
            .sum()
    }
}

/// Serializable description of a traffic pattern; [`build`](Self::build)
/// turns it into a live [`TrafficPattern`] for a topology.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_traffic::TrafficConfig;
///
/// let topo = Topology::torus(&[16, 16]);
/// // The paper's hotspot workload: node (15,15), 4% hotspot traffic.
/// let cfg = TrafficConfig::Hotspot { nodes: vec![vec![15, 15]], fraction: 0.04 };
/// let pattern = cfg.build(&topo)?;
/// assert_eq!(pattern.name(), "hotspot(4%x1)");
/// # Ok::<(), wormsim_traffic::TrafficError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficConfig {
    /// Uniform random traffic.
    Uniform,
    /// Uniform plus concentrated traffic to one or more hotspot nodes
    /// (given as coordinate vectors) receiving `fraction` of all traffic.
    Hotspot {
        /// Hotspot node coordinates.
        nodes: Vec<Vec<u16>>,
        /// Fraction of traffic directed at the hotspot set.
        fraction: f64,
    },
    /// Destinations uniform in a `(2r+1)^n` neighborhood of the source.
    Local {
        /// Per-dimension radius `r` (the paper's 7×7 region is `r = 3`).
        radius: u16,
    },
    /// Matrix-transpose permutation `(x, y) -> (y, x)`.
    Transpose,
    /// Bit-reversal permutation of the flat node index.
    BitReversal,
    /// Coordinate complement `c -> k-1-c` in every dimension.
    Complement,
}

impl TrafficConfig {
    /// Builds the pattern for `topo`.
    ///
    /// # Errors
    ///
    /// Propagates the pattern constructor's validation error (bad fraction,
    /// oversized neighborhood, non-square network for transpose, ...).
    pub fn build(&self, topo: &Topology) -> Result<Box<dyn TrafficPattern>, TrafficError> {
        Ok(match self {
            TrafficConfig::Uniform => Box::new(Uniform::new(topo)),
            TrafficConfig::Hotspot { nodes, fraction } => {
                let ids: Vec<NodeId> = nodes
                    .iter()
                    .map(|coords| {
                        if coords.len() != topo.num_dims()
                            || coords.iter().enumerate().any(|(d, &c)| c >= topo.radix(d))
                        {
                            Err(TrafficError::BadHotspots)
                        } else {
                            Ok(topo.node_at(coords))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                Box::new(Hotspot::new(topo, ids, *fraction)?)
            }
            TrafficConfig::Local { radius } => Box::new(Local::new(topo, *radius)?),
            TrafficConfig::Transpose => Box::new(Transpose::new(topo)?),
            TrafficConfig::BitReversal => Box::new(BitReversal::new(topo)?),
            TrafficConfig::Complement => Box::new(Complement::new(topo)),
        })
    }
}

impl fmt::Display for TrafficConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficConfig::Uniform => write!(f, "uniform"),
            TrafficConfig::Hotspot { nodes, fraction } => {
                write!(f, "hotspot({}%x{})", fraction * 100.0, nodes.len())
            }
            TrafficConfig::Local { radius } => write!(f, "local(r={radius})"),
            TrafficConfig::Transpose => write!(f, "transpose"),
            TrafficConfig::BitReversal => write!(f, "bit-reversal"),
            TrafficConfig::Complement => write!(f, "complement"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant_on_16_torus() {
        let topo = Topology::torus(&[16, 16]);
        let configs = [
            TrafficConfig::Uniform,
            TrafficConfig::Hotspot {
                nodes: vec![vec![15, 15]],
                fraction: 0.04,
            },
            TrafficConfig::Local { radius: 3 },
            TrafficConfig::Transpose,
            TrafficConfig::BitReversal,
            TrafficConfig::Complement,
        ];
        for cfg in configs {
            let p = cfg.build(&topo).unwrap_or_else(|e| panic!("{cfg}: {e}"));
            // Distribution sanity for a few sources.
            for src in [0u32, 17, 255] {
                let dist = p.dest_distribution(NodeId::new(src));
                let total: f64 = dist.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "{cfg} from {src}: total {total}"
                );
                assert_eq!(dist[src as usize], 0.0, "{cfg}: no self traffic");
            }
        }
    }

    #[test]
    fn hotspot_rejects_bad_coordinates() {
        let topo = Topology::torus(&[4, 4]);
        let cfg = TrafficConfig::Hotspot {
            nodes: vec![vec![9, 9]],
            fraction: 0.04,
        };
        assert_eq!(cfg.build(&topo).unwrap_err(), TrafficError::BadHotspots);
        let cfg = TrafficConfig::Hotspot {
            nodes: vec![vec![1]],
            fraction: 0.04,
        };
        assert_eq!(cfg.build(&topo).unwrap_err(), TrafficError::BadHotspots);
    }

    #[test]
    fn display_names() {
        assert_eq!(TrafficConfig::Uniform.to_string(), "uniform");
        assert_eq!(TrafficConfig::Local { radius: 3 }.to_string(), "local(r=3)");
    }

    #[test]
    fn sampled_distances_match_hop_class_weights() {
        // Monte-Carlo check that sample_dest agrees with the exact weights.
        let topo = Topology::torus(&[8, 8]);
        let p = TrafficConfig::Local { radius: 2 }.build(&topo).unwrap();
        let weights = p.hop_class_weights(&topo);
        let mut rng = SimRng::seed_from(99);
        let mut counts = vec![0u32; weights.len()];
        let trials = 200_000;
        for i in 0..trials {
            let src = NodeId::new(i % topo.num_nodes());
            let dest = p.sample_dest(src, &mut rng);
            counts[topo.distance(src, dest) as usize] += 1;
        }
        for (h, &w) in weights.iter().enumerate() {
            let observed = counts[h] as f64 / trials as f64;
            assert!(
                (observed - w).abs() < 0.01,
                "hop class {h}: observed {observed}, expected {w}"
            );
        }
    }
}

//! Offline stand-in for the parts of `serde_json` wormsim uses.
//!
//! The workspace builds in environments with no registry access (see the
//! sibling `serde` shim), so this crate reimplements the small surface the
//! observability layer needs: a [`Value`] tree, [`from_str`] /
//! [`Value::to_string`], and a [`StreamDeserializer`] over line-delimited
//! JSON. Numbers are kept as `f64` with a separate integer fast path via
//! [`Value::as_u64`]/[`Value::as_i64`], which is exact for the counter
//! magnitudes the simulator emits (< 2^53). Swap back to the crates.io
//! release if the build environment ever regains network access; call
//! sites use only the shared subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalized (sorted), which is fine for
    /// round-trip equality but differs from insertion-ordered serde_json.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse error with a byte-offset-free, human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Parses one complete JSON value from `input`, rejecting trailing
/// non-whitespace.
///
/// # Errors
///
/// Returns an [`Error`] describing the first malformed construct.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.peek().is_some() {
        return Err(Error::new("trailing characters after value"));
    }
    Ok(value)
}

/// Streaming deserializer over whitespace-separated JSON values — the shape
/// of `serde_json::Deserializer::from_str(s).into_iter::<Value>()`, which is
/// what validates line-delimited JSON (JSONL) streams.
pub struct StreamDeserializer<'a> {
    parser: Parser<'a>,
    failed: bool,
}

impl<'a> StreamDeserializer<'a> {
    /// Starts streaming values out of `input`.
    pub fn new(input: &'a str) -> Self {
        StreamDeserializer {
            parser: Parser::new(input),
            failed: false,
        }
    }
}

impl Iterator for StreamDeserializer<'_> {
    type Item = Result<Value, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        self.parser.skip_whitespace();
        self.parser.peek()?;
        let result = self.parser.parse_value();
        if result.is_err() {
            self.failed = true;
        }
        Some(result)
    }
}

/// Recursive-descent JSON parser over a char iterator with one lookahead.
struct Parser<'a> {
    chars: Chars<'a>,
    lookahead: Option<char>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars(),
            lookahead: None,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.lookahead.is_none() {
            self.lookahead = self.chars.next();
        }
        self.lookahead
    }

    fn bump(&mut self) -> Option<char> {
        self.peek();
        self.lookahead.take()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(Error::new(format!("expected '{want}', found '{c}'"))),
            None => Err(Error::new(format!("expected '{want}', found end of input"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Value::String(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Value::Bool(true)),
            Some('f') => self.parse_keyword("false", Value::Bool(false)),
            Some('n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!("unexpected character '{c}'"))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => return Err(Error::new(format!("malformed keyword (expected '{word}')"))),
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push(self.bump().expect("peeked"));
        }
        let mut any_digits = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                any_digits |= c.is_ascii_digit();
                text.push(self.bump().expect("peeked"));
            } else {
                break;
            }
        }
        if !any_digits {
            return Err(Error::new("malformed number"));
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("malformed number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| Error::new("malformed \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        // Surrogate pairs are not produced by our writers;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error::new("malformed escape sequence")),
                },
                Some(c) => out.push(c),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"b":[1,2,{"x":null}],"a":"q\"uo\\te","n":-0.25,"t":true}"#;
        let value = from_str(text).unwrap();
        assert_eq!(value.get("n").unwrap().as_f64(), Some(-0.25));
        assert_eq!(value.get("a").unwrap().as_str(), Some("q\"uo\\te"));
        assert_eq!(value.get("b").unwrap().as_array().unwrap().len(), 3);
        // to_string -> from_str is the identity on the value tree.
        assert_eq!(from_str(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(
            from_str("18446744073709").unwrap().as_u64(),
            Some(18_446_744_073_709)
        );
        assert_eq!(from_str("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(from_str("-3").unwrap().as_u64(), None);
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::String("line\none\ttab \"q\" back\\slash \u{1}".into());
        assert_eq!(from_str(&original.to_string()).unwrap(), original);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("troo").is_err());
        assert!(from_str("1 2").is_err(), "trailing junk rejected");
    }

    #[test]
    fn stream_deserializer_walks_jsonl() {
        let lines = "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
        let values: Result<Vec<Value>, Error> = StreamDeserializer::new(lines).collect();
        let values = values.unwrap();
        assert_eq!(values.len(), 3);
        assert_eq!(values[2].get("a").unwrap().as_u64(), Some(3));
        // Empty stream yields nothing; a malformed tail stops iteration.
        assert_eq!(StreamDeserializer::new("  \n ").count(), 0);
        let mut broken = StreamDeserializer::new("{\"a\":1}\n{oops");
        assert!(broken.next().unwrap().is_ok());
        assert!(broken.next().unwrap().is_err());
        assert!(broken.next().is_none());
    }
}

//! Directions of travel along network dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sign of travel along a dimension.
///
/// `Plus` increases the coordinate (modulo the radix on a torus); `Minus`
/// decreases it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Travel towards increasing coordinates.
    Plus,
    /// Travel towards decreasing coordinates.
    Minus,
}

impl Sign {
    /// Returns the opposite sign.
    ///
    /// ```
    /// use wormsim_topology::Sign;
    /// assert_eq!(Sign::Plus.opposite(), Sign::Minus);
    /// ```
    pub const fn opposite(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// Returns `0` for `Plus` and `1` for `Minus`; used to pack directions.
    pub const fn bit(self) -> usize {
        match self {
            Sign::Plus => 0,
            Sign::Minus => 1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// A unidirectional direction of travel: a dimension plus a [`Sign`].
///
/// A node of an `n`-dimensional network has `2n` outgoing directions. The
/// packed form ([`Direction::index`]) enumerates them as
/// `dim * 2 + sign.bit()`, giving `+0, -0, +1, -1, ...`.
///
/// # Example
///
/// ```
/// use wormsim_topology::{Direction, Sign};
///
/// let d = Direction::new(1, Sign::Minus);
/// assert_eq!(d.index(), 3);
/// assert_eq!(Direction::from_index(3), d);
/// assert_eq!(d.opposite(), Direction::new(1, Sign::Plus));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Direction {
    dim: u8,
    sign: Sign,
}

impl Direction {
    /// Creates a direction along `dim` with the given `sign`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` exceeds `u8::MAX`.
    pub fn new(dim: usize, sign: Sign) -> Self {
        Direction {
            dim: u8::try_from(dim).expect("dimension out of range"),
            sign,
        }
    }

    /// The dimension this direction travels along.
    pub const fn dim(self) -> usize {
        self.dim as usize
    }

    /// The sign of travel.
    pub const fn sign(self) -> Sign {
        self.sign
    }

    /// The direction with the same dimension and opposite sign.
    pub const fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.opposite(),
        }
    }

    /// Packs this direction into a dense index `dim * 2 + sign.bit()`.
    pub const fn index(self) -> usize {
        self.dim as usize * 2 + self.sign.bit()
    }

    /// Recovers a direction from its packed [`index`](Self::index).
    pub fn from_index(index: usize) -> Direction {
        let sign = if index.is_multiple_of(2) {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Direction::new(index / 2, sign)
    }

    /// Iterates over all `2n` directions of an `n`-dimensional network,
    /// in packed-index order.
    ///
    /// ```
    /// use wormsim_topology::Direction;
    /// let dirs: Vec<_> = Direction::all(2).collect();
    /// assert_eq!(dirs.len(), 4);
    /// assert_eq!(dirs[0].index(), 0);
    /// ```
    pub fn all(num_dims: usize) -> impl Iterator<Item = Direction> {
        (0..num_dims * 2).map(Direction::from_index)
    }
}

impl fmt::Debug for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sign, self.dim)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sign, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_index_roundtrip() {
        for i in 0..8 {
            assert_eq!(Direction::from_index(i).index(), i);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for i in 0..8 {
            let d = Direction::from_index(i);
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().dim(), d.dim());
            assert_ne!(d.opposite().sign(), d.sign());
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let dirs: Vec<_> = Direction::all(3).collect();
        assert_eq!(dirs.len(), 6);
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Direction::new(0, Sign::Plus).to_string(), "+0");
        assert_eq!(Direction::new(2, Sign::Minus).to_string(), "-2");
    }
}

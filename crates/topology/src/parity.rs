//! Bipartite node coloring used by the negative-hop routing schemes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The parity (two-coloring class) of a node.
///
/// A node `x = (x_{n-1}, ..., x_0)` is **even** when the sum of its
/// coordinates is even, **odd** otherwise. On bipartite networks (meshes,
/// and tori whose radices are all even) adjacent nodes always have opposite
/// parity, which is the graph coloring the negative-hop schemes of
/// Gopal (1985) and Boppana & Chalasani rely on: a hop from an odd node to
/// an even node is a *negative* hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parity {
    /// Coordinate sum is even (label 1 in the paper's coloring).
    Even,
    /// Coordinate sum is odd (label 2 in the paper's coloring).
    Odd,
}

impl Parity {
    /// Computes the parity of a coordinate sum.
    pub fn of_sum(sum: u64) -> Parity {
        if sum.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Returns the opposite parity.
    pub const fn opposite(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parity::Even => write!(f, "even"),
            Parity::Odd => write!(f, "odd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_sums() {
        assert_eq!(Parity::of_sum(0), Parity::Even);
        assert_eq!(Parity::of_sum(7), Parity::Odd);
        assert_eq!(Parity::of_sum(8), Parity::Even);
    }

    #[test]
    fn opposite_flips() {
        assert_eq!(Parity::Even.opposite(), Parity::Odd);
        assert_eq!(Parity::Odd.opposite(), Parity::Even);
    }
}

//! The [`Topology`] type: k-ary n-cubes (tori) and meshes.

use crate::distance::{DimStep, MinimalSteps};
use crate::{ChannelId, Direction, DistanceDistribution, NodeId, Parity, Sign};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which family of direct network a [`Topology`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// k-ary n-cube: every dimension wraps around.
    Torus,
    /// Multi-dimensional mesh: no wrap-around links.
    Mesh,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Torus => write!(f, "torus"),
            TopologyKind::Mesh => write!(f, "mesh"),
        }
    }
}

/// Errors produced when constructing a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// No dimensions were given.
    NoDimensions,
    /// A dimension had radix smaller than 2.
    RadixTooSmall {
        /// The offending dimension.
        dim: usize,
        /// Its radix.
        radix: u16,
    },
    /// The node count overflows `u32`.
    TooManyNodes,
    /// The channel-id space (`nodes * 2 * dims`) overflows `u32`.
    ///
    /// [`ChannelId`] packs `node * 2n + direction` into a `u32`; a topology
    /// whose slot count exceeds that range would wrap silently, so it is
    /// rejected at construction instead.
    ChannelSpaceOverflow {
        /// The number of channel-id slots the topology would need.
        slots: u64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoDimensions => write!(f, "topology needs at least one dimension"),
            TopologyError::RadixTooSmall { dim, radix } => {
                write!(f, "dimension {dim} has radix {radix}, need at least 2")
            }
            TopologyError::TooManyNodes => write!(f, "node count overflows u32"),
            TopologyError::ChannelSpaceOverflow { slots } => {
                write!(
                    f,
                    "channel-id space needs {slots} slots, which overflows u32"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A k-ary n-cube (torus) or n-dimensional mesh with two unidirectional
/// physical channels between each pair of adjacent nodes.
///
/// Dimensions are numbered `0..n`; nodes are numbered `0..k` in each
/// dimension, with dimension 0 varying fastest in the flat node index.
/// Radices may differ per dimension (e.g. an 8×4 torus), matching the
/// simulator's "multi-dimensional tori and meshes" scope from the paper.
///
/// # Example
///
/// ```
/// use wormsim_topology::{Topology, Direction, Sign, Parity};
///
/// let t = Topology::torus(&[16, 16]);
/// let a = t.node_at(&[15, 15]);
/// // +0 from (15, 15) wraps to (0, 15) and crosses the dateline.
/// let dir = Direction::new(0, Sign::Plus);
/// assert_eq!(t.coords(t.neighbor(a, dir).unwrap()), vec![0, 15]);
/// assert!(t.is_wraparound(a, dir));
/// assert_eq!(t.parity(a), Parity::Even);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    dims: Vec<u16>,
    strides: Vec<u32>,
    num_nodes: u32,
}

impl Topology {
    /// Creates a torus with the given per-dimension radices.
    ///
    /// # Errors
    ///
    /// Returns an error if `dims` is empty, any radix is below 2, or the
    /// node count overflows `u32`.
    pub fn try_torus(dims: &[u16]) -> Result<Self, TopologyError> {
        Self::build(TopologyKind::Torus, dims)
    }

    /// Creates a mesh with the given per-dimension radices.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::try_torus`].
    pub fn try_mesh(dims: &[u16]) -> Result<Self, TopologyError> {
        Self::build(TopologyKind::Mesh, dims)
    }

    /// Creates a torus, panicking on invalid dimensions.
    ///
    /// # Panics
    ///
    /// Panics under the conditions [`Topology::try_torus`] reports as errors.
    pub fn torus(dims: &[u16]) -> Self {
        Self::try_torus(dims).expect("invalid torus dimensions")
    }

    /// Creates a mesh, panicking on invalid dimensions.
    ///
    /// # Panics
    ///
    /// Panics under the conditions [`Topology::try_mesh`] reports as errors.
    pub fn mesh(dims: &[u16]) -> Self {
        Self::try_mesh(dims).expect("invalid mesh dimensions")
    }

    /// Creates the k-ary n-cube `k^n` (the paper's `kn` notation).
    ///
    /// ```
    /// use wormsim_topology::Topology;
    /// let t = Topology::k_ary_n_cube(16, 2); // the paper's 16^2
    /// assert_eq!(t.num_nodes(), 256);
    /// ```
    pub fn k_ary_n_cube(k: u16, n: usize) -> Self {
        Self::torus(&vec![k; n])
    }

    fn build(kind: TopologyKind, dims: &[u16]) -> Result<Self, TopologyError> {
        if dims.is_empty() {
            return Err(TopologyError::NoDimensions);
        }
        for (dim, &radix) in dims.iter().enumerate() {
            if radix < 2 {
                return Err(TopologyError::RadixTooSmall { dim, radix });
            }
        }
        let mut strides = Vec::with_capacity(dims.len());
        let mut nodes: u64 = 1;
        for &radix in dims {
            strides.push(u32::try_from(nodes).map_err(|_| TopologyError::TooManyNodes)?);
            nodes *= radix as u64;
            if nodes > u32::MAX as u64 {
                return Err(TopologyError::TooManyNodes);
            }
        }
        let slots = nodes * 2 * dims.len() as u64;
        if slots > u32::MAX as u64 {
            return Err(TopologyError::ChannelSpaceOverflow { slots });
        }
        Ok(Topology {
            kind,
            dims: dims.to_vec(),
            strides,
            num_nodes: nodes as u32,
        })
    }

    /// The CLI-grammar label for this topology, e.g. `"torus:16x16"` or
    /// `"mesh:4x4x4"`.
    ///
    /// This is the form `--topo` accepts, so labels in benchmark reports and
    /// manifests can be pasted straight back into a command line. Contrast
    /// with [`fmt::Display`], which renders the prose form `"16x16 torus"`.
    ///
    /// ```
    /// use wormsim_topology::Topology;
    /// assert_eq!(Topology::k_ary_n_cube(8, 3).label(), "torus:8x8x8");
    /// ```
    pub fn label(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|k| k.to_string()).collect();
        format!("{}:{}", self.kind, dims.join("x"))
    }

    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Whether this topology wraps around (is a torus).
    pub fn wraps(&self) -> bool {
        self.kind == TopologyKind::Torus
    }

    /// Number of dimensions `n`.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// The radix (number of nodes) of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn radix(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    /// All per-dimension radices.
    pub fn dims(&self) -> &[u16] {
        &self.dims
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of physical-channel id slots (`N * 2n`).
    ///
    /// For meshes this includes boundary slots that carry no link; see
    /// [`Topology::has_channel`].
    pub fn num_channel_slots(&self) -> u32 {
        self.num_nodes * 2 * self.num_dims() as u32
    }

    /// Number of physical channels that actually exist.
    ///
    /// Equal to [`Topology::num_channel_slots`] for tori; smaller for meshes.
    pub fn num_physical_links(&self) -> u32 {
        match self.kind {
            TopologyKind::Torus => self.num_channel_slots(),
            TopologyKind::Mesh => {
                let mut links = 0u32;
                for dim in 0..self.num_dims() {
                    let k = self.dims[dim] as u32;
                    // (k - 1) adjacent pairs per line, 2 channels each.
                    links += 2 * (k - 1) * (self.num_nodes / k);
                }
                links
            }
        }
    }

    /// The coordinate of `node` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn coord(&self, node: NodeId, dim: usize) -> u16 {
        ((node.index() / self.strides[dim]) % self.dims[dim] as u32) as u16
    }

    /// All coordinates of `node`, dimension 0 first.
    pub fn coords(&self, node: NodeId) -> Vec<u16> {
        (0..self.num_dims()).map(|d| self.coord(node, d)).collect()
    }

    /// The node at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the number of coordinates differs from the number of
    /// dimensions or any coordinate is out of range.
    pub fn node_at(&self, coords: &[u16]) -> NodeId {
        assert_eq!(
            coords.len(),
            self.num_dims(),
            "coordinate count must match dimensions"
        );
        let mut index = 0u32;
        for (dim, &c) in coords.iter().enumerate() {
            assert!(
                c < self.dims[dim],
                "coordinate {c} out of range for dimension {dim} (radix {})",
                self.dims[dim]
            );
            index += c as u32 * self.strides[dim];
        }
        NodeId::new(index)
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Whether a physical channel leaves `node` in `direction`.
    ///
    /// Always true on a torus; false on mesh boundaries.
    pub fn has_channel(&self, node: NodeId, direction: Direction) -> bool {
        match self.kind {
            TopologyKind::Torus => true,
            TopologyKind::Mesh => {
                let c = self.coord(node, direction.dim());
                match direction.sign() {
                    Sign::Plus => c + 1 < self.dims[direction.dim()],
                    Sign::Minus => c > 0,
                }
            }
        }
    }

    /// The neighbor reached by one hop from `node` in `direction`, or `None`
    /// if no channel exists there (mesh boundary).
    pub fn neighbor(&self, node: NodeId, direction: Direction) -> Option<NodeId> {
        let dim = direction.dim();
        let k = self.dims[dim] as u32;
        let stride = self.strides[dim];
        let c = self.coord(node, dim) as u32;
        let new_c = match (self.kind, direction.sign()) {
            (TopologyKind::Torus, Sign::Plus) => (c + 1) % k,
            (TopologyKind::Torus, Sign::Minus) => (c + k - 1) % k,
            (TopologyKind::Mesh, Sign::Plus) => {
                if c + 1 >= k {
                    return None;
                }
                c + 1
            }
            (TopologyKind::Mesh, Sign::Minus) => {
                if c == 0 {
                    return None;
                }
                c - 1
            }
        };
        Some(NodeId::new(node.index() - c * stride + new_c * stride))
    }

    /// Whether the channel from `node` in `direction` is a wrap-around
    /// (dateline-crossing) link.
    ///
    /// Wrap-around links are the ones deadlock-free torus routing treats
    /// specially: in the `+` direction they leave coordinate `k-1`, in the
    /// `-` direction coordinate `0`. Always false on meshes.
    pub fn is_wraparound(&self, node: NodeId, direction: Direction) -> bool {
        if self.kind == TopologyKind::Mesh {
            return false;
        }
        let c = self.coord(node, direction.dim());
        match direction.sign() {
            Sign::Plus => c == self.dims[direction.dim()] - 1,
            Sign::Minus => c == 0,
        }
    }

    /// The channel id for the link leaving `node` in `direction`.
    pub fn channel(&self, node: NodeId, direction: Direction) -> ChannelId {
        ChannelId::new(node, direction, self.num_dims())
    }

    /// The parity (coordinate-sum two-coloring) of `node`.
    pub fn parity(&self, node: NodeId) -> Parity {
        let sum: u64 = (0..self.num_dims())
            .map(|d| self.coord(node, d) as u64)
            .sum();
        Parity::of_sum(sum)
    }

    /// Whether adjacent nodes always have opposite parity, i.e. the network
    /// graph is bipartite under the coordinate-sum coloring.
    ///
    /// True for meshes, and for tori whose radices are all even. The
    /// negative-hop schemes (nhop/nbc) require this.
    pub fn is_bipartite(&self) -> bool {
        match self.kind {
            TopologyKind::Mesh => true,
            TopologyKind::Torus => self.dims.iter().all(|&k| k % 2 == 0),
        }
    }

    /// The minimal per-dimension movement from `from` to `to` in `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn dim_step(&self, from: NodeId, to: NodeId, dim: usize) -> DimStep {
        let k = self.dims[dim];
        let s = self.coord(from, dim);
        let d = self.coord(to, dim);
        if s == d {
            return DimStep::Done;
        }
        match self.kind {
            TopologyKind::Mesh => {
                if d > s {
                    DimStep::One {
                        sign: Sign::Plus,
                        dist: d - s,
                    }
                } else {
                    DimStep::One {
                        sign: Sign::Minus,
                        dist: s - d,
                    }
                }
            }
            TopologyKind::Torus => {
                let plus = (d + k - s) % k;
                let minus = k - plus;
                use std::cmp::Ordering;
                match plus.cmp(&minus) {
                    Ordering::Less => DimStep::One {
                        sign: Sign::Plus,
                        dist: plus,
                    },
                    Ordering::Greater => DimStep::One {
                        sign: Sign::Minus,
                        dist: minus,
                    },
                    Ordering::Equal => DimStep::Both { dist: plus },
                }
            }
        }
    }

    /// The complete minimal-path structure from `from` to `to`.
    pub fn minimal_steps(&self, from: NodeId, to: NodeId) -> MinimalSteps {
        MinimalSteps::new(
            (0..self.num_dims())
                .map(|dim| self.dim_step(from, to, dim))
                .collect(),
        )
    }

    /// The minimal-path distance (number of hops) from `from` to `to`.
    pub fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        (0..self.num_dims())
            .map(|dim| self.dim_step(from, to, dim).dist() as u32)
            .sum()
    }

    /// The network diameter (largest minimal-path distance).
    pub fn diameter(&self) -> u32 {
        self.dims
            .iter()
            .map(|&k| match self.kind {
                TopologyKind::Torus => (k / 2) as u32,
                TopologyKind::Mesh => (k - 1) as u32,
            })
            .sum()
    }

    /// The maximum number of *negative* hops any minimal path can contain
    /// under the bipartite coloring: `ceil(diameter / 2)`.
    ///
    /// This is the paper's `⌈n⌊k/2⌋/2⌉` bound that sizes the nhop/nbc
    /// virtual-channel classes.
    pub fn max_negative_hops(&self) -> u32 {
        self.diameter().div_ceil(2)
    }

    /// The exact distance distribution under uniform traffic.
    ///
    /// Convenience wrapper around [`DistanceDistribution::uniform`].
    pub fn uniform_distance_distribution(&self) -> DistanceDistribution {
        DistanceDistribution::uniform(self)
    }

    /// The mean minimal distance under uniform traffic (destination chosen
    /// uniformly among the other `N-1` nodes).
    pub fn uniform_avg_distance(&self) -> f64 {
        self.uniform_distance_distribution().mean()
    }

    /// Histogram of per-dimension distances: entry `d` is the number of
    /// destination coordinates at ring/line distance `d` from a source
    /// coordinate, averaged over source coordinates.
    ///
    /// Used internally by [`DistanceDistribution::uniform`]; exposed for
    /// traffic-pattern weight computations.
    pub fn per_dim_distance_histogram(&self, dim: usize) -> Vec<f64> {
        let k = self.dims[dim] as usize;
        match self.kind {
            TopologyKind::Torus => {
                let half = k / 2;
                let mut h = vec![0.0; half + 1];
                h[0] = 1.0;
                for item in h.iter_mut().take(half).skip(1) {
                    *item = 2.0;
                }
                if k.is_multiple_of(2) {
                    h[half] = 1.0;
                } else if half >= 1 {
                    h[half] = 2.0;
                }
                h
            }
            TopologyKind::Mesh => {
                let mut h = vec![0.0; k];
                h[0] = 1.0;
                for (d, item) in h.iter_mut().enumerate().skip(1) {
                    *item = 2.0 * (k - d) as f64 / k as f64;
                }
                h
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.dims.iter().map(|k| k.to_string()).collect();
        write!(f, "{} {}", dims.join("x"), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(Topology::try_torus(&[]), Err(TopologyError::NoDimensions));
        assert_eq!(
            Topology::try_mesh(&[4, 1]),
            Err(TopologyError::RadixTooSmall { dim: 1, radix: 1 })
        );
        assert!(Topology::try_torus(&[16, 16]).is_ok());
    }

    #[test]
    fn coordinate_roundtrip() {
        let t = Topology::torus(&[5, 7, 3]);
        for node in t.nodes() {
            let coords = t.coords(node);
            assert_eq!(t.node_at(&coords), node);
        }
    }

    #[test]
    fn torus_neighbors_wrap() {
        let t = Topology::torus(&[4, 4]);
        let n = t.node_at(&[3, 0]);
        assert_eq!(
            t.neighbor(n, Direction::new(0, Sign::Plus)),
            Some(t.node_at(&[0, 0]))
        );
        assert_eq!(
            t.neighbor(n, Direction::new(1, Sign::Minus)),
            Some(t.node_at(&[3, 3]))
        );
    }

    #[test]
    fn mesh_boundaries_have_no_channel() {
        let t = Topology::mesh(&[4, 4]);
        let corner = t.node_at(&[0, 0]);
        assert_eq!(t.neighbor(corner, Direction::new(0, Sign::Minus)), None);
        assert!(!t.has_channel(corner, Direction::new(1, Sign::Minus)));
        assert!(t.has_channel(corner, Direction::new(0, Sign::Plus)));
    }

    #[test]
    fn wraparound_detection() {
        let t = Topology::torus(&[16, 16]);
        let edge = t.node_at(&[15, 3]);
        assert!(t.is_wraparound(edge, Direction::new(0, Sign::Plus)));
        assert!(!t.is_wraparound(edge, Direction::new(0, Sign::Minus)));
        let zero = t.node_at(&[0, 3]);
        assert!(t.is_wraparound(zero, Direction::new(0, Sign::Minus)));
        let m = Topology::mesh(&[4, 4]);
        assert!(!m.is_wraparound(m.node_at(&[3, 3]), Direction::new(0, Sign::Plus)));
    }

    #[test]
    fn distances_on_torus() {
        let t = Topology::torus(&[16, 16]);
        let a = t.node_at(&[0, 0]);
        let b = t.node_at(&[15, 1]);
        // Wraparound makes (0 -> 15) a single hop.
        assert_eq!(t.distance(a, b), 2);
        assert_eq!(t.diameter(), 16);
        // The paper's example: (4,4) -> (2,2) in 6^2 takes 4 hops.
        let s = Topology::torus(&[6, 6]);
        assert_eq!(s.distance(s.node_at(&[4, 4]), s.node_at(&[2, 2])), 4);
    }

    #[test]
    fn distances_on_mesh() {
        let t = Topology::mesh(&[10, 10]);
        let a = t.node_at(&[3, 3]);
        let b = t.node_at(&[1, 1]);
        assert_eq!(t.distance(a, b), 4);
        assert_eq!(t.diameter(), 18);
    }

    #[test]
    fn tie_distance_reports_both() {
        let t = Topology::torus(&[8, 8]);
        let a = t.node_at(&[0, 0]);
        let b = t.node_at(&[4, 0]);
        assert_eq!(t.dim_step(a, b, 0), DimStep::Both { dist: 4 });
        assert_eq!(t.dim_step(a, b, 1), DimStep::Done);
    }

    #[test]
    fn parity_alternates_on_even_torus() {
        let t = Topology::torus(&[16, 16]);
        assert!(t.is_bipartite());
        for node in t.nodes() {
            for dir in Direction::all(2) {
                let n = t.neighbor(node, dir).unwrap();
                assert_eq!(t.parity(n), t.parity(node).opposite());
            }
        }
    }

    #[test]
    fn odd_torus_is_not_bipartite() {
        assert!(!Topology::torus(&[5, 5]).is_bipartite());
        assert!(Topology::mesh(&[5, 5]).is_bipartite());
    }

    #[test]
    fn paper_vc_counts() {
        // 16^2: phop needs n*floor(k/2)+1 = 17 classes, nhop needs
        // ceil(n*floor(k/2)/2)+1 = 9 classes.
        let t = Topology::torus(&[16, 16]);
        assert_eq!(t.diameter() + 1, 17);
        assert_eq!(t.max_negative_hops() + 1, 9);
    }

    #[test]
    fn physical_link_counts() {
        let t = Topology::torus(&[4, 4]);
        assert_eq!(t.num_physical_links(), 16 * 4);
        let m = Topology::mesh(&[4, 4]);
        // Per dimension: 3 pairs per line * 4 lines * 2 directions = 24.
        assert_eq!(m.num_physical_links(), 48);
        assert_eq!(m.num_channel_slots(), 64);
    }

    #[test]
    fn minimal_steps_example() {
        let t = Topology::torus(&[6, 6]);
        let steps = t.minimal_steps(t.node_at(&[4, 4]), t.node_at(&[2, 2]));
        assert_eq!(steps.total_distance(), 4);
        assert!(!steps.is_done());
        assert_eq!(steps.uncorrected_dims().collect::<Vec<_>>(), vec![0, 1]);
        for (_, s) in steps.iter() {
            assert_eq!(
                s,
                DimStep::One {
                    sign: Sign::Minus,
                    dist: 2
                }
            );
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Topology::torus(&[16, 16]).to_string(), "16x16 torus");
        assert_eq!(Topology::mesh(&[10, 10]).to_string(), "10x10 mesh");
    }

    #[test]
    fn label_is_cli_grammar() {
        assert_eq!(Topology::torus(&[16, 16]).label(), "torus:16x16");
        assert_eq!(Topology::mesh(&[4, 6, 8]).label(), "mesh:4x6x8");
        assert_eq!(Topology::k_ary_n_cube(16, 3).label(), "torus:16x16x16");
    }

    #[test]
    fn channel_space_overflow_rejected() {
        // 46341^2 nodes fits u32 (≈ 2.147e9) but needs 4 channel slots per
        // node, which does not.
        assert_eq!(
            Topology::try_torus(&[46341, 46341]),
            Err(TopologyError::ChannelSpaceOverflow {
                slots: 46341u64 * 46341 * 4,
            })
        );
        // Node count itself overflowing still reports TooManyNodes.
        assert_eq!(
            Topology::try_torus(&[65535, 65535, 65535]),
            Err(TopologyError::TooManyNodes)
        );
        // Large-but-valid sizes still build.
        assert!(Topology::try_torus(&[64, 64]).is_ok());
        assert!(Topology::try_torus(&[16, 16, 16]).is_ok());
    }
}

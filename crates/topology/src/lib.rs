//! Point-to-point direct-network topologies for wormhole-routing studies.
//!
//! This crate models the interconnection substrate of Boppana & Chalasani,
//! *A Comparison of Adaptive Wormhole Routing Algorithms* (ISCA 1993):
//! k-ary n-cubes (multi-dimensional tori) and multi-dimensional meshes in
//! which every pair of adjacent nodes is connected by **two unidirectional
//! physical channels**, one per direction.
//!
//! The central type is [`Topology`], which knows how to
//!
//! * enumerate nodes ([`NodeId`]) and unidirectional channels ([`ChannelId`]),
//! * move between flat node indices and per-dimension coordinates,
//! * compute the set of *minimal* directions a message may take
//!   ([`Topology::minimal_steps`]), including the torus tie case where both
//!   directions of a dimension are equidistant,
//! * answer distance queries exactly ([`Topology::distance`],
//!   [`Topology::diameter`], [`Topology::uniform_avg_distance`]),
//! * classify nodes by parity for the bipartite coloring that underlies the
//!   negative-hop routing schemes ([`Topology::parity`]), and
//! * identify *wrap-around* (dateline) links, which deadlock-free torus
//!   routing algorithms treat specially ([`Topology::is_wraparound`]).
//!
//! # Example
//!
//! ```
//! use wormsim_topology::{Topology, Direction, Sign};
//!
//! // The 16x16 torus used throughout the ISCA '93 paper.
//! let t = Topology::torus(&[16, 16]);
//! assert_eq!(t.num_nodes(), 256);
//! assert_eq!(t.diameter(), 16);
//!
//! let origin = t.node_at(&[0, 0]);
//! let minus_x = t.neighbor(origin, Direction::new(0, Sign::Minus)).unwrap();
//! assert_eq!(t.coords(minus_x), vec![15, 0]); // wraps around
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod direction;
mod distance;
mod mask;
mod node;
mod parity;
mod topology;

pub use channel::ChannelId;
pub use direction::{Direction, Sign};
pub use distance::{DimStep, DistanceDistribution, MinimalSteps};
pub use mask::ChannelMask;
pub use node::NodeId;
pub use parity::Parity;
pub use topology::{Topology, TopologyError, TopologyKind};

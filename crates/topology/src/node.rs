//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (router/processor) in the network, identified by a flat index.
///
/// Node indices are dense: a topology with `N` nodes uses ids `0..N`.
/// Coordinates are recovered through [`Topology::coords`].
///
/// [`Topology::coords`]: crate::Topology::coords
///
/// # Example
///
/// ```
/// use wormsim_topology::{NodeId, Topology};
///
/// let t = Topology::torus(&[4, 4]);
/// let n = NodeId::new(7);
/// assert_eq!(t.coords(n), vec![3, 1]); // dimension 0 varies fastest
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a flat index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the flat index of this node.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the flat index as a `usize`, convenient for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for u32 {
    fn from(node: NodeId) -> Self {
        node.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.as_usize(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn debug_and_display() {
        let n = NodeId::new(7);
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(format!("{n}"), "7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}

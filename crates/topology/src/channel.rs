//! Physical-channel identifiers.

use crate::{Direction, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unidirectional physical channel, identified by its *source* node and
/// the [`Direction`] it travels.
///
/// Channel ids are dense: a topology with `N` nodes and `n` dimensions uses
/// ids `0..N * 2n`, with `id = node * 2n + direction.index()`. Mesh boundary
/// positions that have no physical link still reserve an id (the simulator
/// simply never uses them), which keeps indexing branch-free.
///
/// # Example
///
/// ```
/// use wormsim_topology::{ChannelId, Direction, NodeId, Sign};
///
/// let c = ChannelId::new(NodeId::new(5), Direction::new(1, Sign::Plus), 2);
/// assert_eq!(c.source(2), NodeId::new(5));
/// assert_eq!(c.direction(2), Direction::new(1, Sign::Plus));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates the channel leaving `source` in `direction`, for a network
    /// with `num_dims` dimensions.
    pub fn new(source: NodeId, direction: Direction, num_dims: usize) -> Self {
        ChannelId(source.index() * (2 * num_dims as u32) + direction.index() as u32)
    }

    /// Creates a channel id directly from its dense index.
    pub const fn from_index(index: u32) -> Self {
        ChannelId(index)
    }

    /// The dense index of this channel.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The dense index as `usize`, convenient for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The node this channel leaves from.
    pub fn source(self, num_dims: usize) -> NodeId {
        NodeId::new(self.0 / (2 * num_dims as u32))
    }

    /// The direction this channel travels.
    pub fn direction(self, num_dims: usize) -> Direction {
        Direction::from_index((self.0 % (2 * num_dims as u32)) as usize)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sign;

    #[test]
    fn dense_packing_roundtrip() {
        for node in 0..10u32 {
            for dir_index in 0..6 {
                let dir = Direction::from_index(dir_index);
                let c = ChannelId::new(NodeId::new(node), dir, 3);
                assert_eq!(c.source(3), NodeId::new(node));
                assert_eq!(c.direction(3), dir);
            }
        }
    }

    #[test]
    fn index_layout_matches_formula() {
        let c = ChannelId::new(NodeId::new(3), Direction::new(1, Sign::Minus), 2);
        // 3 * 4 + (1*2 + 1) = 15
        assert_eq!(c.index(), 15);
        assert_eq!(ChannelId::from_index(15), c);
    }
}

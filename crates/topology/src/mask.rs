//! Fault masks: views of a [`Topology`] with some channels or nodes dead.
//!
//! A [`ChannelMask`] records which unidirectional physical channels and
//! which nodes of a topology are *dead*. The topology itself is immutable —
//! the mask is a cheap overlay that routing, deadlock analysis, and the
//! simulator consult when iterating channels or generating candidates, so
//! the same `Topology` value can be shared between a healthy network and
//! any number of degraded views of it.
//!
//! Killing a node kills every channel incident to it (both the node's own
//! outgoing channels and the neighbors' channels pointing at it), which
//! makes channel aliveness a single bit lookup on the hot path.
//!
//! # Example
//!
//! ```
//! use wormsim_topology::{ChannelMask, Direction, Sign, Topology};
//!
//! let topo = Topology::torus(&[4, 4]);
//! let mut mask = ChannelMask::all_alive(&topo);
//! assert!(mask.is_trivial());
//!
//! let n = topo.node_at(&[1, 1]);
//! let dir = Direction::new(0, Sign::Plus);
//! mask.kill_channel(topo.channel(n, dir));
//! assert!(!mask.channel_alive(topo.channel(n, dir)));
//! // The reverse channel is a distinct physical channel and stays alive.
//! let back = topo.channel(topo.neighbor(n, dir).unwrap(), dir.opposite());
//! assert!(mask.channel_alive(back));
//! ```

use crate::{ChannelId, Direction, NodeId, Topology};
use serde::{Deserialize, Serialize};

fn words_for(bits: u32) -> usize {
    (bits as usize).div_ceil(64)
}

/// A set of dead channels and dead nodes overlaid on a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMask {
    dead_channels: Vec<u64>,
    dead_nodes: Vec<u64>,
    dead_channel_count: u32,
    dead_node_count: u32,
}

impl ChannelMask {
    /// Creates a mask for `topo` with every channel and node alive.
    pub fn all_alive(topo: &Topology) -> Self {
        ChannelMask {
            dead_channels: vec![0; words_for(topo.num_channel_slots())],
            dead_nodes: vec![0; words_for(topo.num_nodes())],
            dead_channel_count: 0,
            dead_node_count: 0,
        }
    }

    /// Whether nothing is dead (the mask is a no-op view).
    pub fn is_trivial(&self) -> bool {
        self.dead_channel_count == 0 && self.dead_node_count == 0
    }

    /// Number of individually killed channels (channels killed as a side
    /// effect of [`kill_node`](Self::kill_node) are included).
    pub fn dead_channel_count(&self) -> u32 {
        self.dead_channel_count
    }

    /// Number of killed nodes.
    pub fn dead_node_count(&self) -> u32 {
        self.dead_node_count
    }

    /// Marks one unidirectional channel dead. Idempotent.
    pub fn kill_channel(&mut self, channel: ChannelId) {
        let i = channel.as_usize();
        let bit = 1u64 << (i % 64);
        if self.dead_channels[i / 64] & bit == 0 {
            self.dead_channels[i / 64] |= bit;
            self.dead_channel_count += 1;
        }
    }

    /// Marks `node` dead, killing every channel incident to it (its own
    /// outgoing channels and each neighbor's channel towards it). Idempotent.
    pub fn kill_node(&mut self, topo: &Topology, node: NodeId) {
        let i = node.index() as usize;
        let bit = 1u64 << (i % 64);
        if self.dead_nodes[i / 64] & bit == 0 {
            self.dead_nodes[i / 64] |= bit;
            self.dead_node_count += 1;
        }
        for dir in Direction::all(topo.num_dims()) {
            if topo.has_channel(node, dir) {
                self.kill_channel(topo.channel(node, dir));
            }
            if let Some(neighbor) = topo.neighbor(node, dir) {
                self.kill_channel(topo.channel(neighbor, dir.opposite()));
            }
        }
    }

    /// Whether `channel` is alive under this mask.
    #[inline]
    pub fn channel_alive(&self, channel: ChannelId) -> bool {
        let i = channel.as_usize();
        self.dead_channels[i / 64] & (1u64 << (i % 64)) == 0
    }

    /// Whether `node` is alive under this mask.
    #[inline]
    pub fn node_alive(&self, node: NodeId) -> bool {
        let i = node.index() as usize;
        self.dead_nodes[i / 64] & (1u64 << (i % 64)) == 0
    }
}

impl Topology {
    /// Like [`Topology::neighbor`], but returns `None` when the connecting
    /// channel is dead under `mask` (a dead destination node implies dead
    /// incident channels, so no separate node check is needed).
    pub fn masked_neighbor(
        &self,
        mask: &ChannelMask,
        node: NodeId,
        direction: Direction,
    ) -> Option<NodeId> {
        if !mask.channel_alive(self.channel(node, direction)) {
            return None;
        }
        self.neighbor(node, direction)
    }

    /// Iterates over all physical channels that exist *and* are alive
    /// under `mask`.
    pub fn live_channels<'a>(
        &'a self,
        mask: &'a ChannelMask,
    ) -> impl Iterator<Item = ChannelId> + 'a {
        self.nodes().flat_map(move |node| {
            Direction::all(self.num_dims()).filter_map(move |dir| {
                if self.has_channel(node, dir) {
                    let ch = self.channel(node, dir);
                    if mask.channel_alive(ch) {
                        return Some(ch);
                    }
                }
                None
            })
        })
    }

    /// BFS over the surviving subgraph: `reachable[d]` is true iff node `d`
    /// can be reached from `src` using only live channels. A dead `src`
    /// reaches nothing (not even itself).
    pub fn reachable_from(&self, mask: &ChannelMask, src: NodeId) -> Vec<bool> {
        let mut reachable = vec![false; self.num_nodes() as usize];
        if !mask.node_alive(src) {
            return reachable;
        }
        reachable[src.index() as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(node) = queue.pop_front() {
            for dir in Direction::all(self.num_dims()) {
                if let Some(next) = self.masked_neighbor(mask, node, dir) {
                    let i = next.index() as usize;
                    if !reachable[i] {
                        reachable[i] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        reachable
    }

    /// Whether the surviving subgraph is strongly connected over its alive
    /// nodes (every alive node can reach every other alive node).
    ///
    /// With unidirectional channel faults reachability is not symmetric, so
    /// this checks a BFS from every alive node.
    pub fn surviving_graph_connected(&self, mask: &ChannelMask) -> bool {
        let alive: Vec<NodeId> = self.nodes().filter(|&n| mask.node_alive(n)).collect();
        if alive.is_empty() {
            return false;
        }
        for &src in &alive {
            let reach = self.reachable_from(mask, src);
            if alive.iter().any(|&d| !reach[d.index() as usize]) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sign;

    #[test]
    fn trivial_mask_changes_nothing() {
        let t = Topology::torus(&[4, 4]);
        let mask = ChannelMask::all_alive(&t);
        assert!(mask.is_trivial());
        assert_eq!(
            t.live_channels(&mask).count() as u32,
            t.num_physical_links()
        );
        for node in t.nodes() {
            assert!(mask.node_alive(node));
            for dir in Direction::all(2) {
                assert_eq!(t.masked_neighbor(&mask, node, dir), t.neighbor(node, dir));
            }
        }
    }

    #[test]
    fn kill_channel_is_unidirectional_and_idempotent() {
        let t = Topology::torus(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&t);
        let n = t.node_at(&[1, 1]);
        let dir = Direction::new(0, Sign::Plus);
        mask.kill_channel(t.channel(n, dir));
        mask.kill_channel(t.channel(n, dir));
        assert_eq!(mask.dead_channel_count(), 1);
        assert_eq!(t.masked_neighbor(&mask, n, dir), None);
        let back_src = t.neighbor(n, dir).unwrap();
        assert_eq!(t.masked_neighbor(&mask, back_src, dir.opposite()), Some(n));
        assert_eq!(
            t.live_channels(&mask).count() as u32,
            t.num_physical_links() - 1
        );
    }

    #[test]
    fn kill_node_kills_all_incident_channels() {
        let t = Topology::torus(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&t);
        let n = t.node_at(&[2, 2]);
        mask.kill_node(&t, n);
        assert!(!mask.node_alive(n));
        assert_eq!(mask.dead_node_count(), 1);
        // 4 outgoing + 4 incoming on a 2-D torus.
        assert_eq!(mask.dead_channel_count(), 8);
        for dir in Direction::all(2) {
            assert_eq!(t.masked_neighbor(&mask, n, dir), None);
            let neighbor = t.neighbor(n, dir).unwrap();
            assert_eq!(t.masked_neighbor(&mask, neighbor, dir.opposite()), None);
        }
    }

    #[test]
    fn mesh_boundary_kill_node_counts_only_real_channels() {
        let t = Topology::mesh(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&t);
        mask.kill_node(&t, t.node_at(&[0, 0]));
        // The corner has 2 outgoing + 2 incoming real channels.
        assert_eq!(mask.dead_channel_count(), 4);
    }

    #[test]
    fn reachability_respects_the_mask() {
        let t = Topology::mesh(&[3]);
        // A 3-node line: kill the only forward channel 0 -> 1.
        let mut mask = ChannelMask::all_alive(&t);
        mask.kill_channel(t.channel(t.node_at(&[0]), Direction::new(0, Sign::Plus)));
        let reach = t.reachable_from(&mask, t.node_at(&[0]));
        assert!(reach[0]);
        assert!(!reach[1]);
        assert!(!reach[2]);
        // Backwards still works.
        let back = t.reachable_from(&mask, t.node_at(&[2]));
        assert!(back.iter().all(|&r| r));
        assert!(!t.surviving_graph_connected(&mask));
    }

    #[test]
    fn torus_survives_single_link_loss() {
        let t = Topology::torus(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&t);
        mask.kill_channel(t.channel(t.node_at(&[0, 0]), Direction::new(0, Sign::Plus)));
        assert!(t.surviving_graph_connected(&mask));
    }

    #[test]
    fn dead_source_reaches_nothing() {
        let t = Topology::torus(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&t);
        let n = t.node_at(&[0, 0]);
        mask.kill_node(&t, n);
        let reach = t.reachable_from(&mask, n);
        assert!(reach.iter().all(|&r| !r));
    }
}

//! Minimal-path structure and distance distributions.

use crate::{Sign, Topology};
use serde::{Deserialize, Serialize};

/// The minimal movement a message must make in one dimension.
///
/// On a torus, when the remaining offset in a dimension is exactly half the
/// radix, *both* directions are minimal ([`DimStep::Both`]); routing
/// algorithms may then pick either.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimStep {
    /// The dimension is already corrected; no hops needed.
    Done,
    /// Exactly one direction is minimal.
    One {
        /// The minimal direction's sign.
        sign: Sign,
        /// Remaining hops in this dimension.
        dist: u16,
    },
    /// Both directions are minimal (torus, offset exactly `k/2`).
    Both {
        /// Remaining hops in this dimension (either way).
        dist: u16,
    },
}

impl DimStep {
    /// Remaining hops in this dimension along a minimal path.
    pub fn dist(self) -> u16 {
        match self {
            DimStep::Done => 0,
            DimStep::One { dist, .. } | DimStep::Both { dist } => dist,
        }
    }

    /// Whether the given sign is a minimal direction for this step.
    pub fn allows(self, sign: Sign) -> bool {
        match self {
            DimStep::Done => false,
            DimStep::One { sign: s, .. } => s == sign,
            DimStep::Both { .. } => true,
        }
    }
}

/// The complete minimal-path structure between two nodes: one [`DimStep`]
/// per dimension.
///
/// # Example
///
/// ```
/// use wormsim_topology::{Topology, DimStep, Sign};
///
/// let t = Topology::torus(&[8, 8]);
/// let steps = t.minimal_steps(t.node_at(&[0, 0]), t.node_at(&[3, 4]));
/// assert_eq!(steps.total_distance(), 7);
/// assert_eq!(steps.step(0), DimStep::One { sign: Sign::Plus, dist: 3 });
/// assert_eq!(steps.step(1), DimStep::Both { dist: 4 }); // 4 == 8/2
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimalSteps {
    steps: Vec<DimStep>,
}

impl MinimalSteps {
    pub(crate) fn new(steps: Vec<DimStep>) -> Self {
        MinimalSteps { steps }
    }

    /// The step required in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn step(&self, dim: usize) -> DimStep {
        self.steps[dim]
    }

    /// Iterates over `(dimension, step)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, DimStep)> + '_ {
        self.steps.iter().copied().enumerate()
    }

    /// Total remaining hops along any minimal path.
    pub fn total_distance(&self) -> u32 {
        self.steps.iter().map(|s| s.dist() as u32).sum()
    }

    /// Whether the destination has been reached.
    pub fn is_done(&self) -> bool {
        self.steps.iter().all(|s| matches!(s, DimStep::Done))
    }

    /// The dimensions still to be corrected, lowest first.
    pub fn uncorrected_dims(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter()
            .filter(|(_, s)| !matches!(s, DimStep::Done))
            .map(|(d, _)| d)
    }
}

/// The exact distribution of source–destination distances under uniform
/// traffic (destination chosen uniformly among all nodes except the source).
///
/// Computed by convolving the per-dimension ring/line distance distributions
/// and removing the zero-distance (self) case, so it is exact for any radix
/// mix, not a sampling estimate.
///
/// # Example
///
/// ```
/// use wormsim_topology::{Topology, DistanceDistribution};
///
/// let t = Topology::torus(&[16, 16]);
/// let d = DistanceDistribution::uniform(&t);
/// // The paper quotes an average diameter of 8.03 for uniform traffic on 16^2.
/// assert!((d.mean() - 8.031).abs() < 0.01);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceDistribution {
    probs: Vec<f64>,
    mean: f64,
}

impl DistanceDistribution {
    /// Computes the exact distance distribution for uniform traffic on `topo`.
    pub fn uniform(topo: &Topology) -> Self {
        // Per-dimension distribution of |minimal offset| for a uniformly
        // chosen coordinate pair (including equal coordinates), then
        // convolve across dimensions and drop the all-zero case.
        let mut dist = vec![1.0f64];
        for dim in 0..topo.num_dims() {
            let k = topo.radix(dim) as usize;
            let per_dim = topo.per_dim_distance_histogram(dim);
            let mut next = vec![0.0; dist.len() + per_dim.len() - 1];
            for (a, &pa) in dist.iter().enumerate() {
                for (b, &pb) in per_dim.iter().enumerate() {
                    next[a + b] += pa * pb / k as f64;
                }
            }
            dist = next;
        }
        // `dist` now includes the destination == source case at index 0 with
        // probability 1/N; condition on destination != source.
        let n = topo.num_nodes() as f64;
        let p_self = 1.0 / n;
        dist[0] -= p_self;
        let scale = 1.0 / (1.0 - p_self);
        let mut mean = 0.0;
        for (h, p) in dist.iter_mut().enumerate() {
            *p *= scale;
            mean += h as f64 * *p;
        }
        DistanceDistribution { probs: dist, mean }
    }

    /// Builds a distribution from explicit per-distance probabilities.
    ///
    /// The probabilities are normalized; entries must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, contains a negative value, or sums to zero.
    pub fn from_probs(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "distance distribution must be non-empty");
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "distance probabilities must be non-negative"
        );
        let total: f64 = probs.iter().sum();
        assert!(total > 0.0, "distance probabilities must not all be zero");
        let probs: Vec<f64> = probs.into_iter().map(|p| p / total).collect();
        let mean = probs.iter().enumerate().map(|(h, p)| h as f64 * p).sum();
        DistanceDistribution { probs, mean }
    }

    /// The probability that a message travels exactly `hops` hops.
    pub fn weight(&self, hops: usize) -> f64 {
        self.probs.get(hops).copied().unwrap_or(0.0)
    }

    /// All per-distance probabilities, indexed by hop count.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The mean distance.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The largest hop count with non-zero probability.
    pub fn max_distance(&self) -> usize {
        self.probs.iter().rposition(|&p| p > 0.0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_step_accessors() {
        assert_eq!(DimStep::Done.dist(), 0);
        assert!(!DimStep::Done.allows(Sign::Plus));
        let one = DimStep::One {
            sign: Sign::Minus,
            dist: 3,
        };
        assert_eq!(one.dist(), 3);
        assert!(one.allows(Sign::Minus));
        assert!(!one.allows(Sign::Plus));
        let both = DimStep::Both { dist: 4 };
        assert!(both.allows(Sign::Plus) && both.allows(Sign::Minus));
    }

    #[test]
    fn uniform_distribution_sums_to_one() {
        for topo in [
            Topology::torus(&[16, 16]),
            Topology::mesh(&[8, 8]),
            Topology::torus(&[4, 4, 4]),
        ] {
            let d = DistanceDistribution::uniform(&topo);
            let total: f64 = d.probs().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{total}");
            assert_eq!(d.weight(0), 0.0);
        }
    }

    #[test]
    fn paper_quoted_average_diameter() {
        let t = Topology::torus(&[16, 16]);
        let d = DistanceDistribution::uniform(&t);
        assert!((d.mean() - 8.0 * 256.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn paper_quoted_hop_class_weights() {
        // "hop-class 1 has a weight of 0.0157 and hop-class 16 has a weight
        //  of 0.0039, since each node has four neighbors but only one
        //  diametrically opposite node."
        let t = Topology::torus(&[16, 16]);
        let d = DistanceDistribution::uniform(&t);
        assert!((d.weight(1) - 4.0 / 255.0).abs() < 1e-12);
        assert!((d.weight(16) - 1.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn max_distance_equals_diameter_for_torus() {
        let t = Topology::torus(&[16, 16]);
        let d = DistanceDistribution::uniform(&t);
        assert_eq!(d.max_distance() as u32, t.diameter());
    }

    #[test]
    fn from_probs_normalizes() {
        let d = DistanceDistribution::from_probs(vec![0.0, 2.0, 2.0]);
        assert!((d.weight(1) - 0.5).abs() < 1e-12);
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_probs_rejects_empty() {
        let _ = DistanceDistribution::from_probs(vec![]);
    }
}

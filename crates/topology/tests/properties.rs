//! Property-based tests for topology invariants.

use proptest::prelude::*;
use wormsim_topology::{DimStep, Direction, NodeId, Topology};

fn arb_topology() -> impl Strategy<Value = Topology> {
    let dims = prop::collection::vec(2u16..=9, 1..=3);
    (dims, prop::bool::ANY).prop_map(|(dims, torus)| {
        if torus {
            Topology::torus(&dims)
        } else {
            Topology::mesh(&dims)
        }
    })
}

fn arb_topology_and_pair() -> impl Strategy<Value = (Topology, NodeId, NodeId)> {
    arb_topology().prop_flat_map(|t| {
        let n = t.num_nodes();
        (Just(t), 0..n, 0..n).prop_map(|(t, a, b)| (t, NodeId::new(a), NodeId::new(b)))
    })
}

proptest! {
    /// Distance is a metric: symmetric, zero iff equal, triangle inequality.
    #[test]
    fn distance_is_a_metric((t, a, b) in arb_topology_and_pair(), c_seed in 0u32..1000) {
        let c = NodeId::new(c_seed % t.num_nodes());
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, b) == 0, a == b);
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        prop_assert!(t.distance(a, b) <= t.diameter());
    }

    /// Any hop in a minimal direction decreases the distance by exactly one.
    #[test]
    fn minimal_hops_decrease_distance((t, a, b) in arb_topology_and_pair()) {
        prop_assume!(a != b);
        let steps = t.minimal_steps(a, b);
        let mut found_any = false;
        for (dim, step) in steps.iter() {
            for dir in Direction::all(t.num_dims()).filter(|d| d.dim() == dim) {
                if step.allows(dir.sign()) {
                    let next = t.neighbor(a, dir).expect("minimal direction must have a channel");
                    prop_assert_eq!(t.distance(next, b), t.distance(a, b) - 1);
                    found_any = true;
                }
            }
        }
        prop_assert!(found_any, "some minimal direction must exist");
    }

    /// Neighbor relations are inverse: going +d then -d returns to start.
    #[test]
    fn neighbors_are_inverses(t in arb_topology(), node_seed in 0u32..10_000) {
        let node = NodeId::new(node_seed % t.num_nodes());
        for dir in Direction::all(t.num_dims()) {
            if let Some(next) = t.neighbor(node, dir) {
                prop_assert_eq!(t.neighbor(next, dir.opposite()), Some(node));
                prop_assert_ne!(next, node); // radix >= 2 means no self loops
            }
        }
    }

    /// Coordinates roundtrip through the flat index.
    #[test]
    fn coords_roundtrip(t in arb_topology(), node_seed in 0u32..10_000) {
        let node = NodeId::new(node_seed % t.num_nodes());
        prop_assert_eq!(t.node_at(&t.coords(node)), node);
    }

    /// On bipartite networks every hop flips parity.
    #[test]
    fn bipartite_parity_flips(t in arb_topology(), node_seed in 0u32..10_000) {
        prop_assume!(t.is_bipartite());
        let node = NodeId::new(node_seed % t.num_nodes());
        for dir in Direction::all(t.num_dims()) {
            if let Some(next) = t.neighbor(node, dir) {
                prop_assert_eq!(t.parity(next), t.parity(node).opposite());
            }
        }
    }

    /// The uniform distance distribution matches brute-force enumeration.
    #[test]
    fn distance_distribution_matches_enumeration(t in arb_topology()) {
        let dist = t.uniform_distance_distribution();
        let n = t.num_nodes() as usize;
        let mut counts = vec![0u64; t.diameter() as usize + 1];
        let src = NodeId::new(0);
        // Vertex-transitivity holds for tori but not meshes, so average
        // over all sources for correctness.
        let mut total_pairs = 0u64;
        for s in t.nodes() {
            for d in t.nodes() {
                if s != d {
                    counts[t.distance(s, d) as usize] += 1;
                    total_pairs += 1;
                }
            }
        }
        let _ = src;
        for (h, &c) in counts.iter().enumerate() {
            let expected = c as f64 / total_pairs as f64;
            prop_assert!((dist.weight(h) - expected).abs() < 1e-9,
                "hop class {} weight {} vs enumerated {} on {} ({} nodes)",
                h, dist.weight(h), expected, t, n);
        }
    }

    /// Channel ids round-trip their (source, direction) packing for any
    /// dimensionality and radix mix, and stay inside the dense id space.
    #[test]
    fn channel_ids_roundtrip(t in arb_topology(), node_seed in 0u32..10_000) {
        let n = t.num_dims();
        let node = NodeId::new(node_seed % t.num_nodes());
        for dir in Direction::all(n) {
            let ch = t.channel(node, dir);
            prop_assert_eq!(ch.source(n), node);
            prop_assert_eq!(ch.direction(n), dir);
            // Dense: N nodes * 2n directions, no gaps above the top id.
            prop_assert!(ch.as_usize() < t.num_nodes() as usize * 2 * n);
        }
    }

    /// dim_step ties only occur on even-radix tori at exactly half the radix.
    #[test]
    fn tie_steps_only_at_half_radix((t, a, b) in arb_topology_and_pair()) {
        for dim in 0..t.num_dims() {
            if let DimStep::Both { dist } = t.dim_step(a, b, dim) {
                prop_assert!(t.wraps());
                prop_assert_eq!(t.radix(dim) % 2, 0);
                prop_assert_eq!(dist, t.radix(dim) / 2);
            }
        }
    }
}

//! Adversarial fault-mask search: refuting `fault_tolerance()` claims.
//!
//! Every routing algorithm advertises a fault-tolerance claim per mask
//! ([`RoutingAlgorithm::fault_tolerance`]): `Guaranteed` on a healthy
//! network, `BestEffort` when the surviving graph stays connected,
//! `Unsupported` otherwise. The claim is cheap to state and — before this
//! module — was never checked against anything stronger than the masked
//! CDG, which only ever *loses* edges under faults and so can never catch
//! the failure mode faults actually introduce: a minimal ("wait, never
//! mis-route") worm whose entire candidate set is dead holds its channel
//! forever, and a worm queued behind a permanent holder is as deadlocked
//! as a worm in a cycle.
//!
//! [`search_faults`] plays the adversary:
//!
//! 1. **Enumerate fault plans.** Exhaustively, every combination of up to
//!    [`AdversaryConfig::max_faults`] static link faults (the empty plan
//!    included — it is what refutes a `Guaranteed` claim on a broken
//!    algorithm); beyond that, [`AdversaryConfig::random_plans`]
//!    seeded-random plans of [`AdversaryConfig::random_faults`] links via
//!    [`FaultPlan::random_links`].
//! 2. **Admit.** A plan counts only if it validates against the topology
//!    and the simulator's own [`Reachability`] would still generate
//!    traffic for it (at least one routable pair) — the adversary may not
//!    claim victory on a network the simulator would refuse to run.
//! 3. **Refute.** For each admitted plan whose claim is not `Unsupported`,
//!    run the masked CDG *and* the bounded checker
//!    ([`crate::checker::check_masked`]) on the surviving subgraph. A
//!    [`SafetyVerdict::Deadlock`] refutes the claim.
//! 4. **Minimize.** Greedily drop faults from a refuting plan while it
//!    still refutes (and is still admitted), until no single fault can be
//!    removed — a locally minimal counterexample, small enough to read.
//!
//! Everything is deterministic: plans are enumerated in channel order,
//! random plans come off a dedicated RNG stream of
//! [`AdversaryConfig::seed`], and minimization scans faults left-to-right,
//! so the same refutation plans come out on every run and can be pinned
//! in goldens.
//!
//! [`RoutingAlgorithm::fault_tolerance`]: wormsim_routing::RoutingAlgorithm::fault_tolerance
//! [`Reachability`]: wormsim_faults::Reachability

use crate::checker::{check_masked, CheckReport, DeadlockWitness, SafetyVerdict};
use crate::VerifyError;
use wormsim_faults::{FaultPlan, FaultRegion, Reachability};
use wormsim_routing::deadlock::analyze_masked;
use wormsim_routing::{FaultTolerance, RoutingAlgorithm};
use wormsim_topology::{ChannelMask, Direction, NodeId, Topology};

/// Search-space knobs for [`search_faults`].
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Exhaustively enumerate every combination of up to this many static
    /// link faults (0 still tries the empty plan).
    pub max_faults: usize,
    /// Seeded-random plans to try beyond the exhaustive tier.
    pub random_plans: usize,
    /// Link faults per random plan.
    pub random_faults: usize,
    /// Seed for the random tier (stream-isolated; reuse the sweep seed).
    pub seed: u64,
    /// Keep at most this many refutations in the report (the count of
    /// refuting plans is always exact; storing thousands of witnesses is
    /// not useful).
    pub max_stored: usize,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            max_faults: 2,
            random_plans: 0,
            random_faults: 3,
            seed: 1993,
            max_stored: 4,
        }
    }
}

/// One refuted claim: the minimized plan and the evidence.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// The claim the algorithm made for the *original* plan's mask.
    pub claim: FaultTolerance,
    /// The minimized fault plan (still admitted, still refuting).
    pub plan: FaultPlan,
    /// Fault count before minimization.
    pub original_len: usize,
    /// Whether the masked CDG was already cyclic under the minimized plan
    /// (`false` means the CDG alone would have missed this — the
    /// stranded-holder failure mode only the bounded checker sees).
    pub masked_cyclic: bool,
    /// Stranded worms in the witness (worms whose whole candidate set the
    /// mask killed).
    pub stranded: usize,
    /// Surviving configurations backing the witness.
    pub survivors: usize,
    /// The concrete deadlock under the minimized plan.
    pub witness: DeadlockWitness,
}

/// The adversary's full accounting for one algorithm.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// Algorithm name (from [`RoutingAlgorithm::name`]).
    ///
    /// [`RoutingAlgorithm::name`]: wormsim_routing::RoutingAlgorithm::name
    pub algorithm: String,
    /// Plans generated (exhaustive + random).
    pub plans_tried: u64,
    /// Plans admitted (valid + reachability-routable).
    pub plans_admitted: u64,
    /// Admitted plans the algorithm declared `Unsupported` (claim
    /// vacuously holds; not checked further).
    pub plans_unsupported: u64,
    /// Admitted, claimed plans the bounded checker proved safe.
    pub plans_proven_free: u64,
    /// Admitted, claimed plans the bounded checker refuted (exact count).
    pub plans_refuted: u64,
    /// Stored refutations, minimized, capped at
    /// [`AdversaryConfig::max_stored`].
    pub refutations: Vec<Refutation>,
}

impl AdversaryReport {
    /// Whether every admitted claim survived: the adversary found nothing.
    pub fn claim_holds(&self) -> bool {
        self.plans_refuted == 0
    }
}

/// Runs the adversarial search for one algorithm on one topology.
///
/// # Errors
///
/// [`VerifyError::NetworkTooLarge`] if the topology exceeds the bounded
/// checker's cap, [`VerifyError::InvalidPlan`] if the exhaustive
/// enumerator ever generates a plan the validator rejects (a bug, not a
/// usage error).
pub fn search_faults(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    config: &AdversaryConfig,
) -> Result<AdversaryReport, VerifyError> {
    let mut report = AdversaryReport {
        algorithm: algo.name().to_string(),
        plans_tried: 0,
        plans_admitted: 0,
        plans_unsupported: 0,
        plans_proven_free: 0,
        plans_refuted: 0,
        refutations: Vec::new(),
    };
    // The link pool, in (node, direction) enumeration order — the same
    // order `FaultPlan::random_links` samples from.
    let pool: Vec<(NodeId, Direction)> = topo
        .nodes()
        .flat_map(|node| {
            Direction::all(topo.num_dims())
                .filter(move |&dir| topo.has_channel(node, dir))
                .map(move |dir| (node, dir))
        })
        .collect();
    // Exhaustive tier: all combinations of 0..=max_faults links, in
    // lexicographic index order.
    let mut combo: Vec<usize> = Vec::new();
    try_plan(topo, algo, &combo, &pool, config, &mut report, true)?;
    for k in 1..=config.max_faults.min(pool.len()) {
        combo.clear();
        combo.extend(0..k);
        loop {
            try_plan(topo, algo, &combo, &pool, config, &mut report, true)?;
            if !next_combination(&mut combo, pool.len()) {
                break;
            }
        }
    }
    // Random tier: plans bigger than the exhaustive horizon, one fresh
    // derived seed each so plans differ.
    for r in 0..config.random_plans {
        let plan = FaultPlan::random_links(
            topo,
            config.random_faults,
            config.seed.wrapping_add(r as u64),
            &FaultRegion::Anywhere,
        );
        let indices: Vec<usize> = plan
            .faults()
            .iter()
            .filter_map(|f| match f.target {
                wormsim_faults::FaultTarget::Link { node, direction } => {
                    pool.iter().position(|&(n, d)| n == node && d == direction)
                }
                wormsim_faults::FaultTarget::Node { .. } => None,
            })
            .collect();
        try_plan(topo, algo, &indices, &pool, config, &mut report, false)?;
    }
    Ok(report)
}

/// Advances `combo` to the next k-combination of `0..n` in lexicographic
/// order; returns `false` after the last one.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] != i + n - k {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Materializes a plan from pool indices, admits it, checks the claim,
/// and (on refutation) minimizes + records it.
#[allow(clippy::too_many_arguments)]
fn try_plan(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    indices: &[usize],
    pool: &[(NodeId, Direction)],
    config: &AdversaryConfig,
    report: &mut AdversaryReport,
    exhaustive: bool,
) -> Result<(), VerifyError> {
    report.plans_tried += 1;
    let plan = materialize(indices, pool);
    let Some((mask, _)) = admit(topo, &plan, exhaustive)? else {
        return Ok(());
    };
    report.plans_admitted += 1;
    let claim = algo.fault_tolerance(topo, &mask);
    if claim == FaultTolerance::Unsupported {
        report.plans_unsupported += 1;
        return Ok(());
    }
    let checked = check_masked(topo, &mask, algo)?;
    match checked.verdict {
        SafetyVerdict::ProvenFree => {
            report.plans_proven_free += 1;
        }
        SafetyVerdict::Deadlock(_) => {
            report.plans_refuted += 1;
            if report.refutations.len() < config.max_stored {
                let refutation = minimize(topo, algo, indices, pool, claim, checked)?;
                report.refutations.push(refutation);
            }
        }
    }
    Ok(())
}

/// Greedy fault-removal shrinking: scan left-to-right, drop any fault
/// whose removal keeps the plan admitted *and* refuting, repeat until a
/// full pass removes nothing.
fn minimize(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    indices: &[usize],
    pool: &[(NodeId, Direction)],
    claim: FaultTolerance,
    full_check: CheckReport,
) -> Result<Refutation, VerifyError> {
    let original_len = indices.len();
    let mut kept: Vec<usize> = indices.to_vec();
    let mut best = full_check;
    let mut changed = true;
    while changed && !kept.is_empty() {
        changed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            let plan = materialize(&candidate, pool);
            // Dropping a fault from an admitted plan keeps it valid, but
            // re-check admission (reachability can only improve).
            if let Some((mask, _)) = admit(topo, &plan, true)? {
                if algo.fault_tolerance(topo, &mask) != FaultTolerance::Unsupported {
                    let checked = check_masked(topo, &mask, algo)?;
                    if let SafetyVerdict::Deadlock(_) = checked.verdict {
                        kept = candidate;
                        best = checked;
                        changed = true;
                        continue; // same i now names the next fault
                    }
                }
            }
            i += 1;
        }
    }
    let plan = materialize(&kept, pool);
    let mask = plan.mask_at(topo, 0);
    let masked_cyclic = !analyze_masked(topo, &mask, algo).report.is_acyclic();
    let SafetyVerdict::Deadlock(witness) = best.verdict else {
        unreachable!("minimize only keeps refuting plans");
    };
    Ok(Refutation {
        claim,
        plan,
        original_len,
        masked_cyclic,
        stranded: best.stranded,
        survivors: best.survivors,
        witness,
    })
}

/// Builds the static link-fault plan for a set of pool indices.
fn materialize(indices: &[usize], pool: &[(NodeId, Direction)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &i in indices {
        let (node, direction) = pool[i];
        plan.push_dead_link(node, direction);
    }
    plan
}

/// Admission: the plan must validate and the simulator's reachability
/// analysis must leave at least one routable pair. Returns the static mask
/// and the reachability analysis for admitted plans, `None` for rejected
/// ones. An invalid plan is an enumeration bug when `exhaustive` (error),
/// a silent rejection for externally supplied index sets.
fn admit(
    topo: &Topology,
    plan: &FaultPlan,
    exhaustive: bool,
) -> Result<Option<(ChannelMask, Reachability)>, VerifyError> {
    if let Err(e) = plan.validate(topo) {
        if exhaustive {
            return Err(VerifyError::InvalidPlan(e.to_string()));
        }
        return Ok(None);
    }
    let mask = plan.mask_at(topo, 0);
    let reach = Reachability::compute(topo, &mask);
    if reach.routable_pairs() == 0 {
        return Ok(None);
    }
    Ok(Some((mask, reach)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_routing::AlgorithmKind;

    #[test]
    fn empty_plan_refutes_naive_guaranteed_claim() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::NaiveMinimal.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        assert_eq!(report.plans_tried, 1);
        assert_eq!(report.plans_refuted, 1);
        let refutation = &report.refutations[0];
        assert!(refutation.plan.is_empty(), "empty plan must stay empty");
        assert_eq!(refutation.claim, FaultTolerance::Guaranteed);
        assert!(!refutation.witness.worms.is_empty());
    }

    #[test]
    fn single_fault_refutes_phop_best_effort_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 1,
            max_stored: 2,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        // 1 empty + 64 single-link plans on a 4x4 torus.
        assert_eq!(report.plans_tried, 65);
        assert_eq!(report.plans_admitted, 65);
        // The healthy network is proven free...
        assert!(report.plans_proven_free >= 1);
        // ...but a single dead link strands minimal-only worms.
        assert!(report.plans_refuted > 0, "{report:?}");
        let refutation = &report.refutations[0];
        assert_eq!(refutation.plan.len(), 1, "must minimize to one fault");
        assert_eq!(refutation.claim, FaultTolerance::BestEffort);
        assert!(refutation.stranded > 0, "stranding is the failure mode");
        assert!(
            !refutation.masked_cyclic || refutation.stranded > 0,
            "refutation must carry evidence the CDG alone lacks or confirm its cycle"
        );
    }

    /// CI's exhaustive verification tier (release-only, run with
    /// `-- --ignored`): every fault plan of up to two dead links on the
    /// 4×4 torus, for all six paper algorithms — 2081 plans each. The
    /// safety contract under test: no plan the adversary admits may
    /// refute a [`FaultTolerance::Guaranteed`] claim. Refutations of
    /// `BestEffort` claims are expected (that is the adversary's job);
    /// a `Guaranteed` refutation would mean an algorithm promised
    /// deadlock freedom on a mask where the bounded checker found a
    /// witness.
    #[test]
    #[ignore = "exhaustive two-fault sweep; run in release via CI's verification tier"]
    fn exhaustive_two_fault_sweep_refutes_no_guaranteed_claim() {
        let topo = Topology::torus(&[4, 4]);
        for kind in AlgorithmKind::all() {
            let algo = kind.build(&topo).unwrap();
            let config = AdversaryConfig {
                max_faults: 2,
                // Store everything: the Guaranteed assertion must see
                // every refutation, not a capped prefix.
                max_stored: usize::MAX,
                ..AdversaryConfig::default()
            };
            let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
            // 1 empty + 64 single-link + C(64,2) = 2016 pair plans.
            assert_eq!(report.plans_tried, 2_081, "{kind}");
            assert_eq!(
                report.refutations.len() as u64,
                report.plans_refuted,
                "{kind}"
            );
            for refutation in &report.refutations {
                assert_ne!(
                    refutation.claim,
                    FaultTolerance::Guaranteed,
                    "{kind}: a Guaranteed claim was refuted by {:?}",
                    refutation.plan
                );
            }
        }
    }

    #[test]
    fn random_tier_is_deterministic() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            random_plans: 3,
            random_faults: 2,
            seed: 1993,
            max_stored: 8,
        };
        let a = search_faults(&topo, algo.as_ref(), &config).unwrap();
        let b = search_faults(&topo, algo.as_ref(), &config).unwrap();
        assert_eq!(a.plans_tried, b.plans_tried);
        assert_eq!(a.plans_refuted, b.plans_refuted);
        let plans_a: Vec<_> = a.refutations.iter().map(|r| r.plan.clone()).collect();
        let plans_b: Vec<_> = b.refutations.iter().map(|r| r.plan.clone()).collect();
        assert_eq!(plans_a, plans_b);
    }
}

//! Adversarial fault-mask search: refuting `fault_tolerance()` claims.
//!
//! Every routing algorithm advertises a fault-tolerance claim per mask
//! ([`RoutingAlgorithm::fault_tolerance`]): `Guaranteed` on a healthy
//! network, `BestEffort` when the surviving graph stays connected,
//! `Unsupported` otherwise. The claim is cheap to state and — before this
//! module — was never checked against anything stronger than the masked
//! CDG, which only ever *loses* edges under faults and so can never catch
//! the failure mode faults actually introduce: a minimal ("wait, never
//! mis-route") worm whose entire candidate set is dead holds its channel
//! forever, and a worm queued behind a permanent holder is as deadlocked
//! as a worm in a cycle.
//!
//! [`search_faults`] plays the adversary:
//!
//! 1. **Enumerate fault plans.** Exhaustively, every combination of up to
//!    [`AdversaryConfig::max_faults`] static faults drawn from the target
//!    pool — every unidirectional link, plus every whole node when
//!    [`AdversaryConfig::node_faults`] is set (the empty plan included —
//!    it is what refutes a `Guaranteed` claim on a broken algorithm).
//!    Beyond that, [`AdversaryConfig::random_plans`] seeded-random static
//!    link plans via [`FaultPlan::random_links`], and
//!    [`AdversaryConfig::transient_plans`] seeded-random *transient*
//!    plans: staggered fail/repair windows over the same target pool.
//! 2. **Admit.** A plan counts only if it validates against the topology
//!    and the simulator's own [`Reachability`] would still generate
//!    traffic under *every* epoch mask (at least one routable pair) — the
//!    adversary may not claim victory on a network the simulator would
//!    refuse to run.
//! 3. **Refute.** A plan's mask is piecewise-constant in time; each
//!    *epoch* (cycle 0 plus every [`FaultPlan::transition_cycles`] point)
//!    gets the masked CDG *and* the bounded checker
//!    ([`crate::checker::check_masked`]) on its surviving subgraph. A
//!    [`SafetyVerdict::Deadlock`] under any epoch whose claim is not
//!    `Unsupported` refutes the plan: the adversary chooses the schedule,
//!    so a configuration that deadlocks while a window is active can be
//!    held deadlocked for as long as the adversary stretches that window.
//!    (Whether a *particular* finite window dissolves on repair is the
//!    runtime question [`crate::triage`] answers; the claim being checked
//!    here is about the mask, and the mask refutes it.) Static plans have
//!    exactly one epoch, so their verdict is unchanged from the
//!    link-only searcher.
//! 4. **Minimize.** Greedily drop faults from a refuting plan while it
//!    still refutes (and is still admitted), until no single fault can be
//!    removed — a locally minimal counterexample, small enough to read.
//!
//! Everything is deterministic: plans are enumerated in pool order (links
//! in channel order, then nodes), random and transient plans come off
//! dedicated RNG streams of [`AdversaryConfig::seed`], and minimization
//! scans faults left-to-right, so the same refutation plans come out on
//! every run and can be pinned in goldens.
//!
//! [`RoutingAlgorithm::fault_tolerance`]: wormsim_routing::RoutingAlgorithm::fault_tolerance
//! [`Reachability`]: wormsim_faults::Reachability

use crate::checker::{check_masked, CheckReport, DeadlockWitness, SafetyVerdict};
use crate::VerifyError;
use wormsim_faults::{Fault, FaultPlan, FaultRegion, FaultTarget, Reachability};
use wormsim_routing::deadlock::analyze_masked;
use wormsim_routing::{FaultTolerance, RoutingAlgorithm};
use wormsim_topology::{ChannelMask, Direction, Topology};
use wormsim_traffic::SimRng;

/// Search-space knobs for [`search_faults`].
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Exhaustively enumerate every combination of up to this many static
    /// faults (0 still tries the empty plan).
    pub max_faults: usize,
    /// Include whole-node faults in the exhaustive pool (after the links,
    /// so link-only plan orders — and pinned goldens — are unchanged when
    /// this is off).
    pub node_faults: bool,
    /// Seeded-random static link plans to try beyond the exhaustive tier.
    pub random_plans: usize,
    /// Link faults per random plan.
    pub random_faults: usize,
    /// Seeded-random transient fail/repair plans to try.
    pub transient_plans: usize,
    /// Faults per transient plan, each with its own staggered window.
    pub transient_faults: usize,
    /// Window length in cycles for transient faults; fault *j* of a plan
    /// fails at `j * window / 2` and repairs a full window later, so
    /// adjacent windows overlap and the epochs sweep one-fault and
    /// two-fault masks plus the all-repaired tail.
    pub transient_window: u64,
    /// Seed for the random tiers (stream-isolated; reuse the sweep seed).
    pub seed: u64,
    /// Keep at most this many refutations in the report (the count of
    /// refuting plans is always exact; storing thousands of witnesses is
    /// not useful).
    pub max_stored: usize,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            max_faults: 2,
            node_faults: false,
            random_plans: 0,
            random_faults: 3,
            transient_plans: 0,
            transient_faults: 2,
            transient_window: 64,
            seed: 1993,
            max_stored: 4,
        }
    }
}

/// One refuted claim: the minimized plan and the evidence.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// The claim the algorithm made for the refuting epoch's mask.
    pub claim: FaultTolerance,
    /// The minimized fault plan (still admitted, still refuting).
    pub plan: FaultPlan,
    /// Fault count before minimization.
    pub original_len: usize,
    /// The cycle whose mask the witness deadlocks under — always 0 for a
    /// static plan; for a transient plan, the start of the deadlocking
    /// fault window.
    pub epoch: u64,
    /// Whether the masked CDG was already cyclic under the minimized plan
    /// (`false` means the CDG alone would have missed this — the
    /// stranded-holder failure mode only the bounded checker sees).
    pub masked_cyclic: bool,
    /// Stranded worms in the witness (worms whose whole candidate set the
    /// mask killed).
    pub stranded: usize,
    /// Surviving configurations backing the witness.
    pub survivors: usize,
    /// The concrete deadlock under the minimized plan.
    pub witness: DeadlockWitness,
}

/// The adversary's full accounting for one algorithm.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// Algorithm name (from [`RoutingAlgorithm::name`]).
    ///
    /// [`RoutingAlgorithm::name`]: wormsim_routing::RoutingAlgorithm::name
    pub algorithm: String,
    /// Plans generated (exhaustive + random + transient).
    pub plans_tried: u64,
    /// Plans admitted (valid + reachability-routable at every epoch).
    pub plans_admitted: u64,
    /// Admitted plans the algorithm declared `Unsupported` at every epoch
    /// (claim vacuously holds; not checked further).
    pub plans_unsupported: u64,
    /// Admitted, claimed plans the bounded checker proved safe at every
    /// claimed epoch.
    pub plans_proven_free: u64,
    /// Admitted, claimed plans the bounded checker refuted (exact count).
    pub plans_refuted: u64,
    /// Stored refutations, minimized, capped at
    /// [`AdversaryConfig::max_stored`].
    pub refutations: Vec<Refutation>,
}

impl AdversaryReport {
    /// Whether every admitted claim survived: the adversary found nothing.
    pub fn claim_holds(&self) -> bool {
        self.plans_refuted == 0
    }
}

/// Runs the adversarial search for one algorithm on one topology.
///
/// # Errors
///
/// [`VerifyError::NetworkTooLarge`] if the topology exceeds the bounded
/// checker's cap, [`VerifyError::InvalidPlan`] if the exhaustive
/// enumerator ever generates a plan the validator rejects (a bug, not a
/// usage error).
pub fn search_faults(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    config: &AdversaryConfig,
) -> Result<AdversaryReport, VerifyError> {
    let mut report = AdversaryReport {
        algorithm: algo.name().to_string(),
        plans_tried: 0,
        plans_admitted: 0,
        plans_unsupported: 0,
        plans_proven_free: 0,
        plans_refuted: 0,
        refutations: Vec::new(),
    };
    // The target pool: links in (node, direction) enumeration order — the
    // same order `FaultPlan::random_links` samples from — then whole
    // nodes when enabled, so link-only plan orders are stable.
    let mut pool: Vec<FaultTarget> = topo
        .nodes()
        .flat_map(|node| {
            Direction::all(topo.num_dims())
                .filter(move |&dir| topo.has_channel(node, dir))
                .map(move |direction| FaultTarget::Link { node, direction })
        })
        .collect();
    if config.node_faults {
        pool.extend(topo.nodes().map(|node| FaultTarget::Node { node }));
    }
    // Exhaustive tier: all combinations of 0..=max_faults targets, in
    // lexicographic index order.
    let mut combo: Vec<usize> = Vec::new();
    try_plan(
        topo,
        algo,
        &materialize(&combo, &pool),
        config,
        &mut report,
        true,
    )?;
    for k in 1..=config.max_faults.min(pool.len()) {
        combo.clear();
        combo.extend(0..k);
        loop {
            try_plan(
                topo,
                algo,
                &materialize(&combo, &pool),
                config,
                &mut report,
                true,
            )?;
            if !next_combination(&mut combo, pool.len()) {
                break;
            }
        }
    }
    // Random tier: static link plans bigger than the exhaustive horizon,
    // one fresh derived seed each so plans differ.
    for r in 0..config.random_plans {
        let plan = FaultPlan::random_links(
            topo,
            config.random_faults,
            config.seed.wrapping_add(r as u64),
            &FaultRegion::Anywhere,
        );
        try_plan(topo, algo, plan.faults(), config, &mut report, false)?;
    }
    // Transient tier: staggered fail/repair windows over the pool, on a
    // dedicated RNG stream so the draw is independent of every simulation
    // stream and of the static random tier.
    let mut rng = SimRng::stream(config.seed, 0xAD);
    for _ in 0..config.transient_plans {
        let count = config.transient_faults.min(pool.len());
        let window = config.transient_window.max(2);
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        let mut faults = Vec::with_capacity(count);
        for j in 0..count {
            let pick = j + rng.uniform_below((indices.len() - j) as u32) as usize;
            indices.swap(j, pick);
            let fail_at = j as u64 * (window / 2);
            faults.push(Fault {
                target: pool[indices[j]],
                fail_at,
                repair_at: Some(fail_at + window),
            });
        }
        try_plan(topo, algo, &faults, config, &mut report, false)?;
    }
    Ok(report)
}

/// Advances `combo` to the next k-combination of `0..n` in lexicographic
/// order; returns `false` after the last one.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] != i + n - k {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Static faults for a set of pool indices.
fn materialize(indices: &[usize], pool: &[FaultTarget]) -> Vec<Fault> {
    indices
        .iter()
        .map(|&i| Fault {
            target: pool[i],
            fail_at: 0,
            repair_at: None,
        })
        .collect()
}

/// Builds a [`FaultPlan`] from a fault list.
fn plan_of(faults: &[Fault]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &fault in faults {
        plan.push(fault);
    }
    plan
}

/// What checking every epoch of one admitted plan concluded.
enum PlanOutcome {
    /// Every epoch's claim was `Unsupported`; nothing to check.
    Unsupported,
    /// Every claimed epoch was proven free.
    ProvenFree,
    /// Some claimed epoch deadlocked.
    Refuted {
        claim: FaultTolerance,
        epoch: u64,
        checked: CheckReport,
    },
}

/// Admits a plan, checks its claim at every epoch, and (on refutation)
/// minimizes + records it.
fn try_plan(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    faults: &[Fault],
    config: &AdversaryConfig,
    report: &mut AdversaryReport,
    exhaustive: bool,
) -> Result<(), VerifyError> {
    report.plans_tried += 1;
    let plan = plan_of(faults);
    let Some(epochs) = admit(topo, &plan, exhaustive)? else {
        return Ok(());
    };
    report.plans_admitted += 1;
    match check_epochs(topo, algo, &epochs)? {
        PlanOutcome::Unsupported => report.plans_unsupported += 1,
        PlanOutcome::ProvenFree => report.plans_proven_free += 1,
        PlanOutcome::Refuted {
            claim,
            epoch,
            checked,
        } => {
            report.plans_refuted += 1;
            if report.refutations.len() < config.max_stored {
                let refutation = minimize(topo, algo, faults, claim, epoch, checked)?;
                report.refutations.push(refutation);
            }
        }
    }
    Ok(())
}

/// Runs the bounded checker over every epoch mask whose claim is not
/// `Unsupported`, stopping at the first deadlock.
fn check_epochs(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    epochs: &[(u64, ChannelMask)],
) -> Result<PlanOutcome, VerifyError> {
    let mut any_claimed = false;
    for (cycle, mask) in epochs {
        let claim = algo.fault_tolerance(topo, mask);
        if claim == FaultTolerance::Unsupported {
            continue;
        }
        any_claimed = true;
        let checked = check_masked(topo, mask, algo)?;
        if let SafetyVerdict::Deadlock(_) = checked.verdict {
            return Ok(PlanOutcome::Refuted {
                claim,
                epoch: *cycle,
                checked,
            });
        }
    }
    Ok(if any_claimed {
        PlanOutcome::ProvenFree
    } else {
        PlanOutcome::Unsupported
    })
}

/// Greedy fault-removal shrinking: scan left-to-right, drop any fault
/// whose removal keeps the plan admitted *and* refuting, repeat until a
/// full pass removes nothing.
fn minimize(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    faults: &[Fault],
    claim: FaultTolerance,
    epoch: u64,
    full_check: CheckReport,
) -> Result<Refutation, VerifyError> {
    let original_len = faults.len();
    let mut kept: Vec<Fault> = faults.to_vec();
    let mut best = (claim, epoch, full_check);
    let mut changed = true;
    while changed && !kept.is_empty() {
        changed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            let plan = plan_of(&candidate);
            // Dropping a fault from an admitted plan keeps it valid, but
            // re-check admission (reachability can only improve).
            if let Some(epochs) = admit(topo, &plan, true)? {
                if let PlanOutcome::Refuted {
                    claim,
                    epoch,
                    checked,
                } = check_epochs(topo, algo, &epochs)?
                {
                    kept = candidate;
                    best = (claim, epoch, checked);
                    changed = true;
                    continue; // same i now names the next fault
                }
            }
            i += 1;
        }
    }
    let (claim, epoch, checked) = best;
    let plan = plan_of(&kept);
    let mask = plan.mask_at(topo, epoch);
    let masked_cyclic = !analyze_masked(topo, &mask, algo).report.is_acyclic();
    let SafetyVerdict::Deadlock(witness) = checked.verdict else {
        unreachable!("minimize only keeps refuting plans");
    };
    Ok(Refutation {
        claim,
        plan,
        original_len,
        epoch,
        masked_cyclic,
        stranded: checked.stranded,
        survivors: checked.survivors,
        witness,
    })
}

/// Admission: the plan must validate and the simulator's reachability
/// analysis must leave at least one routable pair under *every* epoch
/// mask. Returns the `(cycle, mask)` epochs for admitted plans (a static
/// plan has exactly one, at cycle 0), `None` for rejected ones. An
/// invalid plan is an enumeration bug when `exhaustive` (error), a silent
/// rejection for externally supplied fault lists.
fn admit(
    topo: &Topology,
    plan: &FaultPlan,
    exhaustive: bool,
) -> Result<Option<Vec<(u64, ChannelMask)>>, VerifyError> {
    if let Err(e) = plan.validate(topo) {
        if exhaustive {
            return Err(VerifyError::InvalidPlan(e.to_string()));
        }
        return Ok(None);
    }
    let mut cycles = vec![0u64];
    cycles.extend(plan.transition_cycles());
    let mut epochs = Vec::with_capacity(cycles.len());
    for cycle in cycles {
        let mask = plan.mask_at(topo, cycle);
        if Reachability::compute(topo, &mask).routable_pairs() == 0 {
            return Ok(None);
        }
        epochs.push((cycle, mask));
    }
    Ok(Some(epochs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_routing::AlgorithmKind;

    #[test]
    fn empty_plan_refutes_naive_guaranteed_claim() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::NaiveMinimal.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        assert_eq!(report.plans_tried, 1);
        assert_eq!(report.plans_refuted, 1);
        let refutation = &report.refutations[0];
        assert!(refutation.plan.is_empty(), "empty plan must stay empty");
        assert_eq!(refutation.claim, FaultTolerance::Guaranteed);
        assert_eq!(refutation.epoch, 0);
        assert!(!refutation.witness.worms.is_empty());
    }

    #[test]
    fn single_fault_refutes_phop_best_effort_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 1,
            max_stored: 2,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        // 1 empty + 64 single-link plans on a 4x4 torus.
        assert_eq!(report.plans_tried, 65);
        assert_eq!(report.plans_admitted, 65);
        // The healthy network is proven free...
        assert!(report.plans_proven_free >= 1);
        // ...but a single dead link strands minimal-only worms.
        assert!(report.plans_refuted > 0, "{report:?}");
        let refutation = &report.refutations[0];
        assert_eq!(refutation.plan.len(), 1, "must minimize to one fault");
        assert_eq!(refutation.claim, FaultTolerance::BestEffort);
        assert!(refutation.stranded > 0, "stranding is the failure mode");
        assert!(
            !refutation.masked_cyclic || refutation.stranded > 0,
            "refutation must carry evidence the CDG alone lacks or confirm its cycle"
        );
    }

    /// Pinned node-fault result on the 4×4 torus: the pool grows to
    /// 64 links + 16 nodes, every single-link plan still refutes PHop's
    /// best-effort claim (stranding), but every single-*node* plan is
    /// PROVEN FREE — on a 4-ring the only worm with a unique minimal
    /// candidate into the dead node is one whose *destination is the dead
    /// node*, and those pairs leave the traffic population with it; every
    /// other worm keeps a live minimal alternative. Dead links strand,
    /// dead nodes do not — a distinction the link-only adversary could
    /// never state.
    #[test]
    fn single_node_fault_is_proven_free_for_phop_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 1,
            node_faults: true,
            max_stored: usize::MAX,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        // 1 empty + 64 single-link + 16 single-node plans.
        assert_eq!(report.plans_tried, 81);
        assert_eq!(report.plans_admitted, 81);
        // Every link plan refutes; the empty plan and all 16 node plans
        // are proven free.
        assert_eq!(report.plans_refuted, 64);
        assert_eq!(report.plans_proven_free, 17);
        assert_eq!(report.plans_unsupported, 0);
        assert!(
            report.refutations.iter().all(|r| {
                r.plan
                    .faults()
                    .iter()
                    .all(|f| matches!(f.target, FaultTarget::Link { .. }))
            }),
            "no dead-node plan may strand PHop on the 4x4 torus"
        );
    }

    /// Pinned transient result on the 4×4 torus: a seeded fail/repair
    /// schedule refutes PHop's claim *during* a fault window — the epoch
    /// is inside the window, the plan is not static, and the healthy
    /// epochs (before the first failure, after the last repair) are not
    /// what refutes it.
    #[test]
    fn transient_window_refutes_phop_while_the_fault_is_active() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            transient_plans: 4,
            transient_faults: 2,
            transient_window: 64,
            seed: 1993,
            max_stored: 8,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        // 1 empty + 4 transient plans.
        assert_eq!(report.plans_tried, 5);
        assert!(report.plans_refuted > 0, "{report:?}");
        let refutation = report
            .refutations
            .iter()
            .find(|r| !r.plan.is_static())
            .expect("a transient refutation must survive minimization");
        assert!(
            refutation.epoch > 0 || refutation.plan.faults().iter().any(|f| f.fail_at == 0),
            "the refuting epoch must sit inside a fault window"
        );
        assert!(
            refutation
                .plan
                .faults()
                .iter()
                .any(|f| f.active_at(refutation.epoch)),
            "some fault must be active at the refuting epoch"
        );
        assert!(refutation.stranded > 0, "stranding is the failure mode");
    }

    /// CI's exhaustive verification tier (release-only, run with
    /// `-- --ignored`): every fault plan of up to two dead links on the
    /// 4×4 torus, for all six paper algorithms — 2081 plans each. The
    /// safety contract under test: no plan the adversary admits may
    /// refute a [`FaultTolerance::Guaranteed`] claim. Refutations of
    /// `BestEffort` claims are expected (that is the adversary's job);
    /// a `Guaranteed` refutation would mean an algorithm promised
    /// deadlock freedom on a mask where the bounded checker found a
    /// witness.
    #[test]
    #[ignore = "exhaustive two-fault sweep; run in release via CI's verification tier"]
    fn exhaustive_two_fault_sweep_refutes_no_guaranteed_claim() {
        let topo = Topology::torus(&[4, 4]);
        for kind in AlgorithmKind::all() {
            let algo = kind.build(&topo).unwrap();
            let config = AdversaryConfig {
                max_faults: 2,
                // Store everything: the Guaranteed assertion must see
                // every refutation, not a capped prefix.
                max_stored: usize::MAX,
                ..AdversaryConfig::default()
            };
            let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
            // 1 empty + 64 single-link + C(64,2) = 2016 pair plans.
            assert_eq!(report.plans_tried, 2_081, "{kind}");
            assert_eq!(
                report.refutations.len() as u64,
                report.plans_refuted,
                "{kind}"
            );
            for refutation in &report.refutations {
                assert_ne!(
                    refutation.claim,
                    FaultTolerance::Guaranteed,
                    "{kind}: a Guaranteed claim was refuted by {:?}",
                    refutation.plan
                );
            }
        }
    }

    #[test]
    fn random_tier_is_deterministic() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            random_plans: 3,
            random_faults: 2,
            seed: 1993,
            max_stored: 8,
            ..AdversaryConfig::default()
        };
        let a = search_faults(&topo, algo.as_ref(), &config).unwrap();
        let b = search_faults(&topo, algo.as_ref(), &config).unwrap();
        assert_eq!(a.plans_tried, b.plans_tried);
        assert_eq!(a.plans_refuted, b.plans_refuted);
        let plans_a: Vec<_> = a.refutations.iter().map(|r| r.plan.clone()).collect();
        let plans_b: Vec<_> = b.refutations.iter().map(|r| r.plan.clone()).collect();
        assert_eq!(plans_a, plans_b);
    }

    #[test]
    fn transient_tier_is_deterministic() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            node_faults: true,
            transient_plans: 3,
            transient_faults: 2,
            seed: 1993,
            max_stored: 8,
            ..AdversaryConfig::default()
        };
        let a = search_faults(&topo, algo.as_ref(), &config).unwrap();
        let b = search_faults(&topo, algo.as_ref(), &config).unwrap();
        assert_eq!(a.plans_tried, b.plans_tried);
        assert_eq!(a.plans_refuted, b.plans_refuted);
        let plans_a: Vec<_> = a.refutations.iter().map(|r| r.plan.clone()).collect();
        let plans_b: Vec<_> = b.refutations.iter().map(|r| r.plan.clone()).collect();
        assert_eq!(plans_a, plans_b);
        let epochs_a: Vec<u64> = a.refutations.iter().map(|r| r.epoch).collect();
        let epochs_b: Vec<u64> = b.refutations.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs_a, epochs_b);
    }
}

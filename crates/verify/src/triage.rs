//! Runtime stall triage: was that watchdog a real deadlock?
//!
//! The engine's watchdog (`RunOutcome::Deadlocked`) and livelock guard
//! (`RunOutcome::LiveLocked`) are budget-based: they fire when nothing
//! has moved (or nothing has *arrived*) for a configured number of cycles.
//! At fleet scale that conflates two very different situations:
//!
//! - **Confirmed-unsafe** — the wait-for graph at the trigger contains a
//!   validated circular wait: a cycle of worms each occupying a resource
//!   the next one needs. No budget, however generous, would have saved the
//!   run; the algorithm (or algorithm × fault-plan combination) is unsafe.
//! - **Budget-artifact** — the snapshot has no self-sustaining cycle. The
//!   network was merely congested, starved, or mid-fault-transition, and a
//!   larger budget (or repair) would plausibly have let the run complete.
//!
//! [`triage`] makes the call from a [`WaitForSnapshot`] alone, so it works
//! both inline (the engine hands its snapshot straight over at run end)
//! and offline (replaying a `<run>.waitfor.jsonl` file through the
//! `inspect` bin). The cycle reported by the snapshot is not taken on
//! faith: every hop is re-validated against the edge list — message `i`
//! must actually have a recorded wait on channel `i` held by message
//! `i+1` — so a corrupted or hand-edited snapshot downgrades to
//! budget-artifact instead of producing a false conviction.

use wormsim_observe::WaitForSnapshot;

/// The refined verdict on a `Deadlocked`/`LiveLocked` run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriageVerdict {
    /// A validated circular wait was present at the watchdog trigger: the
    /// stall is a genuine deadlock, not a tight budget.
    ConfirmedUnsafe,
    /// No validated cycle in the wait-for graph: the stall is congestion,
    /// starvation, or a transient-fault pause — rerun with a larger
    /// budget before blaming the algorithm.
    BudgetArtifact,
}

impl TriageVerdict {
    /// Stable string tag for journals, CSVs, and manifests.
    pub fn tag(self) -> &'static str {
        match self {
            TriageVerdict::ConfirmedUnsafe => "confirmed_unsafe",
            TriageVerdict::BudgetArtifact => "budget_artifact",
        }
    }

    /// Parses a [`tag`](Self::tag) back.
    pub fn from_tag(tag: &str) -> Result<Self, String> {
        match tag {
            "confirmed_unsafe" => Ok(TriageVerdict::ConfirmedUnsafe),
            "budget_artifact" => Ok(TriageVerdict::BudgetArtifact),
            other => Err(format!("unknown triage verdict '{other}'")),
        }
    }
}

/// The triage outcome plus the evidence it rests on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriageReport {
    /// The verdict.
    pub verdict: TriageVerdict,
    /// Wait-for edges in the snapshot.
    pub edges: usize,
    /// The validated cycle's messages (empty for budget-artifact).
    pub cycle_messages: Vec<u64>,
    /// The validated cycle's channels, `cycle_channels[i]` being what
    /// `cycle_messages[i]` waits on.
    pub cycle_channels: Vec<u64>,
}

impl TriageReport {
    /// Whether the verdict is [`TriageVerdict::ConfirmedUnsafe`].
    pub fn is_confirmed_unsafe(&self) -> bool {
        self.verdict == TriageVerdict::ConfirmedUnsafe
    }
}

/// Replays a wait-for snapshot through cycle detection and hop-by-hop
/// validation, refining the watchdog's budget-based verdict.
///
/// The input snapshot is taken by value-copy (cloned internally), so a
/// snapshot loaded from disk can be triaged without mutating it.
pub fn triage(snapshot: &WaitForSnapshot) -> TriageReport {
    let mut scratch = snapshot.clone();
    scratch.detect_cycle();
    let validated = scratch.cycle_found && validate_cycle(&scratch);
    if validated {
        TriageReport {
            verdict: TriageVerdict::ConfirmedUnsafe,
            edges: scratch.edges.len(),
            cycle_messages: scratch.cycle_messages,
            cycle_channels: scratch.cycle_channels,
        }
    } else {
        TriageReport {
            verdict: TriageVerdict::BudgetArtifact,
            edges: scratch.edges.len(),
            cycle_messages: Vec::new(),
            cycle_channels: Vec::new(),
        }
    }
}

/// Every hop of the reported cycle must be backed by a recorded edge:
/// message `i` waits on channel `i` held by message `(i+1) % len`.
fn validate_cycle(snapshot: &WaitForSnapshot) -> bool {
    let n = snapshot.cycle_messages.len();
    if n == 0 || snapshot.cycle_channels.len() != n {
        return false;
    }
    (0..n).all(|i| {
        let msg = snapshot.cycle_messages[i];
        let channel = snapshot.cycle_channels[i];
        let holder = snapshot.cycle_messages[(i + 1) % n];
        snapshot
            .edges
            .iter()
            .any(|e| e.msg == msg && e.channel == channel && e.holder == holder)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_observe::{WaitForEdge, WaitKind};

    fn edge(msg: u64, channel: u64, holder: u64) -> WaitForEdge {
        WaitForEdge {
            msg,
            node: 0,
            channel,
            holder,
            kind: WaitKind::Vc,
        }
    }

    #[test]
    fn circular_wait_is_confirmed_unsafe() {
        let snapshot = WaitForSnapshot {
            reason: "deadlock".into(),
            edges: vec![edge(1, 10, 2), edge(2, 11, 3), edge(3, 12, 1)],
            ..Default::default()
        };
        let report = triage(&snapshot);
        assert_eq!(report.verdict, TriageVerdict::ConfirmedUnsafe);
        assert_eq!(report.cycle_messages.len(), 3);
        assert_eq!(report.cycle_channels.len(), 3);
    }

    #[test]
    fn acyclic_stall_is_budget_artifact() {
        let snapshot = WaitForSnapshot {
            reason: "livelock".into(),
            edges: vec![edge(1, 10, 2), edge(2, 11, 3)],
            ..Default::default()
        };
        let report = triage(&snapshot);
        assert_eq!(report.verdict, TriageVerdict::BudgetArtifact);
        assert!(report.cycle_messages.is_empty());
        assert_eq!(report.edges, 2);
    }

    #[test]
    fn empty_snapshot_is_budget_artifact() {
        let report = triage(&WaitForSnapshot::default());
        assert_eq!(report.verdict, TriageVerdict::BudgetArtifact);
    }

    #[test]
    fn stale_cycle_fields_are_revalidated_not_trusted() {
        // A snapshot claiming a cycle its own edges do not support must
        // not convict.
        let snapshot = WaitForSnapshot {
            reason: "deadlock".into(),
            edges: vec![edge(1, 10, 2)],
            cycle_found: true,
            cycle_messages: vec![1, 2],
            cycle_channels: vec![10, 11],
            ..Default::default()
        };
        let report = triage(&snapshot);
        assert_eq!(report.verdict, TriageVerdict::BudgetArtifact);
    }

    #[test]
    fn verdict_tags_round_trip() {
        for v in [
            TriageVerdict::ConfirmedUnsafe,
            TriageVerdict::BudgetArtifact,
        ] {
            assert_eq!(TriageVerdict::from_tag(v.tag()).unwrap(), v);
        }
        assert!(TriageVerdict::from_tag("bogus").is_err());
    }
}

//! The bounded model checker: from `Cyclic`-but-inconclusive to a
//! definitive verdict.
//!
//! The CDG analysis ([`wormsim_routing::deadlock`]) proves deadlock-freedom
//! when the dependency graph is acyclic, but a *cyclic* CDG is inconclusive
//! for adaptive algorithms: a blocked message with several candidates
//! deadlocks only if **all** of them are simultaneously unavailable
//! (Duato's criterion). This module closes that gap on small networks by
//! exhaustively enumerating *holding configurations* — every way a worm can
//! be blocked while occupying a virtual channel — and computing the
//! greatest set of configurations that is mutually self-supporting:
//!
//! 1. **Enumerate.** For every routable `(source, destination)` pair, walk
//!    every reachable `(node, route-state)` the algorithm's candidate sets
//!    admit (the same expansion the CDG builder uses). Each hop yields a
//!    configuration: the virtual channel just acquired (`held`), the node
//!    the head now stalls at, and the set of virtual channels the algorithm
//!    would request next (`waits`). Under a fault mask, a configuration
//!    whose entire next-candidate set is dead has an **empty** wait set: a
//!    minimal ("wait, never mis-route") worm reaching it is stranded and
//!    holds its channel forever.
//! 2. **Fixpoint.** Repeatedly delete any configuration with a waited
//!    channel that no surviving configuration holds — that channel must
//!    eventually free up (its occupants all drain or advance), so the
//!    blocked worm progresses. Stranded configurations never progress and
//!    are never deleted. The deletion order does not matter; the result is
//!    the unique greatest fixpoint.
//! 3. **Verdict.** An empty fixpoint is [`SafetyVerdict::ProvenFree`]: no
//!    set of blocked worms can sustain itself, so every reachable blocking
//!    configuration eventually drains. A non-empty fixpoint yields a
//!    constructive [`DeadlockWitness`]: one worm per contended virtual
//!    channel, each holding what another waits for — a concrete stable
//!    configuration in which no worm can ever advance.
//!
//! # Soundness
//!
//! `ProvenFree` is sound for the algorithm's *own* candidate sets (the
//! engine's misrouting fallback explores extra states this enumeration
//! deliberately excludes — its safety is exactly what
//! [`crate::adversary`] probes). Suppose the engine reaches a real
//! deadlock: a set `D` of worms, each flit occupying a virtual channel,
//! none able to advance. Every channel segment any worm of `D` occupies
//! corresponds to an enumerated configuration (the worm's head passed
//! through that `(node, state)` on the way), and each such configuration's
//! waits are covered inside `D` — either by another worm of `D` or by the
//! worm's own downstream segment. That closed set survives the fixpoint,
//! so the fixpoint could not have been empty. Contrapositive: empty
//! fixpoint, no deadlock. The argument is independent of the number of VC
//! replicas per class (extra replicas only add resources to the same
//! dependency structure) and of message length (a longer worm holds more
//! segments, each individually enumerated).
//!
//! The witness direction is heuristic in the other sense: the fixpoint
//! over-approximates reachability, so a witness is a locally stable
//! configuration that may in principle not be reachable from an empty
//! network. In practice witnesses found here replay: the workspace
//! property tests drive the engine into a deadlock for every algorithm
//! this checker refutes (see `tests/verify.rs`).

use crate::VerifyError;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use wormsim_routing::deadlock::VirtualChannelId;
use wormsim_routing::{MessageRouteState, RoutingAlgorithm};
use wormsim_topology::{ChannelMask, NodeId, Topology};

/// Hard cap on network size for the exhaustive expansion. The checker is
/// meant for the ≤4×4 safety-audit regime; 128 nodes keeps 4-ary 3-cubes
/// and 8×8 tori reachable in release builds while refusing anything that
/// would silently take hours.
pub const MAX_NODES: u32 = 128;

/// One worm of a deadlock witness: where it comes from, the exact channel
/// path it acquires, and the stall that pins it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedWorm {
    /// Injection node.
    pub src: NodeId,
    /// Destination (never reached).
    pub dest: NodeId,
    /// Virtual channels acquired in order; the last one is [`held`].
    ///
    /// [`held`]: Self::held
    pub path: Vec<VirtualChannelId>,
    /// The virtual channel the worm occupies while blocked.
    pub held: VirtualChannelId,
    /// The node the head stalls at (sink of [`held`](Self::held)).
    pub node: NodeId,
    /// Every virtual channel the algorithm would accept next, all of which
    /// are held by other worms of the witness. Empty means the worm is
    /// *stranded*: a fault mask killed its entire candidate set.
    pub waits: Vec<VirtualChannelId>,
}

impl BlockedWorm {
    /// Whether this worm is stranded by the fault mask (no live candidate
    /// at all) rather than blocked on contended channels.
    pub fn is_stranded(&self) -> bool {
        self.waits.is_empty()
    }
}

/// A concrete, stable configuration of blocked worms: each holds a distinct
/// virtual channel, and every channel any of them waits for is held by
/// another worm of the set — no worm can ever advance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockWitness {
    /// The blocked worms, sorted by held virtual channel.
    pub worms: Vec<BlockedWorm>,
    /// Suggested injection order (indices into [`worms`](Self::worms)):
    /// stranded worms first, then in closure-discovery order, so each
    /// worm's path is clear of later arrivals when it is injected.
    pub schedule: Vec<usize>,
}

impl DeadlockWitness {
    /// Number of stranded worms in the witness.
    pub fn stranded(&self) -> usize {
        self.worms.iter().filter(|w| w.is_stranded()).count()
    }

    /// The physical channels held by the witness worms (deduplicated,
    /// sorted raw [`ChannelId`](wormsim_topology::ChannelId) values) —
    /// the cross-validation hook against an engine wait-for snapshot.
    pub fn held_physical_channels(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .worms
            .iter()
            .map(|w| u64::from(w.held.channel.index()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// What the bounded checker concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyVerdict {
    /// The greatest self-supporting set of blocked configurations is
    /// empty: no deadlock is possible under the algorithm's own candidate
    /// sets, whatever the injection pattern.
    ProvenFree,
    /// A stable blocked configuration exists; here is one.
    Deadlock(DeadlockWitness),
}

impl SafetyVerdict {
    /// Whether the verdict is [`SafetyVerdict::ProvenFree`].
    pub fn is_proven_free(&self) -> bool {
        matches!(self, SafetyVerdict::ProvenFree)
    }

    /// The witness, if the verdict found one.
    pub fn witness(&self) -> Option<&DeadlockWitness> {
        match self {
            SafetyVerdict::ProvenFree => None,
            SafetyVerdict::Deadlock(w) => Some(w),
        }
    }
}

/// The checker's full output: the verdict plus the exploration statistics
/// that calibrate how much evidence backs it.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The verdict.
    pub verdict: SafetyVerdict,
    /// Holding configurations enumerated.
    pub configs: usize,
    /// Configurations surviving the fixpoint (0 iff proven free).
    pub survivors: usize,
    /// Surviving configurations with an empty (all-dead) wait set.
    pub stranded: usize,
    /// Ordered pairs excluded because the mask kills or disconnects an
    /// endpoint (0 for the unmasked check).
    pub excluded_pairs: u64,
    /// The physical channels held by *any* surviving configuration —
    /// a superset of every possible deadlock's contended channels. An
    /// engine-observed wait-for cycle must run inside this set.
    pub survivor_channels: Vec<u64>,
}

/// One enumerated holding configuration.
struct Config {
    held: VirtualChannelId,
    node: NodeId,
    src: NodeId,
    dest: NodeId,
    path: Vec<VirtualChannelId>,
    waits: Vec<VirtualChannelId>,
}

/// Checks `algo` on a healthy `topo`.
///
/// # Errors
///
/// [`VerifyError::NetworkTooLarge`] beyond [`MAX_NODES`] nodes.
pub fn check(topo: &Topology, algo: &dyn RoutingAlgorithm) -> Result<CheckReport, VerifyError> {
    check_masked(topo, &ChannelMask::all_alive(topo), algo)
}

/// Checks `algo` on the subgraph of `topo` surviving `mask`.
///
/// Pairs whose destination is dead or unreachable are excluded (the
/// simulator's [`Reachability`](wormsim_faults::Reachability) excludes them
/// from traffic generation the same way); candidates on dead channels are
/// dropped, and a configuration losing its whole candidate set becomes a
/// permanent holder — which is why a mask can introduce deadlocks the
/// masked CDG (which only ever *loses* edges) cannot see.
///
/// # Errors
///
/// [`VerifyError::NetworkTooLarge`] beyond [`MAX_NODES`] nodes.
pub fn check_masked(
    topo: &Topology,
    mask: &ChannelMask,
    algo: &dyn RoutingAlgorithm,
) -> Result<CheckReport, VerifyError> {
    if topo.num_nodes() > MAX_NODES {
        return Err(VerifyError::NetworkTooLarge {
            nodes: topo.num_nodes(),
            limit: MAX_NODES,
        });
    }
    let trivial = mask.is_trivial();
    let mut configs: Vec<Config> = Vec::new();
    let mut excluded_pairs = 0u64;
    for src in topo.nodes() {
        let reach = if trivial {
            Vec::new()
        } else {
            topo.reachable_from(mask, src)
        };
        for dest in topo.nodes() {
            if src == dest {
                continue;
            }
            if !trivial && (!mask.node_alive(dest) || !reach[dest.index() as usize]) {
                excluded_pairs += 1;
                continue;
            }
            enumerate_pair(topo, mask, algo, src, dest, &mut configs);
        }
    }
    let total = configs.len();
    let alive = fixpoint(&configs);
    let survivors = alive.iter().filter(|&&a| a).count();
    let stranded = configs
        .iter()
        .zip(&alive)
        .filter(|(c, &a)| a && c.waits.is_empty())
        .count();
    let mut survivor_channels: Vec<u64> = configs
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(c, _)| u64::from(c.held.channel.index()))
        .collect();
    survivor_channels.sort_unstable();
    survivor_channels.dedup();
    let verdict = if survivors == 0 {
        SafetyVerdict::ProvenFree
    } else {
        SafetyVerdict::Deadlock(extract_witness(&configs, &alive))
    };
    Ok(CheckReport {
        verdict,
        configs: total,
        survivors,
        stranded,
        excluded_pairs,
        survivor_channels,
    })
}

/// Walks every `(node, state)` reachable for one pair and records a
/// holding configuration per hop — the same breadth-first expansion the
/// CDG builder performs, kept structurally in sync with
/// `DependencyGraph::expand_pair`.
fn enumerate_pair(
    topo: &Topology,
    mask: &ChannelMask,
    algo: &dyn RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
    configs: &mut Vec<Config>,
) {
    let trivial = mask.is_trivial();
    let mut initial = MessageRouteState::new(src, dest);
    algo.init_message(topo, &mut initial);
    let mut seen: HashSet<(NodeId, MessageRouteState)> = HashSet::new();
    // Shortest acquired-channel path to each visited (node, state) — the
    // BFS order guarantees the first visit is minimal, which keeps witness
    // paths short.
    let mut parent: HashMap<
        (NodeId, MessageRouteState),
        (NodeId, MessageRouteState, VirtualChannelId),
    > = HashMap::new();
    // One configuration per (held, state-at-stall): different approach
    // paths to the same stall add nothing to the fixpoint.
    let mut emitted: HashSet<(VirtualChannelId, MessageRouteState)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, MessageRouteState)> = VecDeque::new();
    let mut candidates = Vec::new();
    let mut next_candidates = Vec::new();
    seen.insert((src, initial));
    queue.push_back((src, initial));
    while let Some((node, state)) = queue.pop_front() {
        candidates.clear();
        algo.candidates(topo, &state, node, &mut candidates);
        if !trivial {
            candidates.retain(|c| mask.channel_alive(topo.channel(node, c.direction())));
        }
        for &taken in candidates.iter() {
            let next = topo
                .neighbor(node, taken.direction())
                .expect("candidate on nonexistent channel");
            let held = VirtualChannelId {
                channel: topo.channel(node, taken.direction()),
                class: taken.vc_class(),
            };
            let mut next_state = state;
            next_state.advance(topo, node, taken);
            if seen.insert((next, next_state)) {
                parent.insert((next, next_state), (node, state, held));
                if next != dest {
                    queue.push_back((next, next_state));
                }
            }
            if next == dest {
                // Adjacent to ejection: the worm drains, holding nothing
                // for long — no configuration.
                continue;
            }
            if !emitted.insert((held, next_state)) {
                continue;
            }
            next_candidates.clear();
            algo.candidates(topo, &next_state, next, &mut next_candidates);
            if !trivial {
                next_candidates.retain(|c| mask.channel_alive(topo.channel(next, c.direction())));
            }
            let mut waits: Vec<VirtualChannelId> = next_candidates
                .iter()
                .map(|c| VirtualChannelId {
                    channel: topo.channel(next, c.direction()),
                    class: c.vc_class(),
                })
                .collect();
            waits.sort_unstable();
            waits.dedup();
            let mut path = vec![held];
            let mut cursor = (node, state);
            while let Some(&(pn, ps, pheld)) = parent.get(&cursor) {
                path.push(pheld);
                cursor = (pn, ps);
            }
            path.reverse();
            configs.push(Config {
                held,
                node: next,
                src,
                dest,
                path,
                waits,
            });
        }
    }
}

/// Greatest fixpoint: repeatedly deletes configurations with a waited
/// channel no surviving configuration holds. Returns the survival mask.
fn fixpoint(configs: &[Config]) -> Vec<bool> {
    let mut alive = vec![true; configs.len()];
    let mut holders: BTreeMap<VirtualChannelId, usize> = BTreeMap::new();
    for c in configs {
        *holders.entry(c.held).or_insert(0) += 1;
    }
    // Reverse index: which configurations wait on a given channel.
    let mut waiters: BTreeMap<VirtualChannelId, Vec<usize>> = BTreeMap::new();
    for (i, c) in configs.iter().enumerate() {
        for &w in &c.waits {
            waiters.entry(w).or_default().push(i);
        }
    }
    let mut queue: VecDeque<usize> = configs
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.waits.is_empty() && c.waits.iter().any(|w| !holders.contains_key(w)))
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = queue.pop_front() {
        if !alive[i] {
            continue;
        }
        alive[i] = false;
        let held = configs[i].held;
        let count = holders.get_mut(&held).expect("alive config was counted");
        *count -= 1;
        if *count == 0 {
            holders.remove(&held);
            if let Some(ws) = waiters.get(&held) {
                for &j in ws {
                    if alive[j] {
                        queue.push_back(j);
                    }
                }
            }
        }
    }
    alive
}

/// Builds a concrete witness from the surviving configurations: pick one
/// holder per virtual channel, close over the wait sets, and order the
/// worms deterministically.
fn extract_witness(configs: &[Config], alive: &[bool]) -> DeadlockWitness {
    // Canonical holder for each channel: the first surviving config in
    // enumeration order (deterministic; BFS-minimal paths come first).
    let mut chosen: BTreeMap<VirtualChannelId, usize> = BTreeMap::new();
    for (i, c) in configs.iter().enumerate() {
        if alive[i] {
            chosen.entry(c.held).or_insert(i);
        }
    }
    // Seed the closure at a stranded survivor when one exists (the
    // fault-mask story starts there), else at the first survivor.
    let seed = configs
        .iter()
        .enumerate()
        .position(|(i, c)| alive[i] && c.waits.is_empty())
        .or_else(|| alive.iter().position(|&a| a))
        .expect("witness extraction requires survivors");
    let seed = chosen[&configs[seed].held].min(seed);
    let mut in_witness: HashSet<usize> = HashSet::new();
    let mut order: Vec<usize> = Vec::new();
    let mut work: VecDeque<usize> = VecDeque::new();
    in_witness.insert(seed);
    work.push_back(seed);
    while let Some(i) = work.pop_front() {
        order.push(i);
        for w in &configs[i].waits {
            let j = chosen[w];
            if in_witness.insert(j) {
                work.push_back(j);
            }
        }
    }
    // Stranded worms first in the suggested injection order, then
    // discovery order; worms themselves sorted by held channel.
    order.sort_by_key(|&i| (!configs[i].waits.is_empty(), configs[i].held));
    let worms: Vec<BlockedWorm> = {
        let mut sorted = order.clone();
        sorted.sort_by_key(|&i| configs[i].held);
        sorted
            .iter()
            .map(|&i| {
                let c = &configs[i];
                BlockedWorm {
                    src: c.src,
                    dest: c.dest,
                    path: c.path.clone(),
                    held: c.held,
                    node: c.node,
                    waits: c.waits.clone(),
                }
            })
            .collect()
    };
    let index_of: HashMap<VirtualChannelId, usize> = worms
        .iter()
        .enumerate()
        .map(|(w, worm)| (worm.held, w))
        .collect();
    let schedule: Vec<usize> = order.iter().map(|&i| index_of[&configs[i].held]).collect();
    DeadlockWitness { worms, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_routing::AlgorithmKind;

    fn check_kind(kind: AlgorithmKind, topo: &Topology) -> CheckReport {
        let algo = kind.build(topo).unwrap();
        check(topo, algo.as_ref()).unwrap()
    }

    #[test]
    fn ecube_is_proven_free_on_4x4_torus() {
        let topo = Topology::torus(&[4, 4]);
        let report = check_kind(AlgorithmKind::Ecube, &topo);
        assert!(report.verdict.is_proven_free(), "{report:?}");
        assert!(report.configs > 0);
        assert_eq!(report.survivors, 0);
    }

    #[test]
    fn five_paper_algorithms_proven_free_and_2pn_refuted_on_4x4_torus() {
        // The headline acceptance fact, settled both ways. Five of the
        // paper's six algorithms are deadlock-free at their paper VC
        // counts on a 4x4 torus, and the checker proves it exhaustively.
        //
        // The sixth — 2pn in its published 2D Eq.1 form — is *refuted*.
        // PR-6 flagged its CDG as cyclic-but-inconclusive and kept the
        // published definition; this checker settles that open question
        // the other way: the Eq.1 class tag is constant over a 2D
        // journey, so within a class the torus rings stay cyclic and a
        // stable all-candidates-held configuration exists. The extracted
        // witness contains a hand-verified core 4-cycle (all class 01):
        //
        //   (1,3)->(3,1) holds (2,0)+x, stalled at (3,0) on {(3,0)+y}
        //   (0,3)->(2,1) holds (3,0)+y, stalled at (3,1) on {(3,1)-x}
        //   (0,1)->(2,0) holds (3,1)-x, stalled at (2,1) on {(2,1)-y}
        //   (1,1)->(3,0) holds (2,1)-y, stalled at (2,0) on {(2,0)+x}
        //
        // Every stall's candidate set is a singleton, so Duato's escape
        // condition never fires. The witness is also dynamically real:
        // replayed with aligned injection timing under random VC
        // selection, the engine deadlocks on exactly this cycle (see the
        // workspace-level verify_acceptance tests). The >=3D variant
        // (travel-sign tags x dateline levels) remains ProvenFree — see
        // `two_pn_is_proven_free_on_2x4x4_torus` below.
        let topo = Topology::torus(&[4, 4]);
        for kind in AlgorithmKind::all() {
            let report = check_kind(kind, &topo);
            if kind == AlgorithmKind::TwoPowerN {
                let witness = report.verdict.witness().expect("2pn-2D must be refuted");
                assert_eq!(witness.stranded(), 0, "healthy network cannot strand");
                assert!(witness.worms.len() >= 4);
            } else {
                assert!(
                    report.verdict.is_proven_free(),
                    "{kind}: expected ProvenFree, got {} survivors of {} configs",
                    report.survivors,
                    report.configs
                );
            }
        }
    }

    #[test]
    fn two_pn_is_proven_free_on_2x4x4_torus() {
        // In >=3D tori 2pn switches to travel-sign tags crossed with
        // dateline levels; the bounded checker confirms that variant is
        // genuinely safe, so the 2D refutation above reflects Eq.1's
        // class collapse, not checker pessimism.
        let topo = Topology::torus(&[2, 4, 4]);
        let report = check_kind(AlgorithmKind::TwoPowerN, &topo);
        assert!(report.verdict.is_proven_free(), "{report:?}");
    }

    #[test]
    fn naive_minimal_has_a_witness_on_4x4_torus() {
        let topo = Topology::torus(&[4, 4]);
        let report = check_kind(AlgorithmKind::NaiveMinimal, &topo);
        let witness = report.verdict.witness().expect("naive must deadlock");
        assert!(witness.worms.len() >= 2);
        assert_eq!(witness.schedule.len(), witness.worms.len());
        // Structural validity: every wait is held by exactly one worm of
        // the witness, and no two worms hold the same channel.
        let held: HashSet<VirtualChannelId> = witness.worms.iter().map(|w| w.held).collect();
        assert_eq!(held.len(), witness.worms.len(), "holders must be distinct");
        for worm in &witness.worms {
            assert!(!worm.is_stranded(), "healthy network cannot strand");
            assert_eq!(*worm.path.last().unwrap(), worm.held);
            for w in &worm.waits {
                assert!(held.contains(w), "wait {w:?} has no holder");
            }
        }
    }

    #[test]
    fn naive_minimal_is_proven_free_on_mesh() {
        // Minimal adaptive routing cannot deadlock on a (VC-free) mesh...
        // is false in general for wormhole (turn cycles), and the checker
        // must say so: keep this as a regression that the checker is not
        // trivially optimistic.
        let topo = Topology::mesh(&[4, 4]);
        let report = check_kind(AlgorithmKind::NaiveMinimal, &topo);
        assert!(
            !report.verdict.is_proven_free(),
            "single-class fully-adaptive mesh routing has turn cycles"
        );
    }

    #[test]
    fn stranding_mask_produces_stranded_witness() {
        use wormsim_topology::{Direction, Sign};
        // Mesh + minimal routing: killing the only channel on some pair's
        // unique minimal path strands worms (cf. the masked-CDG doctest).
        let topo = Topology::mesh(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&topo);
        mask.kill_channel(topo.channel(topo.node_at(&[1, 0]), Direction::new(0, Sign::Plus)));
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let report = check_masked(&topo, &mask, algo.as_ref()).unwrap();
        match &report.verdict {
            SafetyVerdict::Deadlock(witness) => {
                assert!(witness.stranded() > 0, "mask must strand a worm");
                assert!(report.stranded > 0);
            }
            SafetyVerdict::ProvenFree => panic!("stranding mask must refute: {report:?}"),
        }
    }

    #[test]
    fn rejects_oversized_networks() {
        let topo = Topology::torus(&[16, 16]);
        let algo = AlgorithmKind::Ecube.build(&topo).unwrap();
        assert!(matches!(
            check(&topo, algo.as_ref()),
            Err(VerifyError::NetworkTooLarge { nodes: 256, .. })
        ));
    }
}

//! # wormsim-verify — adversarial safety verification
//!
//! The CDG analysis in [`wormsim_routing::deadlock`] settles the easy half
//! of the paper's safety claims: an acyclic channel-dependency graph proves
//! deadlock-freedom outright. The adaptive half is harder — a cyclic CDG
//! is *inconclusive* for adaptive algorithms, because a blocked worm with
//! several candidate channels deadlocks only if **all** of them are held
//! (Duato's criterion), which no per-edge graph condition captures. Until
//! now the repo handled that gap empirically: run the engine, let the PR-4
//! watchdog fire, and eyeball the PR-7 wait-for snapshot.
//!
//! This crate closes the gap mechanically, in three movements:
//!
//! - [`checker`] — a bounded model checker for small networks (≤4×4 tori
//!   and meshes, hard cap [`checker::MAX_NODES`] nodes) that exhaustively
//!   enumerates every reachable channel-holding configuration and computes
//!   the greatest self-supporting set. Empty set ⇒
//!   [`SafetyVerdict::ProvenFree`]; otherwise a constructive
//!   [`DeadlockWitness`] with a suggested injection schedule.
//! - [`adversary`] — a fault-mask search that enumerates fault plans the
//!   simulator's [`Reachability`](wormsim_faults::Reachability) admits
//!   (exhaustively for small fault counts, seeded-random beyond), re-runs
//!   the masked CDG + bounded checker on the surviving subgraph, and
//!   emits greedily minimized counterexample plans for every algorithm
//!   whose [`fault_tolerance`](wormsim_routing::RoutingAlgorithm::fault_tolerance)
//!   claim it refutes.
//! - [`triage`] — a runtime path that replays an engine wait-for snapshot
//!   (`<run>.waitfor.jsonl`) through cycle detection + edge validation to
//!   refine a watchdog verdict into *confirmed-unsafe* (a genuine circular
//!   wait was present) vs *budget-artifact* (the run stalled, but no
//!   self-sustaining cycle existed — congestion, budget too tight, or a
//!   transient fault still in flight).
//!
//! Everything here is deterministic: given the same topology, algorithm,
//! and seed, the same witness and the same minimized plans come out, so
//! counterexamples can be pinned in goldens and replayed in CI.

pub mod adversary;
pub mod checker;
pub mod triage;

pub use adversary::{search_faults, AdversaryConfig, AdversaryReport, Refutation};
pub use checker::{check, check_masked, BlockedWorm, CheckReport, DeadlockWitness, SafetyVerdict};
pub use triage::{triage, TriageReport, TriageVerdict};

use std::fmt;

/// Errors from the verification entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The network exceeds the exhaustive checker's size cap.
    NetworkTooLarge {
        /// Nodes in the offending topology.
        nodes: u32,
        /// The cap ([`checker::MAX_NODES`]).
        limit: u32,
    },
    /// A generated fault plan failed the plan validator (a bug in the
    /// enumeration, surfaced rather than skipped silently).
    InvalidPlan(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NetworkTooLarge { nodes, limit } => write!(
                f,
                "network has {nodes} nodes; the exhaustive checker is capped at {limit} \
                 (use the engine + runtime triage beyond that)"
            ),
            VerifyError::InvalidPlan(msg) => write!(f, "generated fault plan invalid: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}

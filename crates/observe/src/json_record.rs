//! Line-JSON encoding for observability records.
//!
//! The hot path (a [`JsonlSink`](crate::JsonlSink) behind the engine's
//! event dispatch) appends into one reused `String`, so encoding is
//! allocation-free in steady state. Parsing back goes through the vendored
//! [`json`](crate::json) shim; the two agree on the wire format, which the
//! round-trip tests pin down.

use std::fmt::Write as _;

/// A record that knows how to write itself as one JSON object.
pub trait JsonRecord {
    /// Appends this record as a JSON object (no trailing newline).
    fn write_json(&self, out: &mut String);

    /// The record as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Incremental writer for one JSON object: `{"k":v,...}` with correct
/// comma placement and string escaping.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Opens an object into `out`.
    pub fn begin(out: &'a mut String) -> Self {
        out.push('{');
        JsonObject { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        escape_into(self.out, key);
        self.out.push(':');
    }

    /// Writes a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_into(self.out, value);
        self
    }

    /// Writes a string-or-null field.
    pub fn field_opt_str(&mut self, key: &str, value: Option<&str>) -> &mut Self {
        match value {
            Some(v) => self.field_str(key, v),
            None => {
                self.key(key);
                self.out.push_str("null");
                self
            }
        }
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes a float field (`null` for non-finite values, which JSON
    /// cannot express).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Writes an array-of-integers field.
    pub fn field_u64_array(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Writes a field whose value is already valid JSON text.
    pub fn field_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(raw_json);
        self
    }

    /// Closes the object.
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_encoding_parses_back() {
        let mut out = String::new();
        let mut obj = JsonObject::begin(&mut out);
        obj.field_str("name", "a \"b\"\nc")
            .field_u64("n", 42)
            .field_f64("x", 2.5)
            .field_f64("bad", f64::NAN)
            .field_bool("ok", true)
            .field_opt_str("missing", None)
            .field_u64_array("xs", &[1, 2, 3])
            .field_raw("nested", "{\"k\":1}");
        obj.finish();
        let v = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"b\"\nc"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.5));
        assert!(v.get("bad").unwrap().is_null());
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").unwrap().is_null());
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("nested").unwrap().get("k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn empty_object() {
        let mut out = String::new();
        JsonObject::begin(&mut out).finish();
        assert_eq!(out, "{}");
    }
}

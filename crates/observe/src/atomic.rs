//! Crash-safe file replacement: write to a temporary sibling, then rename.
//!
//! Result files (CSVs, manifests, journals) must never be observable in a
//! half-written state — a crash or SIGKILL between `open` and the final
//! `write` would otherwise leave a truncated file that silently poisons a
//! later resume or plot. POSIX `rename(2)` within one directory is atomic,
//! so the sequence *write tmp → flush → rename over target* guarantees a
//! reader sees either the old contents or the new, never a prefix.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Atomically replaces the file at `path` with `contents`.
///
/// The data is first written (and flushed) to a temporary file in the same
/// directory — `.<name>.tmp.<pid>`, so concurrent writers of *different*
/// processes never collide — and then renamed over `path`. On any error the
/// temporary file is removed; the target is either untouched or fully
/// replaced.
///
/// # Errors
///
/// Propagates filesystem errors from the write, flush, or rename.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("atomic_write target '{}' has no file name", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        // Flush user-space buffers and push the bytes to the kernel; a
        // crash after the rename may still lose the *latest* version on
        // power failure, but never yields a truncated file.
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wormsim-atomic-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.csv");
        atomic_write(&path, "first\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first\n");
        atomic_write(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_tmp_files_behind() {
        let dir = tmp_dir("clean");
        let path = dir.join("out.json");
        atomic_write(&path, b"{}").unwrap();
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "stray tmp files: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(Path::new("/"), "x").is_err());
    }
}

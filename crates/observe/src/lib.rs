//! `wormsim-observe` — the observability spine of the wormsim stack.
//!
//! The simulator's validity claims rest on steady-state measurements; this
//! crate makes those measurements *inspectable* instead of trusting them
//! blind. It provides four pieces, each usable on its own:
//!
//! * **Event sinks** ([`EventSink`]): a pluggable destination for
//!   per-event records. [`NullSink`] discards, [`RingSink`] keeps the last
//!   N events with a `dropped_events` counter (bounding the old
//!   grow-forever trace buffer), and [`JsonlSink`] streams records as
//!   line-delimited JSON. The engine dispatches trace events and samples
//!   through this trait at a cost of one branch per event site when
//!   disabled.
//! * **Time-series samples** ([`Sample`]): a typed snapshot of what the
//!   network is doing over a window of cycles — queue depths, per-VC-class
//!   occupancy, per-channel flit load, and the resettable counter deltas.
//!   A stream of samples is the data behind a channel-load heatmap or a
//!   latency-vs-time convergence plot.
//! * **Phase timing** ([`PhaseTimings`], [`Stopwatch`]): lightweight
//!   wall-clock spans over the phases of a run (warmup, measurement, gaps,
//!   drain), standing in for `tracing` spans in this no-dependency build;
//!   set `WORMSIM_SPANS=1` to echo spans to stderr as they close.
//! * **Run manifests** ([`RunManifest`]): a JSON sidecar written next to
//!   results capturing what produced them — config hash, seed,
//!   `git describe`, cycle counts, and the simulator's own throughput in
//!   cycles/sec and flits/sec.
//!
//! Everything serializes through the tiny [`JsonRecord`] trait (hand-rolled
//! line JSON, no allocation beyond one reused line buffer) and parses back
//! via the vendored `serde_json` shim re-exported as [`json`].
//!
//! # Example
//!
//! ```
//! use wormsim_observe::{EventSink, RingSink, Sample};
//!
//! let mut sink: RingSink<u64> = RingSink::new(2);
//! sink.record(&1);
//! sink.record(&2);
//! sink.record(&3); // evicts 1
//! assert_eq!(sink.dropped_events(), 1);
//! assert_eq!(sink.drain(), vec![2, 3]);
//! # let _ = Sample::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod config;
mod json_record;
mod manifest;
mod metrics;
mod sample;
mod sink;
mod span;

pub use atomic::atomic_write;
pub use config::ObserveConfig;
pub use json_record::{JsonObject, JsonRecord};
pub use manifest::{fnv1a_hex, git_describe, PhaseRecord, RunManifest};
pub use metrics::{
    heatmap_csv, HistogramRecord, MetricsRegistry, MetricsReport, Pow2Histogram, WaitForEdge,
    WaitForSnapshot, WaitKind, PHASE_ADVANCE, PHASE_ALLOCATE, PHASE_DRAIN, PHASE_INJECT,
    PHASE_NAMES, PHASE_ROUTE,
};
pub use sample::Sample;
pub use sink::{EventSink, JsonlSink, NullSink, RingSink};
pub use span::{PhaseTimings, Stopwatch};

/// The vendored mini `serde_json` (JSON values, parsing, and the
/// [`StreamDeserializer`](json::StreamDeserializer) used to validate JSONL
/// streams), re-exported so downstream crates need no extra dependency.
pub use serde_json as json;

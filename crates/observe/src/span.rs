//! Lightweight phase timing: stopwatches and accumulated span records.
//!
//! A full `tracing` subscriber would be overkill (and is unavailable in
//! this no-dependency build); runs have a handful of coarse phases and all
//! we need is wall-clock attribution per phase. Set `WORMSIM_SPANS=1` to
//! echo each span to stderr as it is recorded.

use crate::PhaseRecord;
use std::time::Instant;

/// A started wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`start`](Self::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Accumulates wall-clock spans by phase name.
///
/// Recording the same name repeatedly (e.g. one `measure` span per
/// convergence sample) sums into a single [`PhaseRecord`]; phase order is
/// first-recorded order.
#[derive(Debug)]
pub struct PhaseTimings {
    phases: Vec<PhaseRecord>,
    echo: bool,
}

impl PhaseTimings {
    /// An empty set of timings. The `WORMSIM_SPANS` environment variable is
    /// consulted once, here.
    pub fn new() -> Self {
        let echo = std::env::var_os("WORMSIM_SPANS").is_some_and(|v| !v.is_empty() && v != "0");
        PhaseTimings {
            phases: Vec::new(),
            echo,
        }
    }

    /// Adds a closed span to the phase named `name`.
    pub fn record(&mut self, name: &str, watch: &Stopwatch, cycles: u64) {
        let wall_seconds = watch.elapsed_secs();
        if self.echo {
            eprintln!("[span] {name}: {wall_seconds:.6}s, {cycles} cycles");
        }
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(phase) => {
                phase.wall_seconds += wall_seconds;
                phase.cycles += cycles;
            }
            None => self.phases.push(PhaseRecord {
                name: name.to_owned(),
                wall_seconds,
                cycles,
            }),
        }
    }

    /// The accumulated phases, in first-recorded order.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Consumes the timings, yielding the phase records.
    pub fn into_phases(self) -> Vec<PhaseRecord> {
        self.phases
    }

    /// Total wall-clock seconds across all phases.
    pub fn total_wall(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Total simulated cycles across all phases.
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }
}

impl Default for PhaseTimings {
    fn default() -> Self {
        PhaseTimings::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_name() {
        let mut timings = PhaseTimings::new();
        let watch = Stopwatch::start();
        timings.record("measure", &watch, 100);
        timings.record("gap", &watch, 10);
        timings.record("measure", &watch, 100);
        assert_eq!(timings.phases().len(), 2);
        assert_eq!(timings.phases()[0].name, "measure");
        assert_eq!(timings.phases()[0].cycles, 200);
        assert_eq!(timings.total_cycles(), 210);
        assert!(timings.total_wall() >= 0.0);
        assert_eq!(timings.into_phases().len(), 2);
    }

    #[test]
    fn stopwatch_advances() {
        let watch = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(watch.elapsed_secs() > 0.0);
    }
}

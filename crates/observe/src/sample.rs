//! Typed time-series snapshots of network state.

use crate::json::Value;
use crate::{JsonObject, JsonRecord};
use serde::{Deserialize, Serialize};

/// One sampling-stride snapshot of the network: instantaneous occupancy
/// plus the counter deltas accumulated over the window that ended at
/// [`cycle`](Self::cycle).
///
/// A stream of samples reconstructs the run's dynamics: `class_flits` per
/// window is the VC-class balance plot (nhop vs nbc, paper Section 2.2),
/// `channel_flits` is a channel-load heatmap frame, and
/// [`mean_latency`](Self::mean_latency) against `cycle` is the
/// latency-vs-time convergence curve.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// The cycle at which the snapshot was taken (end of the window).
    pub cycle: u64,
    /// Cycles covered by the windowed counters below.
    pub window_cycles: u64,
    /// Messages accepted into source queues during the window.
    pub generated: u64,
    /// Messages refused by congestion control during the window.
    pub refused: u64,
    /// Messages fully delivered during the window.
    pub delivered: u64,
    /// Sum of end-to-end latencies of the window's delivered messages.
    pub latency_sum: u64,
    /// Flit transfers across network physical channels during the window.
    pub flit_hops: u64,
    /// Flits that left source queues during the window.
    pub flits_injected: u64,
    /// Flits delivered at destinations during the window.
    pub flits_ejected: u64,
    /// Flits inside the network (or source-queued) at the snapshot.
    pub flits_in_flight: u64,
    /// Messages alive (queued, streaming, in transit) at the snapshot.
    pub live_messages: u64,
    /// Messages waiting in source queues at the snapshot.
    pub queued_messages: u64,
    /// The deepest single source queue at the snapshot.
    pub max_queue_depth: u64,
    /// Flits buffered in input VCs at the snapshot, per VC class.
    pub class_occupancy: Vec<u64>,
    /// Flit transfers during the window, per VC class.
    pub class_flits: Vec<u64>,
    /// Flit transfers during the window, per physical channel (empty
    /// unless the network tracks channel load).
    pub channel_flits: Vec<u64>,
}

impl Sample {
    /// Mean latency of the messages delivered in this window, if any.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.latency_sum as f64 / self.delivered as f64)
    }

    /// Delivered messages per cycle over the window.
    pub fn delivery_rate(&self) -> f64 {
        if self.window_cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.window_cycles as f64
        }
    }

    /// Reconstructs a sample from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("sample field '{name}' missing or not a u64"))
        };
        let array = |name: &str| -> Result<Vec<u64>, String> {
            value
                .get(name)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("sample field '{name}' missing or not an array"))?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| format!("non-integer in '{name}'")))
                .collect()
        };
        if value.get("type").and_then(Value::as_str) != Some("sample") {
            return Err("record is not of type 'sample'".to_owned());
        }
        Ok(Sample {
            cycle: field("cycle")?,
            window_cycles: field("window_cycles")?,
            generated: field("generated")?,
            refused: field("refused")?,
            delivered: field("delivered")?,
            latency_sum: field("latency_sum")?,
            flit_hops: field("flit_hops")?,
            flits_injected: field("flits_injected")?,
            flits_ejected: field("flits_ejected")?,
            flits_in_flight: field("flits_in_flight")?,
            live_messages: field("live_messages")?,
            queued_messages: field("queued_messages")?,
            max_queue_depth: field("max_queue_depth")?,
            class_occupancy: array("class_occupancy")?,
            class_flits: array("class_flits")?,
            channel_flits: array("channel_flits")?,
        })
    }
}

impl JsonRecord for Sample {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "sample")
            .field_u64("cycle", self.cycle)
            .field_u64("window_cycles", self.window_cycles)
            .field_u64("generated", self.generated)
            .field_u64("refused", self.refused)
            .field_u64("delivered", self.delivered)
            .field_u64("latency_sum", self.latency_sum)
            .field_u64("flit_hops", self.flit_hops)
            .field_u64("flits_injected", self.flits_injected)
            .field_u64("flits_ejected", self.flits_ejected)
            .field_u64("flits_in_flight", self.flits_in_flight)
            .field_u64("live_messages", self.live_messages)
            .field_u64("queued_messages", self.queued_messages)
            .field_u64("max_queue_depth", self.max_queue_depth)
            .field_u64_array("class_occupancy", &self.class_occupancy)
            .field_u64_array("class_flits", &self.class_flits)
            .field_u64_array("channel_flits", &self.channel_flits);
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut s = Sample {
            delivered: 4,
            latency_sum: 100,
            window_cycles: 50,
            ..Sample::default()
        };
        assert_eq!(s.mean_latency(), Some(25.0));
        assert!((s.delivery_rate() - 0.08).abs() < 1e-12);
        s.delivered = 0;
        assert_eq!(s.mean_latency(), None);
        s.window_cycles = 0;
        assert_eq!(s.delivery_rate(), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let sample = Sample {
            cycle: 5_000,
            window_cycles: 1_000,
            generated: 40,
            refused: 3,
            delivered: 37,
            latency_sum: 1_850,
            flit_hops: 2_600,
            flits_injected: 640,
            flits_ejected: 592,
            flits_in_flight: 96,
            live_messages: 7,
            queued_messages: 2,
            max_queue_depth: 1,
            class_occupancy: vec![30, 66],
            class_flits: vec![1_300, 1_300],
            channel_flits: vec![10, 0, 25, 7],
        };
        let parsed = crate::json::from_str(&sample.to_json()).unwrap();
        assert_eq!(Sample::from_json(&parsed).unwrap(), sample);
    }

    #[test]
    fn from_json_rejects_wrong_type_and_missing_fields() {
        let not_sample = crate::json::from_str("{\"type\":\"trace\"}").unwrap();
        assert!(Sample::from_json(&not_sample).is_err());
        let truncated = crate::json::from_str("{\"type\":\"sample\",\"cycle\":1}").unwrap();
        let err = Sample::from_json(&truncated).unwrap_err();
        assert!(err.contains("window_cycles"), "{err}");
    }
}

//! User-facing configuration for what to observe and where to put it.

use std::path::PathBuf;

/// Samples are taken every this many cycles when a stride of 0 is given.
pub const DEFAULT_SAMPLE_EVERY: u64 = 1_000;

/// Where and how densely to record a run's observability streams.
///
/// An all-`None` config (the default) disables observability entirely; the
/// engine then pays one predicted-not-taken branch per event site.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObserveConfig {
    /// Directory for `<run_id>.samples.jsonl` and `<run_id>.manifest.json`.
    /// `None` disables sampling and manifests.
    pub out_dir: Option<PathBuf>,
    /// Directory for `<run_id>.trace.jsonl` full event traces. `None`
    /// disables trace streaming. Traces are much larger than samples, so
    /// this is separate from `out_dir`.
    pub trace_dir: Option<PathBuf>,
    /// Cycles between samples; 0 means [`DEFAULT_SAMPLE_EVERY`].
    pub sample_every: u64,
    /// Prefix for generated run ids (typically the figure or sweep name).
    pub prefix: String,
    /// Enable the deep-telemetry [`MetricsRegistry`](crate::MetricsRegistry):
    /// per-channel/per-VC-class counters, latency histogram, phase profiler,
    /// and the `<run_id>.metrics.json` + `<run_id>.heatmap.csv` exports.
    /// Only takes effect when [`out_dir`](Self::out_dir) is set.
    pub metrics: bool,
}

impl ObserveConfig {
    /// Whether any output is requested at all.
    pub fn enabled(&self) -> bool {
        self.out_dir.is_some() || self.trace_dir.is_some()
    }

    /// The effective sampling stride.
    pub fn stride(&self) -> u64 {
        if self.sample_every == 0 {
            DEFAULT_SAMPLE_EVERY
        } else {
            self.sample_every
        }
    }

    /// Builds a filesystem-safe run id from the prefix and `parts`
    /// (algorithm, traffic, load, seed, ...). Anything outside
    /// `[A-Za-z0-9._-]` becomes `_`.
    pub fn run_id(&self, parts: &[&str]) -> String {
        let mut id = String::new();
        for part in std::iter::once(&self.prefix.as_str()).chain(parts.iter()) {
            if part.is_empty() {
                continue;
            }
            if !id.is_empty() {
                id.push('-');
            }
            for c in part.chars() {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    id.push(c);
                } else {
                    id.push('_');
                }
            }
        }
        if id.is_empty() {
            id.push_str("run");
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let config = ObserveConfig::default();
        assert!(!config.enabled());
        assert_eq!(config.stride(), DEFAULT_SAMPLE_EVERY);
    }

    #[test]
    fn any_dir_enables() {
        let with_out = ObserveConfig {
            out_dir: Some(PathBuf::from("/tmp/x")),
            ..ObserveConfig::default()
        };
        assert!(with_out.enabled());
        let with_trace = ObserveConfig {
            trace_dir: Some(PathBuf::from("/tmp/x")),
            ..ObserveConfig::default()
        };
        assert!(with_trace.enabled());
    }

    #[test]
    fn stride_override() {
        let config = ObserveConfig {
            sample_every: 250,
            ..ObserveConfig::default()
        };
        assert_eq!(config.stride(), 250);
    }

    #[test]
    fn run_id_sanitizes() {
        let config = ObserveConfig {
            prefix: "fig3".to_owned(),
            ..ObserveConfig::default()
        };
        assert_eq!(
            config.run_id(&["nbc", "bit reversal", "l0.40", "s42"]),
            "fig3-nbc-bit_reversal-l0.40-s42"
        );
        assert_eq!(ObserveConfig::default().run_id(&[]), "run");
    }
}

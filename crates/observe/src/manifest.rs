//! Run manifests: a JSON sidecar recording what produced a result.

use crate::json::Value;
use crate::{JsonObject, JsonRecord};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use std::process::Command;

/// Wall-clock time spent in one named phase of a run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// The phase name (`warmup`, `measure`, `gap`, `drain`, ...).
    pub name: String,
    /// Wall-clock seconds spent in the phase (summed across entries).
    pub wall_seconds: f64,
    /// Simulated cycles executed during the phase.
    pub cycles: u64,
}

/// Everything needed to trace a result file back to the run that made it.
///
/// Written next to the results (`<run_id>.manifest.json`) so a directory of
/// sweep output is self-describing: which binary state (`git_describe`),
/// which configuration (`config_hash` plus the headline parameters), which
/// randomness (`seed`), and how the simulator itself performed
/// (`cycles_per_sec`, `flits_per_sec`).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct RunManifest {
    /// Identifier shared by this manifest and its sample/trace streams.
    pub run_id: String,
    /// FNV-1a hash of the full simulation configuration's debug form.
    pub config_hash: String,
    /// `git describe --always --dirty` of the working tree, if available.
    pub git_describe: Option<String>,
    /// Master RNG seed for the run.
    pub seed: u64,
    /// Routing algorithm name.
    pub algorithm: String,
    /// Traffic pattern name.
    pub traffic: String,
    /// Topology label in the `--topo` CLI grammar (e.g. `torus:16x16`),
    /// so a manifest's network can be pasted straight into a sweep.
    pub topology: String,
    /// Offered load as a fraction of channel capacity (paper Eq. 4 input).
    pub offered_load: f64,
    /// Per-node flit injection rate derived from the offered load.
    pub injection_rate: f64,
    /// Total simulated cycles, including warmup and drain.
    pub cycles: u64,
    /// Cycles spent in warmup before measurement began.
    pub warmup_cycles: u64,
    /// Measurement samples taken by the convergence controller.
    pub samples: u64,
    /// Whether the run converged under the measurement policy.
    pub converged: bool,
    /// Whether the deadlock watchdog fired.
    pub deadlocked: bool,
    /// How the run ended, as a short lowercase tag (e.g. `completed`,
    /// `deadlocked`, `budget_exceeded`) — the experiment layer's
    /// `RunOutcome` rendered for tooling that greps manifests.
    pub outcome: String,
    /// Refined stall verdict (`confirmed_unsafe` or `budget_artifact`)
    /// from the verification layer's wait-for triage; `None` for runs
    /// that did not stall.
    pub triage: Option<String>,
    /// Total wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Flit-hops executed per wall-clock second (simulator throughput).
    pub flits_per_sec: f64,
    /// Events dropped across all attached sinks (ring eviction, I/O).
    pub dropped_events: u64,
    /// Which attempt at this point produced the manifest (1 = first try).
    /// Orchestrators that retry transient failures bump this so a
    /// directory of manifests records how hard each point fought.
    pub attempts: u64,
    /// Journal path this run was resumed from, when the surrounding sweep
    /// was restarted with `--resume`; `None` for fresh runs.
    pub resumed_from: Option<String>,
    /// Wall-clock breakdown by phase.
    pub phases: Vec<PhaseRecord>,
}

impl RunManifest {
    /// Writes the manifest as pretty-enough single-line JSON at `path`,
    /// atomically (tmp + rename), so a crash mid-write never leaves a
    /// truncated manifest next to good results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        crate::atomic_write(path, text)
    }

    /// Reads a manifest back from `path`.
    ///
    /// # Errors
    ///
    /// Reports filesystem errors and malformed or incomplete JSON.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let value = crate::json::from_str(&text).map_err(|e| e.to_string())?;
        Self::from_json(&value)
    }

    /// Reconstructs a manifest from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let str_field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest field '{name}' missing or not a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("manifest field '{name}' missing or not a u64"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            value
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("manifest field '{name}' missing or not a number"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            value
                .get(name)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("manifest field '{name}' missing or not a bool"))
        };
        if value.get("type").and_then(Value::as_str) != Some("manifest") {
            return Err("record is not of type 'manifest'".to_owned());
        }
        let phases = value
            .get("phases")
            .and_then(Value::as_array)
            .ok_or("manifest field 'phases' missing or not an array")?
            .iter()
            .map(|p| {
                Ok(PhaseRecord {
                    name: p
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("phase missing 'name'")?
                        .to_owned(),
                    wall_seconds: p
                        .get("wall_seconds")
                        .and_then(Value::as_f64)
                        .ok_or("phase missing 'wall_seconds'")?,
                    cycles: p
                        .get("cycles")
                        .and_then(Value::as_u64)
                        .ok_or("phase missing 'cycles'")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunManifest {
            run_id: str_field("run_id")?,
            config_hash: str_field("config_hash")?,
            git_describe: value
                .get("git_describe")
                .ok_or("manifest field 'git_describe' missing")?
                .as_str()
                .map(str::to_owned),
            seed: u64_field("seed")?,
            algorithm: str_field("algorithm")?,
            traffic: str_field("traffic")?,
            topology: str_field("topology")?,
            offered_load: f64_field("offered_load")?,
            injection_rate: f64_field("injection_rate")?,
            cycles: u64_field("cycles")?,
            warmup_cycles: u64_field("warmup_cycles")?,
            samples: u64_field("samples")?,
            converged: bool_field("converged")?,
            deadlocked: bool_field("deadlocked")?,
            outcome: str_field("outcome")?,
            // Arrived with the verification layer; older manifests lack it.
            triage: value
                .get("triage")
                .and_then(Value::as_str)
                .map(str::to_owned),
            wall_seconds: f64_field("wall_seconds")?,
            cycles_per_sec: f64_field("cycles_per_sec")?,
            flits_per_sec: f64_field("flits_per_sec")?,
            dropped_events: u64_field("dropped_events")?,
            // Provenance fields arrived after the first manifest format;
            // older files simply lack them, so default instead of erroring.
            attempts: value.get("attempts").and_then(Value::as_u64).unwrap_or(1),
            resumed_from: value
                .get("resumed_from")
                .and_then(Value::as_str)
                .map(str::to_owned),
            phases,
        })
    }
}

impl JsonRecord for RunManifest {
    fn write_json(&self, out: &mut String) {
        let mut phases_json = String::new();
        phases_json.push('[');
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                phases_json.push(',');
            }
            let mut obj = JsonObject::begin(&mut phases_json);
            obj.field_str("name", &phase.name)
                .field_f64("wall_seconds", phase.wall_seconds)
                .field_u64("cycles", phase.cycles);
            obj.finish();
        }
        phases_json.push(']');

        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "manifest")
            .field_str("run_id", &self.run_id)
            .field_str("config_hash", &self.config_hash)
            .field_opt_str("git_describe", self.git_describe.as_deref())
            .field_u64("seed", self.seed)
            .field_str("algorithm", &self.algorithm)
            .field_str("traffic", &self.traffic)
            .field_str("topology", &self.topology)
            .field_f64("offered_load", self.offered_load)
            .field_f64("injection_rate", self.injection_rate)
            .field_u64("cycles", self.cycles)
            .field_u64("warmup_cycles", self.warmup_cycles)
            .field_u64("samples", self.samples)
            .field_bool("converged", self.converged)
            .field_bool("deadlocked", self.deadlocked)
            .field_str("outcome", &self.outcome)
            .field_opt_str("triage", self.triage.as_deref())
            .field_f64("wall_seconds", self.wall_seconds)
            .field_f64("cycles_per_sec", self.cycles_per_sec)
            .field_f64("flits_per_sec", self.flits_per_sec)
            .field_u64("dropped_events", self.dropped_events)
            .field_u64("attempts", self.attempts)
            .field_opt_str("resumed_from", self.resumed_from.as_deref())
            .field_raw("phases", &phases_json);
        obj.finish();
    }
}

/// FNV-1a (64-bit) of `s`, as 16 lowercase hex digits. Stable across runs
/// and platforms, which is all a config fingerprint needs.
pub fn fnv1a_hex(s: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// `git describe --always --dirty` of the current working tree, or `None`
/// when git is unavailable or the directory is not a repository.
pub fn git_describe() -> Option<String> {
    let output = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "fig3-nbc-uniform-l0.40-s42".to_owned(),
            config_hash: fnv1a_hex("some config"),
            git_describe: Some("abc1234-dirty".to_owned()),
            seed: 42,
            algorithm: "nbc".to_owned(),
            traffic: "uniform".to_owned(),
            topology: "torus:16x16".to_owned(),
            offered_load: 0.4,
            injection_rate: 0.0125,
            cycles: 61_000,
            warmup_cycles: 1_000,
            samples: 12,
            converged: true,
            deadlocked: false,
            outcome: "completed".to_owned(),
            triage: None,
            wall_seconds: 1.5,
            cycles_per_sec: 40_666.7,
            flits_per_sec: 812_000.0,
            dropped_events: 0,
            attempts: 2,
            resumed_from: Some("results/fig3.journal.jsonl".to_owned()),
            phases: vec![
                PhaseRecord {
                    name: "warmup".to_owned(),
                    wall_seconds: 0.1,
                    cycles: 1_000,
                },
                PhaseRecord {
                    name: "measure".to_owned(),
                    wall_seconds: 1.4,
                    cycles: 60_000,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let m = manifest();
        let parsed = crate::json::from_str(&m.to_json()).unwrap();
        assert_eq!(RunManifest::from_json(&parsed).unwrap(), m);
    }

    #[test]
    fn null_git_describe_round_trips() {
        let m = RunManifest {
            git_describe: None,
            ..manifest()
        };
        let parsed = crate::json::from_str(&m.to_json()).unwrap();
        assert_eq!(RunManifest::from_json(&parsed).unwrap().git_describe, None);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("wormsim-observe-manifest-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.manifest.json");
        let m = manifest();
        m.write_to(&path).unwrap();
        assert_eq!(RunManifest::read_from(&path).unwrap(), m);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn provenance_fields_default_when_missing() {
        // Manifests written before the provenance fields existed must
        // still parse: one attempt, not resumed.
        let m = manifest();
        let json = m
            .to_json()
            .replace(",\"attempts\":2", "")
            .replace(",\"resumed_from\":\"results/fig3.journal.jsonl\"", "");
        let parsed = crate::json::from_str(&json).unwrap();
        let old = RunManifest::from_json(&parsed).unwrap();
        assert_eq!(old.attempts, 1);
        assert_eq!(old.resumed_from, None);
    }

    #[test]
    fn triage_verdict_round_trips_and_defaults() {
        let m = RunManifest {
            outcome: "deadlocked".to_owned(),
            deadlocked: true,
            triage: Some("confirmed_unsafe".to_owned()),
            ..manifest()
        };
        let parsed = crate::json::from_str(&m.to_json()).unwrap();
        assert_eq!(RunManifest::from_json(&parsed).unwrap(), m);
        // Manifests written before the verification layer lack the field.
        let json = m.to_json().replace(",\"triage\":\"confirmed_unsafe\"", "");
        let parsed = crate::json::from_str(&json).unwrap();
        assert_eq!(RunManifest::from_json(&parsed).unwrap().triage, None);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), "af63dc4c8601ec8c");
        assert_ne!(fnv1a_hex("config a"), fnv1a_hex("config b"));
    }
}

//! Deep-telemetry instruments: SoA counters, power-of-two latency
//! histograms, a per-phase cycle profiler, and wait-for forensics.
//!
//! The engine owns one optional [`MetricsRegistry`] and feeds it from the
//! hot path through `#[inline]` increments — plain array writes, no
//! allocation, no branching beyond the single `Option` check the
//! observability contract allows. At the end of a run the registry renders
//! into a [`MetricsReport`] (`<run_id>.metrics.json`) and a node-grid
//! channel-utilization heatmap CSV ([`heatmap_csv`]).
//!
//! When a watchdog fires, the engine captures a [`WaitForSnapshot`]: the
//! worm→channel wait-for graph at the stalled cycle, with
//! [cycle detection](WaitForSnapshot::detect_cycle) distinguishing a real
//! channel cycle (deadlock evidence) from mere congestion.

use crate::json::Value;
use crate::{JsonObject, JsonRecord, PhaseRecord};

/// Engine phase index: arrivals + injection-VC assignment.
pub const PHASE_INJECT: usize = 0;
/// Engine phase index: routing and VC allocation.
pub const PHASE_ROUTE: usize = 1;
/// Engine phase index: switch allocation.
pub const PHASE_ALLOCATE: usize = 2;
/// Engine phase index: flit transfers over physical channels.
pub const PHASE_ADVANCE: usize = 3;
/// Engine phase index: ejection at destinations.
pub const PHASE_DRAIN: usize = 4;
/// Names of the profiled engine phases, indexed by the `PHASE_*` consts.
pub const PHASE_NAMES: [&str; 5] = ["inject", "route", "allocate", "advance", "drain"];

/// A power-of-two-bucketed histogram of `u64` values.
///
/// Bucket 0 holds the value 0; bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
/// Recording is a shift, an add, and two compares — allocation-free and
/// branchless enough for the ejection hot path. Percentiles come back as
/// the upper bound of the bucket containing the rank, clamped to the
/// observed maximum, so `p50/p95/p99` are conservative (never understated)
/// estimates with at most 2× relative error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pow2Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Pow2Histogram::default()
    }

    /// The bucket index of `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The largest value bucket `b` can hold.
    pub fn bucket_upper_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values; NaN when empty.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// The value at quantile `q` (0.0–1.0): the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` value, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(bucket, count)` pairs, ascending.
    pub fn sparse_buckets(&self) -> Vec<(u8, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b as u8, c))
            .collect()
    }

    /// Renders the histogram into a named, serializable record.
    pub fn summarize(&self, name: &str) -> HistogramRecord {
        HistogramRecord {
            name: name.to_owned(),
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.sparse_buckets(),
        }
    }
}

/// A serialized [`Pow2Histogram`]: sparse buckets plus extracted
/// percentiles, as a `{"type":"histogram"}` JSONL record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramRecord {
    /// What was measured (e.g. `latency`).
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty `(bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramRecord {
    /// Mean of recorded values; NaN when empty.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Reconstructs a record from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        if value.get("type").and_then(Value::as_str) != Some("histogram") {
            return Err("record is not of type 'histogram'".to_owned());
        }
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram field '{name}' missing or not a u64"))
        };
        let buckets = value
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or("histogram field 'buckets' missing or not an array")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or("histogram bucket is not a [bucket,count] pair")?;
                let b = pair[0]
                    .as_u64()
                    .filter(|&b| b <= 64)
                    .ok_or("histogram bucket index out of range")?;
                let c = pair[1].as_u64().ok_or("histogram bucket count invalid")?;
                Ok::<_, String>((b as u8, c))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HistogramRecord {
            name: value
                .get("name")
                .and_then(Value::as_str)
                .ok_or("histogram field 'name' missing or not a string")?
                .to_owned(),
            count: u64_field("count")?,
            sum: u64_field("sum")?,
            max: u64_field("max")?,
            p50: u64_field("p50")?,
            p95: u64_field("p95")?,
            p99: u64_field("p99")?,
            buckets,
        })
    }
}

impl JsonRecord for HistogramRecord {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let mut buckets = String::from("[");
        for (i, (b, c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "[{b},{c}]");
        }
        buckets.push(']');
        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "histogram")
            .field_str("name", &self.name)
            .field_u64("count", self.count)
            .field_u64("sum", self.sum)
            .field_u64("max", self.max)
            .field_u64("p50", self.p50)
            .field_u64("p95", self.p95)
            .field_u64("p99", self.p99)
            .field_raw("buckets", &buckets);
        obj.finish();
    }
}

/// Allocation-free hot-path instruments for one run.
///
/// Structure-of-arrays counters indexed by physical channel and by
/// VC class, a latency histogram fed at ejection, and accumulated
/// nanoseconds per engine phase (see [`PHASE_NAMES`]). The engine holds
/// this behind an `Option` so the disabled path stays one branch per
/// event site.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    /// Flit traversals per physical channel.
    pub channel_flits: Vec<u64>,
    /// Requester-cycles a channel's winners left blocked (a routed head
    /// requested the channel but was not granted this cycle).
    pub channel_blocked: Vec<u64>,
    /// VC-allocation failures charged to each candidate channel (a head
    /// had routing candidates but every admissible VC was taken).
    pub channel_alloc_fail: Vec<u64>,
    /// Flit traversals per VC class.
    pub class_flits: Vec<u64>,
    /// Blocked requester-cycles per VC class.
    pub class_blocked: Vec<u64>,
    /// VC-allocation failures per VC class.
    pub class_alloc_fail: Vec<u64>,
    /// End-to-end message latency, fed when a tail flit ejects.
    pub latency: Pow2Histogram,
    /// Accumulated wall-clock nanoseconds per engine phase, indexed by the
    /// `PHASE_*` consts.
    pub phase_nanos: [u64; 5],
    /// Cycles the registry has observed.
    pub cycles: u64,
}

impl MetricsRegistry {
    /// A zeroed registry for `num_channels` physical channels and
    /// `num_classes` VC classes.
    pub fn new(num_channels: usize, num_classes: usize) -> Self {
        MetricsRegistry {
            channel_flits: vec![0; num_channels],
            channel_blocked: vec![0; num_channels],
            channel_alloc_fail: vec![0; num_channels],
            class_flits: vec![0; num_classes],
            class_blocked: vec![0; num_classes],
            class_alloc_fail: vec![0; num_classes],
            latency: Pow2Histogram::new(),
            phase_nanos: [0; 5],
            cycles: 0,
        }
    }

    /// One flit crossed `channel` on VC class `class`.
    #[inline]
    pub fn record_traversal(&mut self, channel: usize, class: usize) {
        self.channel_flits[channel] += 1;
        self.class_flits[class] += 1;
    }

    /// A routed head requested `channel` (VC class `class`) this cycle and
    /// was not granted.
    #[inline]
    pub fn record_blocked(&mut self, channel: usize, class: usize) {
        self.channel_blocked[channel] += 1;
        self.class_blocked[class] += 1;
    }

    /// A head considered `channel` (VC class `class`) and found every
    /// admissible VC taken.
    #[inline]
    pub fn record_alloc_failure(&mut self, channel: usize, class: usize) {
        self.channel_alloc_fail[channel] += 1;
        self.class_alloc_fail[class] += 1;
    }

    /// A message was delivered with end-to-end `latency` cycles.
    #[inline]
    pub fn record_latency(&mut self, latency: u64) {
        self.latency.record(latency);
    }

    /// The profiled engine phases as [`PhaseRecord`]s (cycles attributed
    /// in full to each phase — they all run every cycle).
    pub fn phase_records(&self) -> Vec<PhaseRecord> {
        PHASE_NAMES
            .iter()
            .zip(self.phase_nanos.iter())
            .map(|(name, &nanos)| PhaseRecord {
                name: (*name).to_owned(),
                wall_seconds: nanos as f64 / 1e9,
                cycles: self.cycles,
            })
            .collect()
    }

    /// Renders the registry into the serializable per-run report.
    /// `dims`/`dirs` describe the node grid so the report (and the heatmap
    /// derived from it) is self-contained.
    pub fn report(&self, run_id: &str, topology: &str, dims: &[u64], dirs: u64) -> MetricsReport {
        let peak = self.channel_flits.iter().copied().max().unwrap_or(0);
        let denom = self.cycles as f64;
        let total: u64 = self.channel_flits.iter().sum();
        let channels = self.channel_flits.len() as f64;
        MetricsReport {
            run_id: run_id.to_owned(),
            topology: topology.to_owned(),
            dims: dims.to_vec(),
            dirs,
            cycles: self.cycles,
            mean_channel_utilization: total as f64 / (channels * denom),
            peak_channel_utilization: peak as f64 / denom,
            class_flits: self.class_flits.clone(),
            class_blocked: self.class_blocked.clone(),
            class_alloc_fail: self.class_alloc_fail.clone(),
            channel_flits: self.channel_flits.clone(),
            channel_blocked: self.channel_blocked.clone(),
            channel_alloc_fail: self.channel_alloc_fail.clone(),
            latency: self.latency.summarize("latency"),
            phases: self.phase_records(),
        }
    }
}

/// The per-run metrics summary written as `<run_id>.metrics.json`
/// (`{"type":"metrics"}`): everything the registry counted, plus enough
/// topology shape (`dims`, `dirs`) for downstream tools to map channel
/// indices back onto the node grid without the original config.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// The run this report belongs to.
    pub run_id: String,
    /// Topology label in the `--topo` grammar (e.g. `torus:16x16`).
    pub topology: String,
    /// Node-grid radices, dimension 0 (fastest-varying) first.
    pub dims: Vec<u64>,
    /// Outgoing physical channels per node; channel `c` belongs to node
    /// `c / dirs`, direction `c % dirs`.
    pub dirs: u64,
    /// Cycles covered by the counters.
    pub cycles: u64,
    /// Mean flits per channel per cycle (NaN when no cycles ran).
    pub mean_channel_utilization: f64,
    /// The hottest channel's flits per cycle (NaN when no cycles ran).
    pub peak_channel_utilization: f64,
    /// Flit traversals per VC class.
    pub class_flits: Vec<u64>,
    /// Blocked requester-cycles per VC class.
    pub class_blocked: Vec<u64>,
    /// VC-allocation failures per VC class.
    pub class_alloc_fail: Vec<u64>,
    /// Flit traversals per physical channel.
    pub channel_flits: Vec<u64>,
    /// Blocked requester-cycles per physical channel.
    pub channel_blocked: Vec<u64>,
    /// VC-allocation failures per physical channel.
    pub channel_alloc_fail: Vec<u64>,
    /// End-to-end latency distribution.
    pub latency: HistogramRecord,
    /// Profiled engine phases (and, when the experiment layer adds them,
    /// its own warmup/measure/gap/drain spans).
    pub phases: Vec<PhaseRecord>,
}

/// Writes a float that survives a JSON round-trip even when non-finite:
/// JSON numbers cannot express inf/NaN, so those become the strings
/// `"inf"`, `"-inf"`, `"nan"` (the run-journal convention).
fn field_f64_exact(obj: &mut JsonObject<'_>, key: &str, value: f64) {
    if value.is_finite() {
        obj.field_f64(key, value);
    } else if value.is_nan() {
        obj.field_str(key, "nan");
    } else if value > 0.0 {
        obj.field_str(key, "inf");
    } else {
        obj.field_str(key, "-inf");
    }
}

/// Inverse of [`field_f64_exact`].
fn get_f64_exact(value: &Value, key: &str) -> Result<f64, String> {
    let v = value
        .get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    if let Some(n) = v.as_f64() {
        return Ok(n);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some("nan") => Ok(f64::NAN),
        _ => Err(format!("field '{key}' is not a number")),
    }
}

fn get_u64_array(value: &Value, key: &str) -> Result<Vec<u64>, String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("field '{key}' missing or not an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("field '{key}' holds a non-u64 element"))
        })
        .collect()
}

impl MetricsReport {
    /// Reads a report back from `path`.
    ///
    /// # Errors
    ///
    /// Reports filesystem errors and malformed or incomplete JSON.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let value = crate::json::from_str(&text).map_err(|e| e.to_string())?;
        Self::from_json(&value)
    }

    /// Writes the report as single-line JSON at `path`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        crate::atomic_write(path, text)
    }

    /// Reconstructs a report from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field. Float fields follow the
    /// `"inf"`/`"-inf"`/`"nan"` non-finite convention bit-exactly.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        if value.get("type").and_then(Value::as_str) != Some("metrics") {
            return Err("record is not of type 'metrics'".to_owned());
        }
        let str_field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("metrics field '{name}' missing or not a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("metrics field '{name}' missing or not a u64"))
        };
        let phases = value
            .get("phases")
            .and_then(Value::as_array)
            .ok_or("metrics field 'phases' missing or not an array")?
            .iter()
            .map(|p| {
                Ok(PhaseRecord {
                    name: p
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("phase missing 'name'")?
                        .to_owned(),
                    wall_seconds: p
                        .get("wall_seconds")
                        .and_then(Value::as_f64)
                        .ok_or("phase missing 'wall_seconds'")?,
                    cycles: p
                        .get("cycles")
                        .and_then(Value::as_u64)
                        .ok_or("phase missing 'cycles'")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MetricsReport {
            run_id: str_field("run_id")?,
            topology: str_field("topology")?,
            dims: get_u64_array(value, "dims")?,
            dirs: u64_field("dirs")?,
            cycles: u64_field("cycles")?,
            mean_channel_utilization: get_f64_exact(value, "mean_channel_utilization")?,
            peak_channel_utilization: get_f64_exact(value, "peak_channel_utilization")?,
            class_flits: get_u64_array(value, "class_flits")?,
            class_blocked: get_u64_array(value, "class_blocked")?,
            class_alloc_fail: get_u64_array(value, "class_alloc_fail")?,
            channel_flits: get_u64_array(value, "channel_flits")?,
            channel_blocked: get_u64_array(value, "channel_blocked")?,
            channel_alloc_fail: get_u64_array(value, "channel_alloc_fail")?,
            latency: HistogramRecord::from_json(
                value
                    .get("latency")
                    .ok_or("metrics field 'latency' missing")?,
            )?,
            phases,
        })
    }
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        // phase_nanos is wall-clock noise; equality means "counted the
        // same simulation", which is what the determinism tests compare.
        self.channel_flits == other.channel_flits
            && self.channel_blocked == other.channel_blocked
            && self.channel_alloc_fail == other.channel_alloc_fail
            && self.class_flits == other.class_flits
            && self.class_blocked == other.class_blocked
            && self.class_alloc_fail == other.class_alloc_fail
            && self.latency == other.latency
            && self.cycles == other.cycles
    }
}

impl JsonRecord for MetricsReport {
    fn write_json(&self, out: &mut String) {
        let mut phases_json = String::from("[");
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                phases_json.push(',');
            }
            let mut obj = JsonObject::begin(&mut phases_json);
            obj.field_str("name", &phase.name)
                .field_f64("wall_seconds", phase.wall_seconds)
                .field_u64("cycles", phase.cycles);
            obj.finish();
        }
        phases_json.push(']');
        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "metrics")
            .field_str("run_id", &self.run_id)
            .field_str("topology", &self.topology)
            .field_u64_array("dims", &self.dims)
            .field_u64("dirs", self.dirs)
            .field_u64("cycles", self.cycles);
        field_f64_exact(
            &mut obj,
            "mean_channel_utilization",
            self.mean_channel_utilization,
        );
        field_f64_exact(
            &mut obj,
            "peak_channel_utilization",
            self.peak_channel_utilization,
        );
        obj.field_u64_array("class_flits", &self.class_flits)
            .field_u64_array("class_blocked", &self.class_blocked)
            .field_u64_array("class_alloc_fail", &self.class_alloc_fail)
            .field_u64_array("channel_flits", &self.channel_flits)
            .field_u64_array("channel_blocked", &self.channel_blocked)
            .field_u64_array("channel_alloc_fail", &self.channel_alloc_fail)
            .field_raw("latency", &self.latency.to_json())
            .field_raw("phases", &phases_json);
        obj.finish();
    }
}

/// Why a waiting worm cannot advance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// The head is pending routing: every admissible VC on the channel is
    /// owned by the holder (among others).
    Vc,
    /// The head holds a VC but has no credits: the downstream buffer is
    /// occupied by the holder's flits.
    Credit,
}

impl WaitKind {
    fn tag(self) -> &'static str {
        match self {
            WaitKind::Vc => "vc",
            WaitKind::Credit => "credit",
        }
    }

    fn from_tag(tag: &str) -> Result<Self, String> {
        match tag {
            "vc" => Ok(WaitKind::Vc),
            "credit" => Ok(WaitKind::Credit),
            other => Err(format!("unknown wait kind '{other}'")),
        }
    }
}

/// One edge of the wait-for graph: message `msg`, stalled at `node`, waits
/// for a resource on `channel` that message `holder` occupies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitForEdge {
    /// The waiting message.
    pub msg: u64,
    /// The node its head is stalled at.
    pub node: u64,
    /// The physical channel mediating the wait.
    pub channel: u64,
    /// The message occupying the contended resource.
    pub holder: u64,
    /// Which resource is contended.
    pub kind: WaitKind,
}

/// The worm→channel wait-for graph at a watchdog trigger, written as one
/// `{"type":"wait_for"}` JSONL record so `Deadlocked`/`LiveLocked`
/// outcomes carry forensic evidence.
///
/// [`detect_cycle`](Self::detect_cycle) closes the loop: a cycle of
/// messages each holding what the next one waits for is a concrete channel
/// cycle — a real deadlock — while its absence means the stall is
/// congestion or starvation.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct WaitForSnapshot {
    /// The cycle the snapshot was taken at.
    pub cycle: u64,
    /// What tripped (`deadlock` or `livelock`).
    pub reason: String,
    /// Live messages in the network at the snapshot.
    pub live_messages: u64,
    /// Flits in flight at the snapshot.
    pub flits_in_flight: u64,
    /// The wait-for edges, in deterministic (input-VC) order.
    pub edges: Vec<WaitForEdge>,
    /// Whether [`detect_cycle`](Self::detect_cycle) found a cycle.
    pub cycle_found: bool,
    /// The messages along one detected cycle (empty if none).
    pub cycle_messages: Vec<u64>,
    /// The channels along that cycle, `cycle_channels[i]` being what
    /// `cycle_messages[i]` waits on (held by the next message).
    pub cycle_channels: Vec<u64>,
}

impl WaitForSnapshot {
    /// Runs cycle detection over the edges and fills
    /// [`cycle_found`](Self::cycle_found) /
    /// [`cycle_messages`](Self::cycle_messages) /
    /// [`cycle_channels`](Self::cycle_channels) with the first cycle found
    /// (deterministic: edges are explored in input order).
    pub fn detect_cycle(&mut self) {
        self.cycle_found = false;
        self.cycle_messages.clear();
        self.cycle_channels.clear();
        // msg -> outgoing (holder, channel) edges, input order preserved.
        let mut adjacency: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for e in &self.edges {
            adjacency
                .entry(e.msg)
                .or_default()
                .push((e.holder, e.channel));
        }
        // Iterative DFS with tri-color marking; the explicit stack keeps
        // the path so a back edge yields the whole cycle.
        let mut color: std::collections::BTreeMap<u64, u8> = std::collections::BTreeMap::new();
        let roots: Vec<u64> = adjacency.keys().copied().collect();
        for root in roots {
            if color.get(&root).copied().unwrap_or(0) != 0 {
                continue;
            }
            // (msg, channel-we-arrived-over, next-edge-index)
            let mut stack: Vec<(u64, u64, usize)> = vec![(root, 0, 0)];
            color.insert(root, 1);
            while let Some(&mut (msg, _, ref mut next)) = stack.last_mut() {
                let edges = adjacency.get(&msg).map(Vec::as_slice).unwrap_or(&[]);
                if *next >= edges.len() {
                    color.insert(msg, 2);
                    stack.pop();
                    continue;
                }
                let (holder, channel) = edges[*next];
                *next += 1;
                match color.get(&holder).copied().unwrap_or(0) {
                    0 => {
                        color.insert(holder, 1);
                        stack.push((holder, channel, 0));
                    }
                    1 => {
                        // Back edge: the cycle is `holder ... msg -> holder`.
                        let start = stack
                            .iter()
                            .position(|&(m, _, _)| m == holder)
                            .expect("gray node is on the stack");
                        for &(m, ch, _) in &stack[start + 1..] {
                            self.cycle_messages.push(m);
                            self.cycle_channels.push(ch);
                        }
                        self.cycle_messages.push(holder);
                        self.cycle_channels.push(channel);
                        // Rotate so the cycle starts at `holder` and each
                        // channel sits next to the message waiting on it.
                        self.cycle_messages.rotate_right(1);
                        self.cycle_found = true;
                        return;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Reconstructs a snapshot from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        if value.get("type").and_then(Value::as_str) != Some("wait_for") {
            return Err("record is not of type 'wait_for'".to_owned());
        }
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("wait_for field '{name}' missing or not a u64"))
        };
        let edges = value
            .get("edges")
            .and_then(Value::as_array)
            .ok_or("wait_for field 'edges' missing or not an array")?
            .iter()
            .map(|e| {
                let part = |name: &str| -> Result<u64, String> {
                    e.get(name)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("wait_for edge field '{name}' invalid"))
                };
                Ok::<_, String>(WaitForEdge {
                    msg: part("msg")?,
                    node: part("node")?,
                    channel: part("channel")?,
                    holder: part("holder")?,
                    kind: WaitKind::from_tag(
                        e.get("kind")
                            .and_then(Value::as_str)
                            .ok_or("wait_for edge field 'kind' invalid")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WaitForSnapshot {
            cycle: u64_field("cycle")?,
            reason: value
                .get("reason")
                .and_then(Value::as_str)
                .ok_or("wait_for field 'reason' missing or not a string")?
                .to_owned(),
            live_messages: u64_field("live_messages")?,
            flits_in_flight: u64_field("flits_in_flight")?,
            edges,
            cycle_found: value
                .get("cycle_found")
                .and_then(Value::as_bool)
                .ok_or("wait_for field 'cycle_found' missing or not a bool")?,
            cycle_messages: get_u64_array(value, "cycle_messages")?,
            cycle_channels: get_u64_array(value, "cycle_channels")?,
        })
    }
}

impl JsonRecord for WaitForSnapshot {
    fn write_json(&self, out: &mut String) {
        let mut edges_json = String::from("[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                edges_json.push(',');
            }
            let mut obj = JsonObject::begin(&mut edges_json);
            obj.field_u64("msg", e.msg)
                .field_u64("node", e.node)
                .field_u64("channel", e.channel)
                .field_u64("holder", e.holder)
                .field_str("kind", e.kind.tag());
            obj.finish();
        }
        edges_json.push(']');
        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "wait_for")
            .field_u64("cycle", self.cycle)
            .field_str("reason", &self.reason)
            .field_u64("live_messages", self.live_messages)
            .field_u64("flits_in_flight", self.flits_in_flight)
            .field_bool("cycle_found", self.cycle_found)
            .field_u64_array("cycle_messages", &self.cycle_messages)
            .field_u64_array("cycle_channels", &self.cycle_channels)
            .field_raw("edges", &edges_json);
        obj.finish();
    }
}

/// Renders per-channel flit counts into a node-grid utilization CSV.
///
/// Each cell is a node's mean outgoing-channel utilization,
/// `sum(channel_flits[node*dirs ..][..dirs]) / (dirs × cycles)`. For 2D
/// grids the CSV is the grid itself — one row per dimension-1 coordinate
/// (north/south axis), one column per dimension-0 coordinate, node
/// `(x, y)` at row `y`, column `x`. Other dimensionalities fall back to a
/// `node,utilization` long format with a header row.
pub fn heatmap_csv(dims: &[u64], dirs: u64, channel_flits: &[u64], cycles: u64) -> String {
    use std::fmt::Write as _;
    let nodes = channel_flits.len() as u64 / dirs.max(1);
    let util = |node: u64| -> f64 {
        let base = (node * dirs) as usize;
        let sum: u64 = channel_flits[base..base + dirs as usize].iter().sum();
        sum as f64 / (dirs.max(1) * cycles.max(1)) as f64
    };
    let mut out = String::new();
    if let [w, h] = dims {
        for y in 0..*h {
            for x in 0..*w {
                if x > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{:.6}", util(y * w + x));
            }
            out.push('\n');
        }
    } else {
        out.push_str("node,utilization\n");
        for node in 0..nodes {
            let _ = writeln!(out, "{node},{:.6}", util(node));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Pow2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1125);
        assert_eq!(h.max(), 1000);
        assert_eq!(Pow2Histogram::bucket_of(0), 0);
        assert_eq!(Pow2Histogram::bucket_of(1), 1);
        assert_eq!(Pow2Histogram::bucket_of(2), 2);
        assert_eq!(Pow2Histogram::bucket_of(3), 2);
        assert_eq!(Pow2Histogram::bucket_of(4), 3);
        assert_eq!(Pow2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Pow2Histogram::bucket_upper_bound(64), u64::MAX);
        // Rank 5 of 9 lands in the [4,7] bucket.
        assert_eq!(h.quantile(0.5), 7);
        // The top quantiles clamp to the observed maximum.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_record_round_trips() {
        let mut h = Pow2Histogram::new();
        for v in [3u64, 9, 9, 200] {
            h.record(v);
        }
        let rec = h.summarize("latency");
        let parsed = crate::json::from_str(&rec.to_json()).unwrap();
        assert_eq!(HistogramRecord::from_json(&parsed).unwrap(), rec);
        // Wrong type tag is rejected.
        let v = crate::json::from_str("{\"type\":\"metrics\"}").unwrap();
        assert!(HistogramRecord::from_json(&v).is_err());
    }

    #[test]
    fn registry_counts_and_reports() {
        let mut reg = MetricsRegistry::new(8, 2);
        reg.record_traversal(3, 1);
        reg.record_traversal(3, 1);
        reg.record_blocked(2, 0);
        reg.record_alloc_failure(7, 1);
        reg.record_latency(40);
        reg.cycles = 100;
        reg.phase_nanos[PHASE_ROUTE] = 2_000_000_000;
        let report = reg.report("run-1", "torus:4x2", &[4, 2], 4);
        assert_eq!(report.channel_flits[3], 2);
        assert_eq!(report.class_flits, vec![0, 2]);
        assert_eq!(report.class_blocked, vec![1, 0]);
        assert_eq!(report.channel_alloc_fail[7], 1);
        assert_eq!(report.latency.count, 1);
        assert!((report.peak_channel_utilization - 0.02).abs() < 1e-12);
        let route = report.phases.iter().find(|p| p.name == "route").unwrap();
        assert!((route.wall_seconds - 2.0).abs() < 1e-12);
        assert_eq!(route.cycles, 100);
    }

    #[test]
    fn metrics_report_round_trips_including_non_finite() {
        let mut reg = MetricsRegistry::new(4, 2);
        reg.record_traversal(0, 0);
        // cycles stays 0: utilization divides by zero, producing inf/NaN,
        // which must still round-trip bit-exactly.
        let report = reg.report("r", "torus:2x2", &[2, 2], 1);
        assert!(report.peak_channel_utilization.is_infinite());
        assert!(report.mean_channel_utilization.is_infinite());
        let parsed = crate::json::from_str(&report.to_json()).unwrap();
        let back = MetricsReport::from_json(&parsed).unwrap();
        assert_eq!(
            back.peak_channel_utilization.to_bits(),
            report.peak_channel_utilization.to_bits()
        );
        let nan = MetricsReport {
            mean_channel_utilization: f64::NAN,
            peak_channel_utilization: f64::NEG_INFINITY,
            ..report
        };
        let parsed = crate::json::from_str(&nan.to_json()).unwrap();
        let back = MetricsReport::from_json(&parsed).unwrap();
        assert!(back.mean_channel_utilization.is_nan());
        assert_eq!(back.peak_channel_utilization, f64::NEG_INFINITY);
    }

    #[test]
    fn metrics_report_file_round_trip() {
        let dir = std::env::temp_dir().join("wormsim-observe-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.metrics.json");
        let mut reg = MetricsRegistry::new(4, 2);
        reg.cycles = 10;
        reg.record_traversal(1, 0);
        let report = reg.report("r", "torus:2x2", &[2, 2], 1);
        report.write_to(&path).unwrap();
        assert_eq!(MetricsReport::read_from(&path).unwrap(), report);
        let _ = std::fs::remove_file(&path);
    }

    fn edge(msg: u64, channel: u64, holder: u64) -> WaitForEdge {
        WaitForEdge {
            msg,
            node: 0,
            channel,
            holder,
            kind: WaitKind::Vc,
        }
    }

    #[test]
    fn wait_for_cycle_detection_finds_a_cycle() {
        let mut snap = WaitForSnapshot {
            cycle: 500,
            reason: "deadlock".to_owned(),
            live_messages: 3,
            flits_in_flight: 12,
            // 1 -> 2 -> 3 -> 1, plus a dangling wait 4 -> 1.
            edges: vec![
                edge(4, 9, 1),
                edge(1, 10, 2),
                edge(2, 11, 3),
                edge(3, 12, 1),
            ],
            ..WaitForSnapshot::default()
        };
        snap.detect_cycle();
        assert!(snap.cycle_found);
        assert_eq!(snap.cycle_messages.len(), 3);
        assert_eq!(snap.cycle_channels.len(), 3);
        // Every cycle member waits on its paired channel for the next
        // member, and the set is exactly {1, 2, 3}.
        let mut members = snap.cycle_messages.clone();
        members.sort_unstable();
        assert_eq!(members, vec![1, 2, 3]);
        for (m, ch) in snap.cycle_messages.iter().zip(&snap.cycle_channels) {
            assert!(snap.edges.iter().any(|e| e.msg == *m
                && e.channel == *ch
                && snap.cycle_messages.contains(&e.holder)));
        }
    }

    #[test]
    fn wait_for_cycle_detection_reports_absence() {
        // A chain with no back edge: congestion, not deadlock.
        let mut snap = WaitForSnapshot {
            edges: vec![edge(1, 10, 2), edge(2, 11, 3)],
            ..WaitForSnapshot::default()
        };
        snap.detect_cycle();
        assert!(!snap.cycle_found);
        assert!(snap.cycle_messages.is_empty());
        // Self-wait (a worm behind its own flits) is a 1-cycle.
        let mut snap = WaitForSnapshot {
            edges: vec![edge(5, 3, 5)],
            ..WaitForSnapshot::default()
        };
        snap.detect_cycle();
        assert!(snap.cycle_found);
        assert_eq!(snap.cycle_messages, vec![5]);
        assert_eq!(snap.cycle_channels, vec![3]);
    }

    #[test]
    fn wait_for_snapshot_round_trips() {
        let mut snap = WaitForSnapshot {
            cycle: 42,
            reason: "livelock".to_owned(),
            live_messages: 2,
            flits_in_flight: 7,
            edges: vec![
                WaitForEdge {
                    msg: 1,
                    node: 5,
                    channel: 20,
                    holder: 2,
                    kind: WaitKind::Credit,
                },
                edge(2, 21, 1),
            ],
            ..WaitForSnapshot::default()
        };
        snap.detect_cycle();
        assert!(snap.cycle_found);
        let parsed = crate::json::from_str(&snap.to_json()).unwrap();
        assert_eq!(WaitForSnapshot::from_json(&parsed).unwrap(), snap);
        let v = crate::json::from_str("{\"type\":\"trace\"}").unwrap();
        assert!(WaitForSnapshot::from_json(&v).is_err());
    }

    #[test]
    fn heatmap_renders_2d_grid_and_long_fallback() {
        // 3x2 grid, 1 dir per node: node = x + y*3.
        let flits = vec![0, 10, 20, 30, 40, 50];
        let csv = heatmap_csv(&[3, 2], 1, &flits, 10);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], "0.000000,1.000000,2.000000");
        assert_eq!(rows[1], "3.000000,4.000000,5.000000");
        // 1D falls back to the long format.
        let csv = heatmap_csv(&[4], 2, &[2, 0, 4, 0, 0, 0, 8, 0], 2);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows[0], "node,utilization");
        assert_eq!(rows[1], "0,0.500000");
        assert_eq!(rows[3], "2,0.000000");
    }
}

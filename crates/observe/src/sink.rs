//! Pluggable destinations for observability events.

use crate::JsonRecord;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for a stream of events of type `E`.
///
/// Implementations must never block the simulation on their own health:
/// [`record`](Self::record) is infallible, and sinks that can fail (I/O)
/// count failures in [`dropped_events`](Self::dropped_events) instead of
/// propagating them into the hot path.
pub trait EventSink<E>: Send {
    /// Accepts one event.
    fn record(&mut self, event: &E);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Events this sink has discarded (ring eviction, failed writes).
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Discards everything. The explicit spelling of "observability off" for
/// call sites that require a sink value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl<E> EventSink<E> for NullSink {
    fn record(&mut self, _event: &E) {}
}

/// A bounded in-memory sink keeping the most recent `capacity` events.
///
/// This replaces the old grow-forever trace buffer: when full, the oldest
/// event is evicted and counted in [`dropped_events`](Self::dropped_events),
/// so a saturated multi-hour run holds a window of recent history instead
/// of all of it.
#[derive(Clone, Debug)]
pub struct RingSink<E> {
    buffer: VecDeque<E>,
    capacity: usize,
    dropped: u64,
}

impl<E> RingSink<E> {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buffer: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.buffer.iter()
    }

    /// Takes the held events (oldest first), leaving the ring empty. The
    /// dropped-event counter is preserved.
    pub fn drain(&mut self) -> Vec<E> {
        self.buffer.drain(..).collect()
    }
}

impl<E: Clone + Send> EventSink<E> for RingSink<E> {
    fn record(&mut self, event: &E) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
            self.dropped += 1;
        }
        self.buffer.push_back(event.clone());
    }

    fn dropped_events(&self) -> u64 {
        self.dropped
    }
}

/// Streams events as line-delimited JSON (one [`JsonRecord`] object per
/// line) into any writer.
///
/// Encoding reuses a single line buffer, so steady-state recording does not
/// allocate. Write errors do not panic and do not stop the simulation; the
/// failed lines are counted as dropped.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    line: String,
    written: u64,
    failed: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`, buffered.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            line: String::with_capacity(256),
            written: 0,
            failed: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<E: JsonRecord, W: Write + Send> EventSink<E> for JsonlSink<W> {
    fn record(&mut self, event: &E) {
        self.line.clear();
        event.write_json(&mut self.line);
        self.line.push('\n');
        if self.out.write_all(self.line.as_bytes()).is_ok() {
            self.written += 1;
        } else {
            self.failed += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn dropped_events(&self) -> u64 {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl JsonRecord for u64 {
        fn write_json(&self, out: &mut String) {
            let mut obj = crate::JsonObject::begin(out);
            obj.field_u64("v", *self);
            obj.finish();
        }
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        EventSink::record(&mut sink, &123u64);
        assert_eq!(EventSink::<u64>::dropped_events(&sink), 0);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut ring: RingSink<u64> = RingSink::new(3);
        assert!(ring.is_empty());
        for i in 0..10u64 {
            ring.record(&i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped_events(), 7);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(ring.drain(), vec![7, 8, 9]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped_events(), 7, "drain preserves the counter");
    }

    #[test]
    fn ring_capacity_zero_is_clamped() {
        let ring: RingSink<u64> = RingSink::new(0);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let mut sink: JsonlSink<Vec<u8>> = JsonlSink::new(Vec::new());
        for i in 0..5u64 {
            sink.record(&i);
        }
        assert_eq!(sink.lines_written(), 5);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 5);
        let values: Result<Vec<_>, _> = serde_json::StreamDeserializer::new(&text).collect();
        let values = values.expect("every line is valid JSON");
        assert_eq!(values[4].get("v").unwrap().as_u64(), Some(4));
    }
}

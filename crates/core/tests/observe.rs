//! End-to-end test of experiment observability: run with an
//! [`ObserveConfig`], then reconstruct the run from its manifest, sample
//! stream, and trace stream alone.

use wormsim::observe::json;
use wormsim::observe::MetricsReport;
use wormsim::topology::Topology;
use wormsim::{AlgorithmKind, Experiment, ObserveConfig, RunManifest, Sample, TrafficConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wormsim-observe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn observed_run_writes_manifest_samples_and_trace() {
    let dir = temp_dir("full");
    let result = Experiment::new(
        Topology::torus(&[8, 8]),
        AlgorithmKind::NegativeHopBonusCards,
    )
    .traffic(TrafficConfig::Uniform)
    .offered_load(0.3)
    .quick()
    .seed(11)
    .observe(ObserveConfig {
        out_dir: Some(dir.clone()),
        trace_dir: Some(dir.clone()),
        sample_every: 200,
        prefix: "itest".to_owned(),
        metrics: true,
    })
    .run()
    .unwrap();
    assert!(result.is_converged());
    assert!(result.wall_seconds > 0.0);
    assert!(result.cycles_per_sec > 0.0);

    let run_id = "itest-nbc-uniform-l0.30-s11";
    let manifest = RunManifest::read_from(dir.join(format!("{run_id}.manifest.json"))).unwrap();
    assert_eq!(manifest.run_id, run_id);
    assert_eq!(manifest.algorithm, "nbc");
    assert_eq!(manifest.traffic, "uniform");
    assert_eq!(manifest.seed, 11);
    assert!(manifest.converged);
    assert!(!manifest.deadlocked);
    assert_eq!(manifest.outcome, "completed");
    assert_eq!(result.dropped_events, 0, "unbounded sinks never shed");
    assert_eq!(manifest.config_hash.len(), 16);
    assert!(
        manifest.cycles >= result.cycles_simulated,
        "manifest covers the drain too"
    );
    assert!(manifest.cycles_per_sec > 0.0);
    assert!(manifest.flits_per_sec > 0.0);
    assert_eq!(manifest.samples, result.samples as u64);
    let phase_names: Vec<&str> = manifest.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(phase_names.contains(&"warmup"));
    assert!(phase_names.contains(&"measure"));
    assert!(phase_names.contains(&"drain"));
    let warmup = manifest.phases.iter().find(|p| p.name == "warmup").unwrap();
    assert_eq!(warmup.cycles, manifest.warmup_cycles);

    // The sample stream parses line by line and tiles the run.
    let text = std::fs::read_to_string(dir.join(format!("{run_id}.samples.jsonl"))).unwrap();
    let mut samples = Vec::new();
    for value in json::StreamDeserializer::new(&text) {
        samples.push(Sample::from_json(&value.unwrap()).unwrap());
    }
    assert!(
        samples.len() > 5,
        "expected a real time series, got {}",
        samples.len()
    );
    assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
    assert_eq!(
        samples.last().unwrap().flits_in_flight,
        0,
        "the drain phase empties the network"
    );
    // Per-channel load is tracked for observed runs: 8x8 torus, 4 channels
    // per node.
    let channels = samples
        .iter()
        .find(|s| !s.channel_flits.is_empty())
        .unwrap();
    assert_eq!(channels.channel_flits.len(), 8 * 8 * 4);
    let hops: u64 = samples.iter().map(|s| s.flit_hops).sum();
    assert!(hops > 0);
    // Latency-vs-cycle curve is reconstructible.
    assert!(samples.iter().any(|s| s.mean_latency().is_some()));

    // The trace stream exists and is valid JSONL.
    let trace = std::fs::read_to_string(dir.join(format!("{run_id}.trace.jsonl"))).unwrap();
    let mut events = 0usize;
    for value in json::StreamDeserializer::new(&trace) {
        let value = value.unwrap();
        assert_eq!(
            value.get("type").and_then(json::Value::as_str),
            Some("trace")
        );
        events += 1;
    }
    assert!(
        events as u64 >= result.messages_measured,
        "trace covers every message"
    );
    assert_eq!(manifest.dropped_events, 0);

    // Deep telemetry: metrics report plus channel-utilization heatmap.
    let report = MetricsReport::read_from(dir.join(format!("{run_id}.metrics.json"))).unwrap();
    assert_eq!(report.run_id, run_id);
    assert_eq!(report.channel_flits.len(), 8 * 8 * 4);
    assert!(report.latency.count >= result.messages_measured);
    assert!(report.latency.p50 <= report.latency.p99);
    assert!(report.mean_channel_utilization > 0.0);
    let report_phases: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(report_phases.contains(&"route"));
    assert!(report_phases.contains(&"measure"));
    let heatmap = std::fs::read_to_string(dir.join(format!("{run_id}.heatmap.csv"))).unwrap();
    assert_eq!(heatmap.lines().count(), 8, "one row per y coordinate");
    assert_eq!(heatmap.lines().next().unwrap().split(',').count(), 8);
    assert!(!dir.join(format!("{run_id}.waitfor.jsonl")).exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observe_does_not_change_results() {
    let dir = temp_dir("purity");
    let base = || {
        Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
            .offered_load(0.2)
            .quick()
            .seed(3)
    };
    let plain = base().run().unwrap();
    let observed = base()
        .observe(ObserveConfig {
            out_dir: Some(dir.clone()),
            sample_every: 500,
            prefix: "purity".to_owned(),
            ..ObserveConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(plain.latency.mean(), observed.latency.mean());
    assert_eq!(plain.messages_measured, observed.messages_measured);
    assert_eq!(plain.achieved_utilization, observed.achieved_utilization);
    assert_eq!(plain.cycles_simulated, observed.cycles_simulated);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_observe_config_is_ignored() {
    let result = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::Ecube)
        .offered_load(0.1)
        .quick()
        .seed(1)
        .observe(ObserveConfig::default())
        .run()
        .unwrap();
    assert!(result.is_converged());
}

#[test]
fn unwritable_out_dir_reports_io_error() {
    let err = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
        .offered_load(0.1)
        .quick()
        .observe(ObserveConfig {
            out_dir: Some("/proc/definitely/not/writable".into()),
            ..ObserveConfig::default()
        })
        .run()
        .unwrap_err();
    assert!(
        matches!(err, wormsim::ExperimentError::Io { .. }),
        "{err:?}"
    );
}

//! The [`Experiment`] runner: one configuration, one offered load, one
//! converged measurement.

use crate::{MeasurementSchedule, RunOutcome, RunResult};
use std::fmt;
use wormsim_engine::{
    CancelToken, EjectionModel, EngineError, NetworkBuilder, SelectionPolicy, Switching,
};
use wormsim_faults::{FaultPlan, FaultPlanError, FaultTarget};
use wormsim_observe::{
    atomic_write, fnv1a_hex, git_describe, heatmap_csv, JsonRecord, JsonlSink, ObserveConfig,
    PhaseTimings, RunManifest, Stopwatch,
};
use wormsim_routing::AlgorithmKind;
use wormsim_stats::{throughput, ConvergenceController, Histogram, SampleAccumulator};
use wormsim_topology::Topology;
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

/// Errors from configuring or running an experiment.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// The underlying simulator rejected the configuration.
    Engine(EngineError),
    /// The offered load must be in `(0, 1]`: it is a fraction of channel
    /// capacity, and beyond 1 the network is overloaded by construction.
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError};
    /// use wormsim::topology::Topology;
    ///
    /// let error = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    ///     .offered_load(1.2)
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::InvalidLoad { value: 1.2 });
    /// ```
    InvalidLoad {
        /// The rejected value.
        value: f64,
    },
    /// `vc_replicas == 0`: every VC class needs at least one replica, or
    /// the network has no virtual channels at all.
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError};
    /// use wormsim::topology::Topology;
    ///
    /// let error = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    ///     .vc_replicas(0)
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::ZeroVcReplicas);
    /// ```
    ZeroVcReplicas,
    /// `congestion_limit == Some(0)`: a zero limit would refuse every
    /// message at the source; use `None` to disable congestion control.
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError};
    /// use wormsim::topology::Topology;
    ///
    /// let error = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    ///     .congestion_limit(Some(0))
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::ZeroCongestionLimit);
    /// ```
    ZeroCongestionLimit,
    /// The message-length distribution can produce zero-flit messages
    /// (only possible by building a [`MessageLength`] variant by hand —
    /// the constructors reject it).
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError, MessageLength};
    /// use wormsim::topology::Topology;
    ///
    /// let error = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    ///     .message_length(MessageLength::Uniform { min: 0, max: 8 })
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::ZeroLengthMessage);
    /// ```
    ZeroLengthMessage,
    /// The fault plan names a channel or node the topology does not have
    /// (a mesh-boundary channel slot, or a node index out of range, in
    /// which case `direction` is `None`).
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError, FaultPlan};
    /// use wormsim::topology::{Direction, NodeId, Sign, Topology};
    ///
    /// let mut plan = FaultPlan::new();
    /// // Node 0 sits on the mesh boundary: no link leaves it downward.
    /// plan.push_dead_link(NodeId::new(0), Direction::new(0, Sign::Minus));
    /// let error = Experiment::new(Topology::mesh(&[4, 4]), AlgorithmKind::Ecube)
    ///     .faults(plan)
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::FaultOnNonexistentChannel {
    ///     node: NodeId::new(0),
    ///     direction: Some(Direction::new(0, Sign::Minus)),
    /// });
    /// ```
    FaultOnNonexistentChannel {
        /// The node the fault names.
        node: wormsim_topology::NodeId,
        /// The channel direction for link faults; `None` for a node fault
        /// whose index is out of range.
        direction: Option<wormsim_topology::Direction>,
    },
    /// A fault's repair cycle is not strictly after its failure cycle, so
    /// the fault would never be in effect.
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError, Fault, FaultPlan, FaultTarget};
    /// use wormsim::topology::{NodeId, Topology};
    ///
    /// let target = FaultTarget::Node { node: NodeId::new(3) };
    /// let mut plan = FaultPlan::new();
    /// plan.push(Fault { target, fail_at: 10, repair_at: Some(10) });
    /// let error = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    ///     .faults(plan)
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::FaultRepairBeforeFailure {
    ///     target,
    ///     fail_at: 10,
    ///     repair_at: 10,
    /// });
    /// ```
    FaultRepairBeforeFailure {
        /// The offending fault's target.
        target: FaultTarget,
        /// Cycle the fault takes effect.
        fail_at: u64,
        /// The repair cycle that is not after `fail_at`.
        repair_at: u64,
    },
    /// The fault plan statically kills every node: no traffic could ever
    /// be generated or delivered.
    ///
    /// ```
    /// use wormsim::{AlgorithmKind, Experiment, ExperimentError, FaultPlan};
    /// use wormsim::topology::{NodeId, Topology};
    ///
    /// let mut plan = FaultPlan::new();
    /// plan.push_dead_node(NodeId::new(0));
    /// plan.push_dead_node(NodeId::new(1));
    /// let error = Experiment::new(Topology::mesh(&[2]), AlgorithmKind::Ecube)
    ///     .faults(plan)
    ///     .validate()
    ///     .unwrap_err();
    /// assert_eq!(error, ExperimentError::AllNodesFaulted);
    /// ```
    AllNodesFaulted,
    /// The computed injection rate left `(0, 1]` — the topology/message
    /// combination cannot offer this load.
    RateOutOfRange {
        /// The offending per-node per-cycle rate.
        rate: f64,
    },
    /// Observability output could not be created or written (the sample or
    /// trace stream, or the run manifest). Simulation errors never take
    /// this form — only the I/O around them.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Engine(e) => write!(f, "engine: {e}"),
            ExperimentError::InvalidLoad { value } => {
                write!(f, "offered load {value} out of range (0, 1]")
            }
            ExperimentError::ZeroVcReplicas => {
                write!(f, "vc_replicas must be at least 1")
            }
            ExperimentError::ZeroCongestionLimit => {
                write!(
                    f,
                    "congestion limit 0 refuses every message; use None to disable"
                )
            }
            ExperimentError::ZeroLengthMessage => {
                write!(f, "message length distribution allows zero-flit messages")
            }
            ExperimentError::FaultOnNonexistentChannel { node, direction } => match direction {
                Some(direction) => write!(
                    f,
                    "fault plan names nonexistent channel: node {} has no link in direction \
                     {direction}",
                    node.index()
                ),
                None => write!(
                    f,
                    "fault plan names node {} outside the topology",
                    node.index()
                ),
            },
            ExperimentError::FaultRepairBeforeFailure {
                target,
                fail_at,
                repair_at,
            } => write!(
                f,
                "fault on {target} repairs at cycle {repair_at}, not after its failure at \
                 {fail_at}"
            ),
            ExperimentError::AllNodesFaulted => {
                write!(f, "fault plan statically kills every node")
            }
            ExperimentError::RateOutOfRange { rate } => {
                write!(f, "computed injection rate {rate} out of range")
            }
            ExperimentError::Io { message } => {
                write!(f, "observability I/O: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ExperimentError {
    fn from(e: EngineError) -> Self {
        ExperimentError::Engine(e)
    }
}

/// A self-contained simulation experiment: network configuration, offered
/// load, and measurement schedule.
///
/// Offered load is specified as *normalized channel utilization* (the
/// paper's Equation 4); [`run`](Self::run) converts it to a per-node
/// injection rate using the traffic pattern's exact mean distance, then
/// drives the simulator through warm-up and re-seeded sampling periods
/// until the paper's two convergence criteria hold.
///
/// # Example
///
/// ```
/// use wormsim::{Experiment, AlgorithmKind, TrafficConfig};
/// use wormsim::topology::Topology;
///
/// let result = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
///     .traffic(TrafficConfig::Uniform)
///     .offered_load(0.2)
///     .quick()
///     .seed(7)
///     .run()?;
/// assert!(result.latency.mean() >= 19.0); // >= zero-load latency
/// # Ok::<(), wormsim::ExperimentError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Experiment {
    // `pub(crate)` rather than private: the wire codec (`crate::wire`)
    // reads and reconstructs exactly this field set.
    pub(crate) topology: Topology,
    pub(crate) algorithm: AlgorithmKind,
    pub(crate) traffic: TrafficConfig,
    pub(crate) length: MessageLength,
    pub(crate) switching: Switching,
    pub(crate) selection: SelectionPolicy,
    pub(crate) ejection: EjectionModel,
    pub(crate) vc_replicas: u32,
    pub(crate) congestion_limit: Option<u32>,
    pub(crate) injection_bandwidth: u32,
    pub(crate) offered_load: f64,
    pub(crate) schedule: MeasurementSchedule,
    pub(crate) seed: u64,
    pub(crate) observe: Option<ObserveConfig>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) cycle_budget: Option<u64>,
    pub(crate) wall_budget_secs: Option<f64>,
    pub(crate) hop_budget: Option<u32>,
    pub(crate) age_budget: Option<u64>,
    pub(crate) watchdog_cycles: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) attempt: u32,
    pub(crate) resumed_from: Option<String>,
}

impl Experiment {
    /// Starts an experiment on `topology` with `algorithm`, using the
    /// paper's defaults: uniform traffic, 16-flit messages, wormhole
    /// switching, congestion limit 1, offered load 0.2.
    pub fn new(topology: Topology, algorithm: AlgorithmKind) -> Self {
        Experiment {
            topology,
            algorithm,
            traffic: TrafficConfig::Uniform,
            length: MessageLength::Fixed { flits: 16 },
            switching: Switching::wormhole(),
            selection: SelectionPolicy::MostCredits,
            ejection: EjectionModel::PerVc,
            vc_replicas: 1,
            congestion_limit: Some(1),
            injection_bandwidth: 1,
            offered_load: 0.2,
            schedule: MeasurementSchedule::default(),
            seed: 0,
            observe: None,
            faults: None,
            cycle_budget: None,
            wall_budget_secs: None,
            hop_budget: None,
            age_budget: None,
            watchdog_cycles: None,
            cancel: None,
            attempt: 1,
            resumed_from: None,
        }
    }

    /// Sets the traffic pattern.
    pub fn traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the message length distribution.
    pub fn message_length(mut self, length: MessageLength) -> Self {
        self.length = length;
        self
    }

    /// Sets the switching discipline.
    pub fn switching(mut self, switching: Switching) -> Self {
        self.switching = switching;
        self
    }

    /// Sets the VC selection policy.
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the ejection model.
    pub fn ejection(mut self, ejection: EjectionModel) -> Self {
        self.ejection = ejection;
        self
    }

    /// Sets the number of physical VCs per routing class.
    pub fn vc_replicas(mut self, replicas: u32) -> Self {
        self.vc_replicas = replicas;
        self
    }

    /// Sets (or disables) the congestion-control limit.
    pub fn congestion_limit(mut self, limit: Option<u32>) -> Self {
        self.congestion_limit = limit;
        self
    }

    /// Sets the injection bandwidth in flits per cycle.
    pub fn injection_bandwidth(mut self, flits: u32) -> Self {
        self.injection_bandwidth = flits;
        self
    }

    /// Sets the offered load as a fraction of channel capacity.
    pub fn offered_load(mut self, load: f64) -> Self {
        self.offered_load = load;
        self
    }

    /// Sets the measurement schedule.
    pub fn schedule(mut self, schedule: MeasurementSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shorthand for the quick test schedule.
    pub fn quick(self) -> Self {
        let quick = MeasurementSchedule::quick();
        self.schedule(quick)
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches observability to the run: a time-series sample stream and a
    /// run manifest in `config.out_dir`, and/or a full JSONL trace in
    /// `config.trace_dir` (see [`ObserveConfig`]). Per-channel flit-load
    /// tracking is switched on so samples carry a channel-load map. With no
    /// config (the default) the run pays no observability cost beyond one
    /// branch per event site.
    pub fn observe(mut self, config: ObserveConfig) -> Self {
        self.observe = if config.enabled() { Some(config) } else { None };
        self
    }

    /// Injects faults into the run: the plan's link/node failures (static
    /// or transient) apply at their scheduled cycles. When a plan is set
    /// and no explicit [`hop_budget`](Self::hop_budget) is given, a
    /// default hop budget of `4 * diameter + 64` guards against silent
    /// livelock from misrouting.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Caps the total simulated cycles; a run cut short by the cap ends
    /// with [`RunOutcome::BudgetExceeded`]. `None` (the default) leaves
    /// the schedule's own sample cap as the only bound.
    pub fn cycle_budget(mut self, cycles: Option<u64>) -> Self {
        self.cycle_budget = cycles;
        self
    }

    /// Caps the run's wall-clock time in seconds, checked between
    /// sampling periods; exceeding it ends the run with
    /// [`RunOutcome::BudgetExceeded`].
    pub fn wall_budget_secs(mut self, seconds: Option<f64>) -> Self {
        self.wall_budget_secs = seconds;
        self
    }

    /// Sets the per-message hop budget for the livelock guard (see
    /// [`RunOutcome::LiveLocked`]). Overrides the fault-mode default.
    pub fn hop_budget(mut self, hops: Option<u32>) -> Self {
        self.hop_budget = hops;
        self
    }

    /// Sets the per-message age budget in cycles for the livelock guard.
    pub fn age_budget(mut self, cycles: Option<u64>) -> Self {
        self.age_budget = cycles;
        self
    }

    /// Overrides the deadlock watchdog's no-progress window.
    pub fn watchdog_cycles(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// Attaches a cooperative cancellation token. A sweep orchestrator
    /// trips it (typically from a SIGINT handler) to make in-flight runs
    /// stop at the next sampling-period boundary; a run cut short this way
    /// ends with [`RunOutcome::Interrupted`] instead of blocking shutdown
    /// for a full measurement. Checking the token never perturbs the
    /// simulation, so an uncancelled run is bit-identical with or without
    /// one attached.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Records which retry attempt this run is (1-based; defaults to 1).
    /// Provenance only — it changes the run manifest, never the
    /// simulation, which retries with the identical seed.
    pub fn attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt.max(1);
        self
    }

    /// Records the journal path this run was resumed from, if any.
    /// Provenance only, surfaced in the run manifest.
    pub fn resumed_from(mut self, journal: Option<String>) -> Self {
        self.resumed_from = journal;
        self
    }

    /// A stable hex digest of everything that determines this experiment's
    /// *simulation* — topology, algorithm, traffic, message lengths,
    /// switching, selection, ejection, VC replicas, congestion limit,
    /// injection bandwidth, offered load, measurement schedule, seed, fault
    /// plan, and budgets. Observability settings, cancellation tokens, and
    /// retry provenance are deliberately excluded: they never change the
    /// measured numbers.
    ///
    /// The run journal keys completed points by this hash, so a resumed
    /// sweep skips exactly the points whose results would reproduce
    /// bit-identically and re-runs anything whose configuration changed.
    pub fn point_hash(&self) -> String {
        let canonical = format!(
            "topology={:?}|algorithm={:?}|traffic={:?}|length={:?}|switching={:?}\
             |selection={:?}|ejection={:?}|vc_replicas={}|congestion_limit={:?}\
             |injection_bandwidth={}|offered_load={}|schedule={:?}|seed={}\
             |faults={:?}|cycle_budget={:?}|wall_budget_secs={:?}|hop_budget={:?}\
             |age_budget={:?}|watchdog_cycles={:?}",
            self.topology,
            self.algorithm,
            self.traffic,
            self.length,
            self.switching,
            self.selection,
            self.ejection,
            self.vc_replicas,
            self.congestion_limit,
            self.injection_bandwidth,
            self.offered_load,
            self.schedule,
            self.seed,
            self.faults,
            self.cycle_budget,
            self.wall_budget_secs,
            self.hop_budget,
            self.age_budget,
            self.watchdog_cycles,
        );
        fnv1a_hex(&canonical)
    }

    /// The topology under test.
    pub fn topology_ref(&self) -> &Topology {
        &self.topology
    }

    /// The routing algorithm under test.
    pub fn algorithm_kind(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The configured traffic pattern.
    pub fn traffic_config(&self) -> &TrafficConfig {
        &self.traffic
    }

    /// The configured message-length distribution.
    pub fn length_config(&self) -> MessageLength {
        self.length
    }

    /// The configured offered load.
    pub fn offered_load_value(&self) -> f64 {
        self.offered_load
    }

    /// The configured cycle budget, if any. Retry policies read this to
    /// raise the budget on a final attempt after a `budget_artifact`
    /// stall triage.
    pub fn cycle_budget_value(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Checks the configuration for nonsensical combinations without
    /// building or running the simulator. [`run`](Self::run) calls this
    /// first, so misconfiguration fails with a named error before any
    /// cycle is simulated; call it directly to vet configurations up
    /// front (e.g. when accepting CLI input).
    ///
    /// # Errors
    ///
    /// * [`ExperimentError::InvalidLoad`] — `offered_load` outside `(0, 1]`
    /// * [`ExperimentError::ZeroVcReplicas`] — `vc_replicas == 0`
    /// * [`ExperimentError::ZeroCongestionLimit`] — `congestion_limit == Some(0)`
    /// * [`ExperimentError::ZeroLengthMessage`] — a zero-flit [`MessageLength`]
    /// * [`ExperimentError::FaultOnNonexistentChannel`],
    ///   [`ExperimentError::FaultRepairBeforeFailure`],
    ///   [`ExperimentError::AllNodesFaulted`] — an ill-formed fault plan
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if !self.offered_load.is_finite() || self.offered_load <= 0.0 || self.offered_load > 1.0 {
            return Err(ExperimentError::InvalidLoad {
                value: self.offered_load,
            });
        }
        if self.vc_replicas == 0 {
            return Err(ExperimentError::ZeroVcReplicas);
        }
        if self.congestion_limit == Some(0) {
            return Err(ExperimentError::ZeroCongestionLimit);
        }
        if self.length.min() == 0 {
            return Err(ExperimentError::ZeroLengthMessage);
        }
        if let Some(plan) = &self.faults {
            plan.validate(&self.topology).map_err(|e| match e {
                FaultPlanError::NonexistentChannel { node, direction } => {
                    ExperimentError::FaultOnNonexistentChannel {
                        node,
                        direction: Some(direction),
                    }
                }
                FaultPlanError::NodeOutOfRange { node, .. } => {
                    ExperimentError::FaultOnNonexistentChannel {
                        node,
                        direction: None,
                    }
                }
                FaultPlanError::RepairBeforeFailure {
                    target,
                    fail_at,
                    repair_at,
                } => ExperimentError::FaultRepairBeforeFailure {
                    target,
                    fail_at,
                    repair_at,
                },
                FaultPlanError::AllNodesFaulted => ExperimentError::AllNodesFaulted,
            })?;
        }
        Ok(())
    }

    /// The per-node injection rate this experiment will use (Equation 4
    /// inverted, with the pattern's exact mean distance).
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`run`](Self::run).
    pub fn injection_rate(&self) -> Result<f64, ExperimentError> {
        self.validate()?;
        let pattern = self
            .traffic
            .build(&self.topology)
            .map_err(EngineError::from)?;
        let mean_distance = pattern.mean_distance(&self.topology);
        let rate = throughput::rate_for_utilization(
            self.offered_load,
            self.length.mean(),
            mean_distance,
            self.topology.num_dims(),
        );
        if !(0.0..=1.0).contains(&rate) || rate == 0.0 {
            return Err(ExperimentError::RateOutOfRange { rate });
        }
        Ok(rate)
    }

    /// Runs the experiment to convergence (or its sample cap).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations. A *deadlock* during
    /// simulation is not an `Err`: it is reported in
    /// [`RunResult::deadlock`] so sweeps can record partial data.
    pub fn run(&self) -> Result<RunResult, ExperimentError> {
        self.validate()?;
        let rate = self.injection_rate()?;
        let pattern = self
            .traffic
            .build(&self.topology)
            .map_err(EngineError::from)?;
        let weights = pattern.hop_class_weights(&self.topology);
        let io_err = |e: std::io::Error| ExperimentError::Io {
            message: e.to_string(),
        };

        let total_watch = Stopwatch::start();
        let mut timings = PhaseTimings::new();

        // Under a fault plan, misrouting must not livelock silently: give
        // the guard a generous default hop budget unless the caller set one.
        let hop_budget = self.hop_budget.or_else(|| {
            self.faults
                .as_ref()
                .map(|_| 4 * self.topology.diameter() + 64)
        });
        let mut builder = NetworkBuilder::new(self.topology.clone(), self.algorithm)
            .traffic(self.traffic.clone())
            .arrival(ArrivalProcess::geometric(rate).map_err(EngineError::from)?)
            .message_length(self.length)
            .switching(self.switching)
            .selection(self.selection)
            .ejection(self.ejection)
            .vc_replicas(self.vc_replicas)
            .congestion_limit(self.congestion_limit)
            .injection_bandwidth(self.injection_bandwidth)
            .track_channel_load(self.observe.is_some())
            .hop_budget(hop_budget)
            .age_budget(self.age_budget)
            .seed(self.seed);
        if let Some(plan) = &self.faults {
            builder = builder.faults(plan.clone());
        }
        if let Some(cycles) = self.watchdog_cycles {
            builder = builder.watchdog_cycles(cycles);
        }
        let mut net = builder.build()?;
        if let Some(token) = &self.cancel {
            net.set_cancel_token(token.clone());
        }

        // A plan that partitions every source from every destination has
        // nothing to measure: record the outcome instead of simulating a
        // network where no message can ever be generated.
        if net.routable_pairs() == 0 {
            return Ok(RunResult {
                algorithm: self.algorithm.name().to_owned(),
                traffic: pattern.name(),
                offered_load: self.offered_load,
                injection_rate: rate,
                latency: wormsim_stats::ConfidenceInterval::new(0.0, f64::INFINITY),
                latency_percentiles: [0, 0, 0],
                latency_max: 0,
                class_latencies: Vec::new(),
                achieved_utilization: 0.0,
                delivery_rate: 0.0,
                acceptance_rate: 0.0,
                refused_fraction: 0.0,
                messages_measured: 0,
                convergence: wormsim_stats::ConvergenceStatus::NeedMoreSamples,
                samples: 0,
                cycles_simulated: 0,
                wall_seconds: total_watch.elapsed_secs(),
                cycles_per_sec: 0.0,
                outcome: RunOutcome::Unroutable,
                dropped_events: 0,
                deadlock: None,
                livelock: None,
                triage: None,
            });
        }

        // Attach the sample and trace streams before the first cycle runs.
        let run_id = self.observe.as_ref().map(|observe| {
            observe.run_id(&[
                self.algorithm.name(),
                &pattern.name(),
                &format!("l{:.2}", self.offered_load),
                &format!("s{}", self.seed),
            ])
        });
        if let (Some(observe), Some(run_id)) = (self.observe.as_ref(), run_id.as_deref()) {
            if let Some(dir) = observe.out_dir.as_ref() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
                let sink = JsonlSink::create(dir.join(format!("{run_id}.samples.jsonl")))
                    .map_err(io_err)?;
                net.observer().sample(observe.stride(), Box::new(sink));
            }
            if let Some(dir) = observe.trace_dir.as_ref() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
                let sink =
                    JsonlSink::create(dir.join(format!("{run_id}.trace.jsonl"))).map_err(io_err)?;
                net.observer().trace_into(Box::new(sink));
            }
            if observe.metrics && observe.out_dir.is_some() {
                net.observer().metrics_on();
            }
        }

        let mut controller = ConvergenceController::new(self.schedule.policy, weights.clone());

        // Warm up to steady state; discard everything measured so far.
        let watch = Stopwatch::start();
        net.run(self.schedule.warmup_cycles);
        timings.record("warmup", &watch, self.schedule.warmup_cycles);
        net.drain_delivered();
        let mut total_flit_hops = net.metrics().flit_hops;
        net.reset_metrics();

        let channels = net.num_network_channels();
        let nodes = self.topology.num_nodes() as u64;
        let mut util_sum = 0.0;
        let mut delivery_sum = 0.0;
        let mut accept_sum = 0.0;
        let mut refused = 0u64;
        let mut offered_count = 0u64;
        let mut messages_measured = 0u64;

        let mut histogram = Histogram::new();
        let mut phase = 0u64;
        let mut budget_exceeded;
        let mut interrupted;
        loop {
            let watch = Stopwatch::start();
            net.run(self.schedule.sample_cycles);
            timings.record("measure", &watch, self.schedule.sample_cycles);
            let mut acc = SampleAccumulator::new(weights.len());
            for msg in net.drain_delivered() {
                acc.record(msg.hop_class as usize, msg.latency as f64);
                histogram.record(msg.latency);
            }
            messages_measured += acc.count();
            let m = net.metrics();
            util_sum += m.channel_utilization(channels);
            delivery_sum += m.delivery_rate(nodes);
            accept_sum += m.acceptance_rate(nodes);
            refused += m.refused;
            offered_count += m.generated + m.refused;
            total_flit_hops += m.flit_hops;
            controller.push_sample(acc.summarize());
            net.reset_metrics();

            budget_exceeded = self.cycle_budget.is_some_and(|b| net.cycle() >= b)
                || self
                    .wall_budget_secs
                    .is_some_and(|b| total_watch.elapsed_secs() >= b);
            interrupted = net.is_cancelled();
            if net.deadlock_report().is_some()
                || net.livelock_report().is_some()
                || interrupted
                || budget_exceeded
                || controller.status().is_done()
            {
                break;
            }

            // Inter-sample gap: fresh RNG streams, no statistics gathered.
            phase += 1;
            net.reseed_streams(phase);
            let watch = Stopwatch::start();
            net.run(self.schedule.gap_cycles);
            timings.record("gap", &watch, self.schedule.gap_cycles);
            net.drain_delivered();
            total_flit_hops += net.metrics().flit_hops;
            net.reset_metrics();
        }

        // Flush the tail of the time series before reading the clocks.
        net.sample_now();
        let deadlock = net.deadlock_report();
        let livelock = net.livelock_report();
        let outcome = if deadlock.is_some() {
            RunOutcome::Deadlocked
        } else if livelock.is_some() {
            RunOutcome::LiveLocked
        } else if interrupted {
            RunOutcome::Interrupted
        } else if budget_exceeded {
            RunOutcome::BudgetExceeded
        } else if controller.status().is_converged() {
            RunOutcome::Completed
        } else {
            RunOutcome::Saturated
        };
        let cycles_simulated = net.cycle();
        let wall_seconds = total_watch.elapsed_secs();
        let cycles_per_sec = if wall_seconds > 0.0 {
            cycles_simulated as f64 / wall_seconds
        } else {
            0.0
        };

        // A stalled run is triaged unconditionally (not just when observed):
        // the wait-for snapshot refines the watchdog's budget-based verdict
        // into confirmed-unsafe (a validated circular wait) vs
        // budget-artifact, and the verdict travels with the result through
        // journals, CSVs, and manifests.
        let wait_snapshot = matches!(outcome, RunOutcome::Deadlocked | RunOutcome::LiveLocked)
            .then(|| net.wait_for_snapshot(outcome.tag()));
        let triage = wait_snapshot.as_ref().map(wormsim_verify::triage);

        let samples = controller.num_samples();
        let latency = controller
            .estimate()
            .unwrap_or(wormsim_stats::ConfidenceInterval::new(0.0, f64::INFINITY));
        let class_latencies: Vec<crate::ClassLatency> = controller
            .pooled_strata()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(hops, s)| crate::ClassLatency {
                hops: hops as u16,
                count: s.count(),
                mean: s.mean(),
            })
            .collect();
        let mut result = RunResult {
            algorithm: self.algorithm.name().to_owned(),
            traffic: pattern.name(),
            offered_load: self.offered_load,
            injection_rate: rate,
            latency,
            latency_percentiles: [
                histogram.percentile(0.50),
                histogram.percentile(0.95),
                histogram.percentile(0.99),
            ],
            latency_max: histogram.max(),
            class_latencies,
            achieved_utilization: util_sum / samples as f64,
            delivery_rate: delivery_sum / samples as f64,
            acceptance_rate: accept_sum / samples as f64,
            refused_fraction: if offered_count == 0 {
                0.0
            } else {
                refused as f64 / offered_count as f64
            },
            messages_measured,
            convergence: controller.status(),
            samples,
            cycles_simulated,
            wall_seconds,
            cycles_per_sec,
            outcome: outcome.clone(),
            dropped_events: 0,
            deadlock,
            livelock,
            triage,
        };

        // Observed runs get a bounded drain phase (so the sample stream
        // covers in-flight messages emptying out), a final partial sample,
        // and a manifest next to the sample stream. The statistics above
        // are already captured; nothing below alters the result.
        if self.observe.is_some() {
            if outcome.has_statistics() {
                let watch = Stopwatch::start();
                let before = net.cycle();
                net.stop_arrivals();
                net.run_until_empty(self.schedule.gap_cycles.max(10_000));
                timings.record("drain", &watch, net.cycle() - before);
                total_flit_hops += net.metrics().flit_hops;
                net.sample_now();
            }
            net.flush_observers().map_err(io_err)?;
        }
        if let (Some(observe), Some(run_id)) = (self.observe.as_ref(), run_id.as_ref()) {
            if let Some(dir) = observe.out_dir.as_ref() {
                // A stalled run leaves the network exactly as the watchdog
                // (or livelock guard) saw it: capture the wait-for graph so
                // the outcome carries evidence of a real channel cycle, or
                // its absence.
                if let Some(snapshot) = wait_snapshot.as_ref() {
                    let mut line = snapshot.to_json();
                    line.push('\n');
                    atomic_write(dir.join(format!("{run_id}.waitfor.jsonl")), line)
                        .map_err(io_err)?;
                }
                if let Some(registry) = net.metrics_registry() {
                    let dims: Vec<u64> =
                        self.topology.dims().iter().map(|&d| u64::from(d)).collect();
                    let dirs = (self.topology.num_dims() * 2) as u64;
                    let mut report = registry.report(run_id, &self.topology.label(), &dims, dirs);
                    // Engine phases from the registry, experiment spans
                    // (warmup/measure/gap/drain) from the run's timings:
                    // one self-contained phase breakdown.
                    report.phases.extend_from_slice(timings.phases());
                    report
                        .write_to(dir.join(format!("{run_id}.metrics.json")))
                        .map_err(io_err)?;
                    let csv = heatmap_csv(&dims, dirs, &registry.channel_flits, registry.cycles);
                    atomic_write(dir.join(format!("{run_id}.heatmap.csv")), csv).map_err(io_err)?;
                }
                let wall = total_watch.elapsed_secs();
                let manifest = RunManifest {
                    run_id: run_id.clone(),
                    config_hash: fnv1a_hex(&format!("{:?}|{:?}", net.config(), self.schedule)),
                    git_describe: git_describe(),
                    seed: self.seed,
                    algorithm: result.algorithm.clone(),
                    traffic: result.traffic.clone(),
                    topology: self.topology.label(),
                    offered_load: self.offered_load,
                    injection_rate: rate,
                    cycles: net.cycle(),
                    warmup_cycles: self.schedule.warmup_cycles,
                    samples: samples as u64,
                    converged: result.convergence.is_converged(),
                    deadlocked: deadlock.is_some(),
                    outcome: outcome.tag().to_owned(),
                    triage: result.triage.as_ref().map(|t| t.verdict.tag().to_owned()),
                    wall_seconds: wall,
                    cycles_per_sec: if wall > 0.0 {
                        net.cycle() as f64 / wall
                    } else {
                        0.0
                    },
                    flits_per_sec: if wall > 0.0 {
                        total_flit_hops as f64 / wall
                    } else {
                        0.0
                    },
                    dropped_events: net.observer_dropped_events(),
                    attempts: u64::from(self.attempt),
                    resumed_from: self.resumed_from.clone(),
                    phases: timings.into_phases(),
                };
                manifest
                    .write_to(dir.join(format!("{run_id}.manifest.json")))
                    .map_err(io_err)?;
            }
        }
        result.dropped_events = net.observer_dropped_events();
        Ok(result)
    }

    /// Runs this experiment at each offered load in `loads`, reusing every
    /// other setting.
    ///
    /// # Errors
    ///
    /// Fails fast on the first configuration error.
    pub fn sweep(&self, loads: &[f64]) -> Result<Vec<RunResult>, ExperimentError> {
        loads
            .iter()
            .map(|&load| self.clone().offered_load(load).run())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Experiment {
        Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
            .quick()
            .seed(5)
    }

    #[test]
    fn injection_rate_matches_equation_four() {
        // 8x8 torus uniform: d̄ = 4 * 64/63; rate = rho * 4 / (16 * d̄).
        let e = base().offered_load(0.4);
        let d_bar = 4.0 * 64.0 / 63.0;
        let expected = 0.4 * 4.0 / (16.0 * d_bar);
        assert!((e.injection_rate().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_loads() {
        assert!(matches!(
            base().offered_load(0.0).run(),
            Err(ExperimentError::InvalidLoad { .. })
        ));
        assert!(matches!(
            base().offered_load(-1.0).injection_rate(),
            Err(ExperimentError::InvalidLoad { .. })
        ));
        assert!(matches!(
            base().offered_load(7.0).injection_rate(),
            Err(ExperimentError::InvalidLoad { .. })
        ));
    }

    #[test]
    fn low_load_latency_is_near_zero_load() {
        let result = base().offered_load(0.05).run().unwrap();
        assert!(result.is_converged(), "{result:?}");
        // Zero-load latency on 8^2 uniform: 16 + d̄ - 1 ≈ 19.06 cycles.
        assert!(result.latency.mean() > 18.0);
        assert!(
            result.latency.mean() < 25.0,
            "latency {} too high for 5% load",
            result.latency.mean()
        );
        assert!(result.messages_measured > 100);
        assert!((result.achieved_utilization - 0.05).abs() < 0.02);
    }

    #[test]
    fn sweep_is_monotone_in_utilization_below_saturation() {
        let results = base().sweep(&[0.1, 0.3, 0.5]).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].achieved_utilization < results[1].achieved_utilization);
        assert!(results[1].achieved_utilization < results[2].achieved_utilization);
        for r in &results {
            assert!(r.deadlock.is_none());
        }
    }

    #[test]
    fn point_hash_tracks_simulation_config_only() {
        let a = base().offered_load(0.3);
        assert_eq!(a.point_hash(), a.clone().point_hash(), "hash is stable");
        assert_ne!(
            a.point_hash(),
            a.clone().offered_load(0.31).point_hash(),
            "load changes the point"
        );
        assert_ne!(
            a.point_hash(),
            a.clone().seed(6).point_hash(),
            "seed changes the point"
        );
        assert_ne!(
            a.point_hash(),
            a.clone().faults(FaultPlan::new()).point_hash(),
            "fault plan changes the point"
        );
        // Provenance and orchestration settings do not.
        assert_eq!(
            a.point_hash(),
            a.clone()
                .attempt(3)
                .resumed_from(Some("results/sweep.journal.jsonl".into()))
                .cancel_token(CancelToken::new())
                .point_hash()
        );
    }

    #[test]
    fn pre_cancelled_run_ends_interrupted() {
        let token = CancelToken::new();
        token.cancel();
        let result = base().offered_load(0.3).cancel_token(token).run().unwrap();
        assert_eq!(result.outcome, RunOutcome::Interrupted);
        assert!(!result.outcome.has_statistics());
        assert!(!result.is_converged());
        // The run stopped at the first boundary, not after a full schedule.
        assert!(result.cycles_simulated < 2_000, "{result:?}");
    }

    #[test]
    fn uncancelled_token_does_not_perturb_results() {
        let plain = base().offered_load(0.2).run().unwrap();
        let tokened = base()
            .offered_load(0.2)
            .cancel_token(CancelToken::new())
            .run()
            .unwrap();
        assert_eq!(plain.latency.mean(), tokened.latency.mean());
        assert_eq!(plain.messages_measured, tokened.messages_measured);
        assert_eq!(plain.cycles_simulated, tokened.cycles_simulated);
        assert_eq!(plain.outcome, tokened.outcome);
    }

    #[test]
    fn deadlock_is_reported_not_propagated() {
        let result = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::NaiveMinimal)
            .offered_load(0.9)
            .quick()
            .seed(3)
            .run()
            .unwrap();
        // The naive algorithm may or may not deadlock within the quick
        // schedule, but the field must be plumbed through when it does.
        if let Some(report) = result.deadlock {
            assert!(report.flits_in_flight > 0);
            assert!(!result.is_converged());
        }
    }
}

//! The distributed-sweep wire format: a JSON codec for [`Experiment`].
//!
//! A `wormsim-worker` process receives one experiment per job over HTTP,
//! runs it, and ships the [`RunResult`](crate::RunResult) back through the
//! journal's existing [`JsonRecord`] encoding. This module provides the
//! other half of that exchange: [`Experiment::to_wire_json`] /
//! [`Experiment::from_wire_json`] serialize every field that determines
//! the *simulation* — the exact set [`Experiment::point_hash`] digests —
//! so a point decoded on a worker reproduces the orchestrator's results
//! bit-identically. Orchestrator-local state (observability sinks, cancel
//! tokens, retry provenance) deliberately never crosses the wire.
//!
//! Floats are encoded through the shortest-round-trip `Display` form (the
//! same convention the journal uses), with non-finite values as the
//! strings `"inf"`, `"-inf"`, `"nan"`, so `offered_load` and the
//! convergence tolerance survive bit-exactly.
//!
//! # Versioning
//!
//! The format is versioned by [`WIRE_PROTOCOL`] and guarded by
//! [`wire_digest`]: a digest over the protocol number, the crate version,
//! and the configuration schema itself (via the `point_hash` of a
//! canonical experiment, which fingerprints the `Debug` shape of every
//! config type). An orchestrator and a worker whose digests differ refuse
//! to exchange work — a mismatched worker binary is rejected at the
//! handshake instead of silently producing non-reproducible numbers.

use crate::schedule::MeasurementSchedule;
use crate::{Experiment, ExperimentError};
use wormsim_engine::{EjectionModel, SelectionPolicy, Switching};
use wormsim_faults::{Fault, FaultPlan, FaultTarget};
use wormsim_observe::json::Value;
use wormsim_observe::{fnv1a_hex, JsonObject};
use wormsim_routing::AlgorithmKind;
use wormsim_stats::ConvergencePolicy;
use wormsim_topology::{Direction, NodeId, Sign, Topology, TopologyKind};
use wormsim_traffic::{MessageLength, TrafficConfig};

/// Version of the worker wire format. Bump on any change to the JSON
/// schema in this module or the worker's HTTP endpoints.
pub const WIRE_PROTOCOL: u32 = 1;

/// The config-digest both sides exchange in the worker handshake.
///
/// Covers the wire protocol number, the crate version, and a fingerprint
/// of the configuration schema: the [`Experiment::point_hash`] of one
/// canonical experiment exercises the `Debug` representation of every
/// simulation-relevant config type, so adding, removing, or reordering a
/// field anywhere in the config surface changes the digest and severs
/// mismatched orchestrator/worker pairs at the handshake.
pub fn wire_digest() -> String {
    let canonical =
        Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::PositiveHop).point_hash();
    fnv1a_hex(&format!(
        "wormsim-wire/v{WIRE_PROTOCOL}|crate={}|schema={canonical}",
        env!("CARGO_PKG_VERSION")
    ))
}

/// Writes a float that must survive the wire bit-exactly (the journal's
/// convention: shortest `Display` for finite values, `"inf"`/`"-inf"`/
/// `"nan"` strings otherwise).
fn field_f64_exact(obj: &mut JsonObject<'_>, key: &str, value: f64) {
    if value.is_finite() {
        obj.field_f64(key, value);
    } else if value.is_nan() {
        obj.field_str(key, "nan");
    } else if value > 0.0 {
        obj.field_str(key, "inf");
    } else {
        obj.field_str(key, "-inf");
    }
}

fn get_f64_exact(value: &Value, key: &str) -> Result<f64, String> {
    let v = value
        .get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    if let Some(n) = v.as_f64() {
        return Ok(n);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some("nan") => Ok(f64::NAN),
        _ => Err(format!("field '{key}' is not a number")),
    }
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn get_u32(value: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(value, key)?).map_err(|_| format!("field '{key}' out of u32 range"))
}

fn get_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// `null` and absent both decode as `None`.
fn get_opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' is not an integer")),
    }
}

fn field_opt_u64(obj: &mut JsonObject<'_>, key: &str, value: Option<u64>) {
    match value {
        Some(v) => obj.field_u64(key, v),
        None => obj.field_raw(key, "null"),
    };
}

fn topology_json(out: &mut String, topo: &Topology) {
    let mut obj = JsonObject::begin(out);
    obj.field_str("kind", &topo.kind().to_string());
    let dims: Vec<u64> = topo.dims().iter().map(|&d| u64::from(d)).collect();
    obj.field_u64_array("dims", &dims);
    obj.finish();
}

fn topology_from_json(value: &Value) -> Result<Topology, String> {
    let kind = match get_str(value, "kind")? {
        "torus" => TopologyKind::Torus,
        "mesh" => TopologyKind::Mesh,
        other => return Err(format!("unknown topology kind '{other}'")),
    };
    let dims: Vec<u16> = value
        .get("dims")
        .and_then(Value::as_array)
        .ok_or("missing field 'dims'")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|d| u16::try_from(d).ok())
                .ok_or_else(|| "dimension radix out of u16 range".to_owned())
        })
        .collect::<Result<_, _>>()?;
    let build = match kind {
        TopologyKind::Torus => Topology::try_torus(&dims),
        TopologyKind::Mesh => Topology::try_mesh(&dims),
    };
    build.map_err(|e| format!("invalid topology: {e:?}"))
}

fn traffic_json(out: &mut String, traffic: &TrafficConfig) {
    let mut obj = JsonObject::begin(out);
    match traffic {
        TrafficConfig::Uniform => {
            obj.field_str("type", "uniform");
        }
        TrafficConfig::Hotspot { nodes, fraction } => {
            obj.field_str("type", "hotspot");
            let mut list = String::from("[");
            for (i, coords) in nodes.iter().enumerate() {
                if i > 0 {
                    list.push(',');
                }
                list.push('[');
                for (j, &c) in coords.iter().enumerate() {
                    if j > 0 {
                        list.push(',');
                    }
                    list.push_str(&c.to_string());
                }
                list.push(']');
            }
            list.push(']');
            obj.field_raw("nodes", &list);
            field_f64_exact(&mut obj, "fraction", *fraction);
        }
        TrafficConfig::Local { radius } => {
            obj.field_str("type", "local")
                .field_u64("radius", u64::from(*radius));
        }
        TrafficConfig::Transpose => {
            obj.field_str("type", "transpose");
        }
        TrafficConfig::BitReversal => {
            obj.field_str("type", "bit_reversal");
        }
        TrafficConfig::Complement => {
            obj.field_str("type", "complement");
        }
    }
    obj.finish();
}

fn traffic_from_json(value: &Value) -> Result<TrafficConfig, String> {
    Ok(match get_str(value, "type")? {
        "uniform" => TrafficConfig::Uniform,
        "hotspot" => {
            let nodes = value
                .get("nodes")
                .and_then(Value::as_array)
                .ok_or("missing field 'nodes'")?
                .iter()
                .map(|coords| {
                    coords
                        .as_array()
                        .ok_or_else(|| "hotspot node is not a coordinate array".to_owned())?
                        .iter()
                        .map(|c| {
                            c.as_u64()
                                .and_then(|v| u16::try_from(v).ok())
                                .ok_or_else(|| "hotspot coordinate out of range".to_owned())
                        })
                        .collect::<Result<Vec<u16>, _>>()
                })
                .collect::<Result<Vec<Vec<u16>>, _>>()?;
            TrafficConfig::Hotspot {
                nodes,
                fraction: get_f64_exact(value, "fraction")?,
            }
        }
        "local" => TrafficConfig::Local {
            radius: u16::try_from(get_u64(value, "radius")?)
                .map_err(|_| "radius out of u16 range".to_owned())?,
        },
        "transpose" => TrafficConfig::Transpose,
        "bit_reversal" => TrafficConfig::BitReversal,
        "complement" => TrafficConfig::Complement,
        other => return Err(format!("unknown traffic type '{other}'")),
    })
}

fn length_json(out: &mut String, length: MessageLength) {
    let mut obj = JsonObject::begin(out);
    match length {
        MessageLength::Fixed { flits } => {
            obj.field_str("type", "fixed")
                .field_u64("flits", u64::from(flits));
        }
        MessageLength::Uniform { min, max } => {
            obj.field_str("type", "uniform")
                .field_u64("min", u64::from(min))
                .field_u64("max", u64::from(max));
        }
        MessageLength::Bimodal {
            short,
            long,
            long_fraction,
        } => {
            obj.field_str("type", "bimodal")
                .field_u64("short", u64::from(short))
                .field_u64("long", u64::from(long));
            field_f64_exact(&mut obj, "long_fraction", long_fraction);
        }
    }
    obj.finish();
}

fn length_from_json(value: &Value) -> Result<MessageLength, String> {
    Ok(match get_str(value, "type")? {
        "fixed" => MessageLength::Fixed {
            flits: get_u32(value, "flits")?,
        },
        "uniform" => MessageLength::Uniform {
            min: get_u32(value, "min")?,
            max: get_u32(value, "max")?,
        },
        "bimodal" => MessageLength::Bimodal {
            short: get_u32(value, "short")?,
            long: get_u32(value, "long")?,
            long_fraction: get_f64_exact(value, "long_fraction")?,
        },
        other => return Err(format!("unknown message-length type '{other}'")),
    })
}

fn switching_json(out: &mut String, switching: Switching) {
    let mut obj = JsonObject::begin(out);
    match switching {
        Switching::Wormhole { buffer_depth } => {
            obj.field_str("type", "wormhole")
                .field_u64("buffer_depth", u64::from(buffer_depth));
        }
        Switching::VirtualCutThrough => {
            obj.field_str("type", "vct");
        }
        Switching::StoreAndForward => {
            obj.field_str("type", "saf");
        }
    }
    obj.finish();
}

fn switching_from_json(value: &Value) -> Result<Switching, String> {
    Ok(match get_str(value, "type")? {
        "wormhole" => Switching::Wormhole {
            buffer_depth: get_u32(value, "buffer_depth")?,
        },
        "vct" => Switching::VirtualCutThrough,
        "saf" => Switching::StoreAndForward,
        other => return Err(format!("unknown switching type '{other}'")),
    })
}

fn selection_tag(selection: SelectionPolicy) -> &'static str {
    match selection {
        SelectionPolicy::MostCredits => "most_credits",
        SelectionPolicy::FirstFree => "first_free",
        SelectionPolicy::Random => "random",
    }
}

fn selection_from_tag(tag: &str) -> Result<SelectionPolicy, String> {
    match tag {
        "most_credits" => Ok(SelectionPolicy::MostCredits),
        "first_free" => Ok(SelectionPolicy::FirstFree),
        "random" => Ok(SelectionPolicy::Random),
        other => Err(format!("unknown selection policy '{other}'")),
    }
}

fn ejection_tag(ejection: EjectionModel) -> &'static str {
    match ejection {
        EjectionModel::PerVc => "per_vc",
        EjectionModel::SingleChannel => "single_channel",
    }
}

fn ejection_from_tag(tag: &str) -> Result<EjectionModel, String> {
    match tag {
        "per_vc" => Ok(EjectionModel::PerVc),
        "single_channel" => Ok(EjectionModel::SingleChannel),
        other => Err(format!("unknown ejection model '{other}'")),
    }
}

fn schedule_json(out: &mut String, schedule: &MeasurementSchedule) {
    let mut obj = JsonObject::begin(out);
    obj.field_u64("warmup_cycles", schedule.warmup_cycles)
        .field_u64("sample_cycles", schedule.sample_cycles)
        .field_u64("gap_cycles", schedule.gap_cycles)
        .field_u64("min_samples", schedule.policy.min_samples as u64)
        .field_u64("max_samples", schedule.policy.max_samples as u64)
        .field_u64("recent_window", schedule.policy.recent_window as u64);
    field_f64_exact(
        &mut obj,
        "relative_tolerance",
        schedule.policy.relative_tolerance,
    );
    obj.finish();
}

fn schedule_from_json(value: &Value) -> Result<MeasurementSchedule, String> {
    Ok(MeasurementSchedule {
        warmup_cycles: get_u64(value, "warmup_cycles")?,
        sample_cycles: get_u64(value, "sample_cycles")?,
        gap_cycles: get_u64(value, "gap_cycles")?,
        policy: ConvergencePolicy {
            min_samples: get_u64(value, "min_samples")? as usize,
            max_samples: get_u64(value, "max_samples")? as usize,
            relative_tolerance: get_f64_exact(value, "relative_tolerance")?,
            recent_window: get_u64(value, "recent_window")? as usize,
        },
    })
}

fn faults_json(out: &mut String, plan: &FaultPlan) {
    out.push('[');
    for (i, fault) in plan.faults().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut obj = JsonObject::begin(out);
        match fault.target {
            FaultTarget::Link { node, direction } => {
                obj.field_str("target", "link")
                    .field_u64("node", u64::from(node.index()))
                    .field_u64("dim", direction.dim() as u64)
                    .field_str(
                        "sign",
                        match direction.sign() {
                            Sign::Plus => "+",
                            Sign::Minus => "-",
                        },
                    );
            }
            FaultTarget::Node { node } => {
                obj.field_str("target", "node")
                    .field_u64("node", u64::from(node.index()));
            }
        }
        obj.field_u64("fail_at", fault.fail_at);
        field_opt_u64(&mut obj, "repair_at", fault.repair_at);
        obj.finish();
    }
    out.push(']');
}

fn faults_from_json(value: &Value) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for entry in value.as_array().ok_or("faults is not an array")? {
        let node = NodeId::new(get_u32(entry, "node")?);
        let target = match get_str(entry, "target")? {
            "link" => {
                let sign = match get_str(entry, "sign")? {
                    "+" => Sign::Plus,
                    "-" => Sign::Minus,
                    other => return Err(format!("unknown sign '{other}'")),
                };
                FaultTarget::Link {
                    node,
                    direction: Direction::new(get_u64(entry, "dim")? as usize, sign),
                }
            }
            "node" => FaultTarget::Node { node },
            other => return Err(format!("unknown fault target '{other}'")),
        };
        plan.push(Fault {
            target,
            fail_at: get_u64(entry, "fail_at")?,
            repair_at: get_opt_u64(entry, "repair_at")?,
        });
    }
    Ok(plan)
}

impl Experiment {
    /// Encodes this experiment's full simulation configuration as one JSON
    /// object for the worker wire.
    ///
    /// Exactly the [`point_hash`](Experiment::point_hash) field set crosses
    /// the wire; observability, cancellation, and provenance stay local.
    /// [`from_wire_json`](Experiment::from_wire_json) inverts it such that
    /// the decoded experiment has the identical point hash.
    pub fn to_wire_json(&self) -> String {
        let mut out = String::new();
        let mut obj = JsonObject::begin(&mut out);
        obj.field_u64("wire", u64::from(WIRE_PROTOCOL));
        let mut nested = String::new();
        topology_json(&mut nested, &self.topology);
        obj.field_raw("topology", &nested);
        obj.field_str("algorithm", self.algorithm.name());
        nested.clear();
        traffic_json(&mut nested, &self.traffic);
        obj.field_raw("traffic", &nested);
        nested.clear();
        length_json(&mut nested, self.length);
        obj.field_raw("length", &nested);
        nested.clear();
        switching_json(&mut nested, self.switching);
        obj.field_raw("switching", &nested);
        obj.field_str("selection", selection_tag(self.selection))
            .field_str("ejection", ejection_tag(self.ejection))
            .field_u64("vc_replicas", u64::from(self.vc_replicas));
        field_opt_u64(
            &mut obj,
            "congestion_limit",
            self.congestion_limit.map(u64::from),
        );
        obj.field_u64("injection_bandwidth", u64::from(self.injection_bandwidth));
        field_f64_exact(&mut obj, "offered_load", self.offered_load);
        nested.clear();
        schedule_json(&mut nested, &self.schedule);
        obj.field_raw("schedule", &nested);
        // As a decimal string, not a JSON number: the vendored JSON shim
        // stores numbers as f64, which would corrupt full-entropy 64-bit
        // seeds above 2^53.
        obj.field_str("seed", &self.seed.to_string());
        if let Some(plan) = &self.faults {
            nested.clear();
            faults_json(&mut nested, plan);
            obj.field_raw("faults", &nested);
        } else {
            obj.field_raw("faults", "null");
        }
        field_opt_u64(&mut obj, "cycle_budget", self.cycle_budget);
        match self.wall_budget_secs {
            Some(secs) => field_f64_exact(&mut obj, "wall_budget_secs", secs),
            None => {
                obj.field_raw("wall_budget_secs", "null");
            }
        }
        field_opt_u64(&mut obj, "hop_budget", self.hop_budget.map(u64::from));
        field_opt_u64(&mut obj, "age_budget", self.age_budget);
        field_opt_u64(&mut obj, "watchdog_cycles", self.watchdog_cycles);
        obj.finish();
        out
    }

    /// Decodes an experiment from its wire form.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown tags, missing fields,
    /// out-of-range values, or a wire-protocol number this binary does not
    /// speak. The decoded experiment is *not* validated — call
    /// [`validate`](Experiment::validate) (or just [`run`](Experiment::run))
    /// for semantic checks.
    pub fn from_wire_json(value: &Value) -> Result<Experiment, String> {
        let wire = get_u64(value, "wire")?;
        if wire != u64::from(WIRE_PROTOCOL) {
            return Err(format!(
                "wire protocol {wire} not supported (this binary speaks {WIRE_PROTOCOL})"
            ));
        }
        let topology =
            topology_from_json(value.get("topology").ok_or("missing field 'topology'")?)?;
        let algorithm: AlgorithmKind = get_str(value, "algorithm")?
            .parse()
            .map_err(|e| format!("{e:?}"))?;
        let faults = match value.get("faults") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(faults_from_json(v)?),
        };
        let wall_budget_secs = match value.get("wall_budget_secs") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(_) => Some(get_f64_exact(value, "wall_budget_secs")?),
        };
        let mut experiment = Experiment::new(topology, algorithm);
        experiment.traffic =
            traffic_from_json(value.get("traffic").ok_or("missing field 'traffic'")?)?;
        experiment.length = length_from_json(value.get("length").ok_or("missing field 'length'")?)?;
        experiment.switching =
            switching_from_json(value.get("switching").ok_or("missing field 'switching'")?)?;
        experiment.selection = selection_from_tag(get_str(value, "selection")?)?;
        experiment.ejection = ejection_from_tag(get_str(value, "ejection")?)?;
        experiment.vc_replicas = get_u32(value, "vc_replicas")?;
        experiment.congestion_limit = get_opt_u64(value, "congestion_limit")?
            .map(|v| u32::try_from(v).map_err(|_| "congestion_limit out of u32 range".to_owned()))
            .transpose()?;
        experiment.injection_bandwidth = get_u32(value, "injection_bandwidth")?;
        experiment.offered_load = get_f64_exact(value, "offered_load")?;
        experiment.schedule =
            schedule_from_json(value.get("schedule").ok_or("missing field 'schedule'")?)?;
        experiment.seed = get_str(value, "seed")?
            .parse()
            .map_err(|_| "seed is not a u64".to_owned())?;
        experiment.faults = faults;
        experiment.cycle_budget = get_opt_u64(value, "cycle_budget")?;
        experiment.wall_budget_secs = wall_budget_secs;
        experiment.hop_budget = get_opt_u64(value, "hop_budget")?
            .map(|v| u32::try_from(v).map_err(|_| "hop_budget out of u32 range".to_owned()))
            .transpose()?;
        experiment.age_budget = get_opt_u64(value, "age_budget")?;
        experiment.watchdog_cycles = get_opt_u64(value, "watchdog_cycles")?;
        Ok(experiment)
    }

    /// Convenience: parse a wire-encoded experiment from JSON text.
    ///
    /// # Errors
    ///
    /// JSON syntax errors and every error of
    /// [`from_wire_json`](Experiment::from_wire_json).
    pub fn from_wire_str(text: &str) -> Result<Experiment, String> {
        let value = wormsim_observe::json::from_str(text).map_err(|e| e.to_string())?;
        Experiment::from_wire_json(&value)
    }
}

/// A worker-side run failure, rendered for the wire. Configuration errors
/// are deterministic, so the orchestrator re-derives the structured
/// [`ExperimentError`] locally by re-validating its own copy of the
/// experiment; the wire only needs the rendered message as a fallback.
pub fn render_error(error: &ExperimentError) -> String {
    error.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_faults::FaultRegion;

    fn roundtrip(e: &Experiment) -> Experiment {
        Experiment::from_wire_str(&e.to_wire_json()).expect("wire round-trip")
    }

    #[test]
    fn default_experiment_roundtrips_to_same_point_hash() {
        let e = Experiment::new(
            Topology::torus(&[16, 16]),
            AlgorithmKind::NegativeHopBonusCards,
        )
        .offered_load(0.35)
        .seed(1993);
        assert_eq!(roundtrip(&e).point_hash(), e.point_hash());
    }

    #[test]
    fn every_knob_survives_the_wire() {
        let mut plan =
            FaultPlan::random_links(&Topology::torus(&[8, 8]), 3, 7, &FaultRegion::Anywhere);
        plan.push(Fault {
            target: FaultTarget::Node {
                node: NodeId::new(9),
            },
            fail_at: 1000,
            repair_at: Some(2000),
        });
        let e = Experiment::new(Topology::mesh(&[4, 6, 8]), AlgorithmKind::Ecube)
            .traffic(TrafficConfig::Hotspot {
                nodes: vec![vec![3, 5, 7], vec![0, 0, 0]],
                fraction: 0.1 + 0.2, // awkward float
            })
            .message_length(MessageLength::Bimodal {
                short: 4,
                long: 64,
                long_fraction: 1.0 / 3.0,
            })
            .switching(Switching::Wormhole { buffer_depth: 4 })
            .selection(SelectionPolicy::Random)
            .ejection(EjectionModel::SingleChannel)
            .vc_replicas(3)
            .congestion_limit(None)
            .injection_bandwidth(2)
            .offered_load(f64::from_bits(0.45f64.to_bits() + 1))
            .schedule(MeasurementSchedule::saturation())
            .seed(u64::MAX)
            .faults(plan)
            .cycle_budget(Some(123_456))
            .wall_budget_secs(Some(1.5))
            .hop_budget(Some(99))
            .age_budget(Some(50_000))
            .watchdog_cycles(4096);
        let back = roundtrip(&e);
        assert_eq!(back.point_hash(), e.point_hash());
        // And the encoding itself is stable (decode -> re-encode is identity).
        assert_eq!(back.to_wire_json(), e.to_wire_json());
    }

    #[test]
    fn local_traffic_and_permutations_roundtrip() {
        for traffic in [
            TrafficConfig::Local { radius: 3 },
            TrafficConfig::Transpose,
            TrafficConfig::BitReversal,
            TrafficConfig::Complement,
        ] {
            let e = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::TwoPowerN)
                .traffic(traffic)
                .switching(Switching::VirtualCutThrough);
            assert_eq!(roundtrip(&e).point_hash(), e.point_hash());
        }
    }

    #[test]
    fn orchestrator_local_state_never_crosses_the_wire() {
        let e = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
            .attempt(5)
            .resumed_from(Some("results/sweep.journal.jsonl".into()))
            .cancel_token(wormsim_engine::CancelToken::new());
        let text = e.to_wire_json();
        assert!(!text.contains("journal"), "got: {text}");
        assert!(!text.contains("attempt"), "got: {text}");
        // The decoded copy still simulates identically.
        assert_eq!(roundtrip(&e).point_hash(), e.point_hash());
    }

    #[test]
    fn wire_version_is_enforced() {
        let e = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube);
        let text = e.to_wire_json().replacen("\"wire\":1", "\"wire\":99", 1);
        let err = Experiment::from_wire_str(&text).unwrap_err();
        assert!(err.contains("wire protocol 99"), "got: {err}");
    }

    #[test]
    fn digest_is_stable_within_a_build() {
        assert_eq!(wire_digest(), wire_digest());
        assert_eq!(wire_digest().len(), 16, "fnv1a_hex digest");
    }

    #[test]
    fn garbage_is_rejected_with_named_fields() {
        assert!(Experiment::from_wire_str("not json").is_err());
        let err = Experiment::from_wire_str("{\"wire\":1}").unwrap_err();
        assert!(err.contains("topology"), "got: {err}");
    }
}

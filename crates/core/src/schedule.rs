//! The sampling schedule of a measurement run.

use serde::{Deserialize, Serialize};
use wormsim_stats::ConvergencePolicy;

/// When to warm up, how long to sample, and when to stop — the paper's
/// Section 3 procedure:
///
/// > "sufficient warmup time is provided to allow the network reach steady
/// > state. After the warmup time, the network traffic is sampled at
/// > periodic intervals. ... After each sampling period, new streams of
/// > random numbers are used ... and statistics are not gathered for some
/// > period of time."
///
/// # Example
///
/// ```
/// use wormsim::MeasurementSchedule;
///
/// let default = MeasurementSchedule::default();
/// assert!(default.warmup_cycles > 0);
/// let quick = MeasurementSchedule::quick();
/// assert!(quick.sample_cycles < default.sample_cycles);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSchedule {
    /// Cycles simulated before any statistics are gathered.
    pub warmup_cycles: u64,
    /// Length of each sampling period.
    pub sample_cycles: u64,
    /// Unmeasured cycles between samples (RNG streams are re-seeded here).
    pub gap_cycles: u64,
    /// The stopping rule (min/max samples, 5% tolerance).
    pub policy: ConvergencePolicy,
}

impl Default for MeasurementSchedule {
    fn default() -> Self {
        MeasurementSchedule {
            warmup_cycles: 10_000,
            sample_cycles: 5_000,
            gap_cycles: 1_000,
            policy: ConvergencePolicy::default(),
        }
    }
}

impl MeasurementSchedule {
    /// A short schedule for tests and doc examples — statistically rough,
    /// but structurally identical.
    pub fn quick() -> Self {
        MeasurementSchedule {
            warmup_cycles: 1_500,
            sample_cycles: 1_500,
            gap_cycles: 300,
            policy: ConvergencePolicy {
                max_samples: 5,
                ..ConvergencePolicy::default()
            },
        }
    }

    /// A long schedule for saturation points, where the paper notes
    /// "longer warmup and sampling times are needed to achieve
    /// convergence".
    pub fn saturation() -> Self {
        MeasurementSchedule {
            warmup_cycles: 20_000,
            sample_cycles: 10_000,
            gap_cycles: 2_000,
            policy: ConvergencePolicy::default(),
        }
    }

    /// Upper bound on simulated cycles for one run under this schedule.
    pub fn max_cycles(&self) -> u64 {
        self.warmup_cycles + self.policy.max_samples as u64 * (self.sample_cycles + self.gap_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_cycles_bounds_the_run() {
        let s = MeasurementSchedule::default();
        assert_eq!(s.max_cycles(), 10_000 + 15 * (5_000 + 1_000));
    }

    #[test]
    fn quick_is_shorter_than_saturation() {
        assert!(
            MeasurementSchedule::quick().max_cycles()
                < MeasurementSchedule::saturation().max_cycles()
        );
    }
}

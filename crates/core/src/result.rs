//! Results of measurement runs.

use serde::{Deserialize, Serialize};
use wormsim_engine::DeadlockReport;
use wormsim_stats::{ConfidenceInterval, ConvergenceStatus};

/// Latency summary of one hop class (messages travelling a given number of
/// hops) — the strata of the paper's estimator, reported individually.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// The hop count of this class.
    pub hops: u16,
    /// Messages measured in this class.
    pub count: u64,
    /// Mean latency of the class, in cycles.
    pub mean: f64,
}

/// The converged measurement of one `(configuration, offered load)` point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// The routing algorithm's short name.
    pub algorithm: String,
    /// The traffic pattern's name.
    pub traffic: String,
    /// Offered load as a fraction of channel capacity (the paper's x-axis).
    pub offered_load: f64,
    /// The per-node, per-cycle injection rate that produced it (Eq. 4).
    pub injection_rate: f64,
    /// Stratified average message latency in cycles, with its 95% bound.
    pub latency: ConfidenceInterval,
    /// Latency percentiles over all measured messages (p50, p95, p99), in
    /// cycles.
    pub latency_percentiles: [u64; 3],
    /// The slowest measured message, in cycles.
    pub latency_max: u64,
    /// Per-hop-class latency breakdown (classes with measurements only).
    pub class_latencies: Vec<ClassLatency>,
    /// Measured channel utilization: flit-hops over channel capacity —
    /// the paper's "achieved channel utilization" / normalized throughput.
    pub achieved_utilization: f64,
    /// Messages delivered per node per cycle.
    pub delivery_rate: f64,
    /// Messages accepted (past congestion control) per node per cycle.
    pub acceptance_rate: f64,
    /// Fraction of generated messages refused by congestion control.
    pub refused_fraction: f64,
    /// Messages measured across all sampling periods.
    pub messages_measured: u64,
    /// How the run ended.
    pub convergence: ConvergenceStatus,
    /// Number of samples taken.
    pub samples: usize,
    /// Total cycles simulated (warmup + samples + gaps).
    pub cycles_simulated: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second — the simulator's own speed.
    pub cycles_per_sec: f64,
    /// Set if the deadlock watchdog fired during the run.
    #[serde(skip)]
    pub deadlock: Option<DeadlockReport>,
}

impl RunResult {
    /// Whether the run produced a trustworthy steady-state estimate.
    pub fn is_converged(&self) -> bool {
        self.convergence.is_converged() && self.deadlock.is_none()
    }
}

/// One point of a load sweep: the result plus its position in the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Index within the sweep.
    pub index: usize,
    /// The measurement at this load.
    pub result: RunResult,
}

/// Summary statistics over a sweep (peak throughput and where it occurs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// The highest achieved utilization across the sweep.
    pub peak_utilization: f64,
    /// The offered load at which the peak occurred.
    pub peak_at_offered: f64,
}

impl SweepSummary {
    /// Computes the summary of a sweep.
    ///
    /// Returns `None` for an empty sweep.
    pub fn of(results: &[RunResult]) -> Option<SweepSummary> {
        results
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("utilizations are finite")
            })
            .map(|best| SweepSummary {
                peak_utilization: best.achieved_utilization,
                peak_at_offered: best.offered_load,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(offered: f64, util: f64) -> RunResult {
        RunResult {
            algorithm: "phop".into(),
            traffic: "uniform".into(),
            offered_load: offered,
            injection_rate: 0.01,
            latency: ConfidenceInterval::new(30.0, 1.0),
            latency_percentiles: [28, 40, 55],
            latency_max: 90,
            class_latencies: Vec::new(),
            achieved_utilization: util,
            delivery_rate: 0.01,
            acceptance_rate: 0.01,
            refused_fraction: 0.0,
            messages_measured: 1000,
            convergence: ConvergenceStatus::Converged,
            samples: 3,
            cycles_simulated: 30_000,
            wall_seconds: 0.5,
            cycles_per_sec: 60_000.0,
            deadlock: None,
        }
    }

    #[test]
    fn summary_finds_peak() {
        let sweep = vec![result(0.2, 0.2), result(0.6, 0.55), result(0.8, 0.50)];
        let s = SweepSummary::of(&sweep).unwrap();
        assert_eq!(s.peak_utilization, 0.55);
        assert_eq!(s.peak_at_offered, 0.6);
        assert_eq!(SweepSummary::of(&[]), None);
    }

    #[test]
    fn convergence_gate() {
        let mut r = result(0.2, 0.2);
        assert!(r.is_converged());
        r.convergence = ConvergenceStatus::MaxSamplesReached;
        assert!(!r.is_converged());
    }
}

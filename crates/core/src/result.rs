//! Results of measurement runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_engine::{DeadlockReport, LivelockReport};
use wormsim_stats::{ConfidenceInterval, ConvergenceStatus};

/// How a measurement run ended.
///
/// Sweeps over degraded networks record one of these per point instead of
/// failing: a fault plan that partitions the network, a non-adaptive
/// algorithm wedging on a dead link, or a run blowing its cycle budget all
/// produce a `RunResult` tagged with the outcome, and the remaining sweep
/// points still run.
///
/// Ordering of severity when several conditions hold at once:
/// `Deadlocked` > `LiveLocked` > `BudgetExceeded` > `Completed`/`Saturated`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run converged under the measurement policy.
    Completed,
    /// The run ended at its sample cap without converging — the usual
    /// signature of operation at or past saturation.
    Saturated,
    /// The deadlock watchdog fired: flits in flight, no forward progress.
    Deadlocked,
    /// The livelock guard found messages over the hop or age budget while
    /// the network was still making progress.
    LiveLocked,
    /// The run was cut short by its cycle or wall-clock budget.
    BudgetExceeded,
    /// The fault plan left no routable source–destination pair; nothing
    /// was simulated.
    Unroutable,
}

impl RunOutcome {
    /// Short lowercase tag for CSV columns and manifests.
    pub fn tag(self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Saturated => "saturated",
            RunOutcome::Deadlocked => "deadlocked",
            RunOutcome::LiveLocked => "livelocked",
            RunOutcome::BudgetExceeded => "budget_exceeded",
            RunOutcome::Unroutable => "unroutable",
        }
    }

    /// Whether the run produced steady-state statistics worth plotting
    /// (`Completed` or `Saturated` — the saturation points of the paper's
    /// curves are exactly the non-converged ones).
    pub fn has_statistics(self) -> bool {
        matches!(self, RunOutcome::Completed | RunOutcome::Saturated)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Latency summary of one hop class (messages travelling a given number of
/// hops) — the strata of the paper's estimator, reported individually.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// The hop count of this class.
    pub hops: u16,
    /// Messages measured in this class.
    pub count: u64,
    /// Mean latency of the class, in cycles.
    pub mean: f64,
}

/// The converged measurement of one `(configuration, offered load)` point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// The routing algorithm's short name.
    pub algorithm: String,
    /// The traffic pattern's name.
    pub traffic: String,
    /// Offered load as a fraction of channel capacity (the paper's x-axis).
    pub offered_load: f64,
    /// The per-node, per-cycle injection rate that produced it (Eq. 4).
    pub injection_rate: f64,
    /// Stratified average message latency in cycles, with its 95% bound.
    pub latency: ConfidenceInterval,
    /// Latency percentiles over all measured messages (p50, p95, p99), in
    /// cycles.
    pub latency_percentiles: [u64; 3],
    /// The slowest measured message, in cycles.
    pub latency_max: u64,
    /// Per-hop-class latency breakdown (classes with measurements only).
    pub class_latencies: Vec<ClassLatency>,
    /// Measured channel utilization: flit-hops over channel capacity —
    /// the paper's "achieved channel utilization" / normalized throughput.
    pub achieved_utilization: f64,
    /// Messages delivered per node per cycle.
    pub delivery_rate: f64,
    /// Messages accepted (past congestion control) per node per cycle.
    pub acceptance_rate: f64,
    /// Fraction of generated messages refused by congestion control.
    pub refused_fraction: f64,
    /// Messages measured across all sampling periods.
    pub messages_measured: u64,
    /// How the run ended.
    pub convergence: ConvergenceStatus,
    /// Number of samples taken.
    pub samples: usize,
    /// Total cycles simulated (warmup + samples + gaps).
    pub cycles_simulated: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second — the simulator's own speed.
    pub cycles_per_sec: f64,
    /// How the run ended (see [`RunOutcome`]).
    pub outcome: RunOutcome,
    /// Observability events dropped across the run's attached sinks (ring
    /// eviction or I/O failure); 0 for unobserved runs.
    pub dropped_events: u64,
    /// Set if the deadlock watchdog fired during the run.
    #[serde(skip)]
    pub deadlock: Option<DeadlockReport>,
    /// Set if the livelock guard flagged messages over budget.
    #[serde(skip)]
    pub livelock: Option<LivelockReport>,
}

impl RunResult {
    /// Whether the run produced a trustworthy steady-state estimate.
    pub fn is_converged(&self) -> bool {
        self.convergence.is_converged() && self.outcome == RunOutcome::Completed
    }
}

/// One point of a load sweep: the result plus its position in the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Index within the sweep.
    pub index: usize,
    /// The measurement at this load.
    pub result: RunResult,
}

/// Summary statistics over a sweep (peak throughput and where it occurs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// The highest achieved utilization across the sweep.
    pub peak_utilization: f64,
    /// The offered load at which the peak occurred.
    pub peak_at_offered: f64,
}

impl SweepSummary {
    /// Computes the summary of a sweep.
    ///
    /// Returns `None` for an empty sweep.
    pub fn of(results: &[RunResult]) -> Option<SweepSummary> {
        results
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("utilizations are finite")
            })
            .map(|best| SweepSummary {
                peak_utilization: best.achieved_utilization,
                peak_at_offered: best.offered_load,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(offered: f64, util: f64) -> RunResult {
        RunResult {
            algorithm: "phop".into(),
            traffic: "uniform".into(),
            offered_load: offered,
            injection_rate: 0.01,
            latency: ConfidenceInterval::new(30.0, 1.0),
            latency_percentiles: [28, 40, 55],
            latency_max: 90,
            class_latencies: Vec::new(),
            achieved_utilization: util,
            delivery_rate: 0.01,
            acceptance_rate: 0.01,
            refused_fraction: 0.0,
            messages_measured: 1000,
            convergence: ConvergenceStatus::Converged,
            samples: 3,
            cycles_simulated: 30_000,
            wall_seconds: 0.5,
            cycles_per_sec: 60_000.0,
            outcome: RunOutcome::Completed,
            dropped_events: 0,
            deadlock: None,
            livelock: None,
        }
    }

    #[test]
    fn summary_finds_peak() {
        let sweep = vec![result(0.2, 0.2), result(0.6, 0.55), result(0.8, 0.50)];
        let s = SweepSummary::of(&sweep).unwrap();
        assert_eq!(s.peak_utilization, 0.55);
        assert_eq!(s.peak_at_offered, 0.6);
        assert_eq!(SweepSummary::of(&[]), None);
    }

    #[test]
    fn convergence_gate() {
        let mut r = result(0.2, 0.2);
        assert!(r.is_converged());
        r.convergence = ConvergenceStatus::MaxSamplesReached;
        assert!(!r.is_converged());
    }

    #[test]
    fn outcome_taxonomy() {
        assert_eq!(RunOutcome::BudgetExceeded.tag(), "budget_exceeded");
        assert_eq!(RunOutcome::LiveLocked.to_string(), "livelocked");
        assert!(RunOutcome::Saturated.has_statistics());
        assert!(!RunOutcome::Unroutable.has_statistics());
        let mut r = result(0.2, 0.2);
        r.outcome = RunOutcome::Deadlocked;
        assert!(!r.is_converged());
    }
}

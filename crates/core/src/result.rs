//! Results of measurement runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_engine::{DeadlockReport, LivelockReport};
use wormsim_observe::json::Value;
use wormsim_observe::{JsonObject, JsonRecord};
use wormsim_stats::{ConfidenceInterval, ConvergenceStatus};
use wormsim_verify::{TriageReport, TriageVerdict};

/// What a worker panic looked like from the orchestrator's side.
///
/// Carried by [`RunOutcome::Harness`]: the experiment harness caught an
/// unwinding panic with `catch_unwind` and converted it into a structured
/// outcome so the surrounding sweep keeps running.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PanicInfo {
    /// The panic payload, rendered (`&str`/`String` payloads verbatim;
    /// anything else as a placeholder).
    pub message: String,
}

/// How a measurement run ended.
///
/// Sweeps over degraded networks record one of these per point instead of
/// failing: a fault plan that partitions the network, a non-adaptive
/// algorithm wedging on a dead link, a run blowing its cycle budget, or a
/// worker panic all produce a `RunResult` tagged with the outcome, and the
/// remaining sweep points still run.
///
/// Ordering of severity when several conditions hold at once:
/// `Deadlocked` > `LiveLocked` > `Interrupted` > `BudgetExceeded` >
/// `Completed`/`Saturated`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run converged under the measurement policy.
    Completed,
    /// The run ended at its sample cap without converging — the usual
    /// signature of operation at or past saturation.
    Saturated,
    /// The deadlock watchdog fired: flits in flight, no forward progress.
    Deadlocked,
    /// The livelock guard found messages over the hop or age budget while
    /// the network was still making progress.
    LiveLocked,
    /// The run was cut short by its cycle or wall-clock budget.
    BudgetExceeded,
    /// The fault plan left no routable source–destination pair; nothing
    /// was simulated.
    Unroutable,
    /// A cooperative cancellation token tripped mid-run (SIGINT drain):
    /// whatever statistics were gathered are partial and the point should
    /// be re-run, not journaled.
    Interrupted,
    /// The harness itself failed: the worker running this point panicked.
    /// The simulation produced no statistics; the payload records what the
    /// panic said.
    Harness(PanicInfo),
}

impl RunOutcome {
    /// Short lowercase tag for CSV columns and manifests.
    pub fn tag(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Saturated => "saturated",
            RunOutcome::Deadlocked => "deadlocked",
            RunOutcome::LiveLocked => "livelocked",
            RunOutcome::BudgetExceeded => "budget_exceeded",
            RunOutcome::Unroutable => "unroutable",
            RunOutcome::Interrupted => "interrupted",
            RunOutcome::Harness(_) => "harness_panic",
        }
    }

    /// Whether the run produced steady-state statistics worth plotting
    /// (`Completed` or `Saturated` — the saturation points of the paper's
    /// curves are exactly the non-converged ones).
    pub fn has_statistics(&self) -> bool {
        matches!(self, RunOutcome::Completed | RunOutcome::Saturated)
    }

    /// Whether a retry might plausibly end differently: wall-clock budget
    /// trips depend on machine load, and harness panics may be transient
    /// environment failures. Deterministic outcomes (deadlock, livelock,
    /// unroutable, convergence) always reproduce under the same seed, so
    /// retrying them is wasted work.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunOutcome::BudgetExceeded | RunOutcome::Harness(_))
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Latency summary of one hop class (messages travelling a given number of
/// hops) — the strata of the paper's estimator, reported individually.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// The hop count of this class.
    pub hops: u16,
    /// Messages measured in this class.
    pub count: u64,
    /// Mean latency of the class, in cycles.
    pub mean: f64,
}

/// The converged measurement of one `(configuration, offered load)` point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// The routing algorithm's short name.
    pub algorithm: String,
    /// The traffic pattern's name.
    pub traffic: String,
    /// Offered load as a fraction of channel capacity (the paper's x-axis).
    pub offered_load: f64,
    /// The per-node, per-cycle injection rate that produced it (Eq. 4).
    pub injection_rate: f64,
    /// Stratified average message latency in cycles, with its 95% bound.
    pub latency: ConfidenceInterval,
    /// Latency percentiles over all measured messages (p50, p95, p99), in
    /// cycles.
    pub latency_percentiles: [u64; 3],
    /// The slowest measured message, in cycles.
    pub latency_max: u64,
    /// Per-hop-class latency breakdown (classes with measurements only).
    pub class_latencies: Vec<ClassLatency>,
    /// Measured channel utilization: flit-hops over channel capacity —
    /// the paper's "achieved channel utilization" / normalized throughput.
    pub achieved_utilization: f64,
    /// Messages delivered per node per cycle.
    pub delivery_rate: f64,
    /// Messages accepted (past congestion control) per node per cycle.
    pub acceptance_rate: f64,
    /// Fraction of generated messages refused by congestion control.
    pub refused_fraction: f64,
    /// Messages measured across all sampling periods.
    pub messages_measured: u64,
    /// How the run ended.
    pub convergence: ConvergenceStatus,
    /// Number of samples taken.
    pub samples: usize,
    /// Total cycles simulated (warmup + samples + gaps).
    pub cycles_simulated: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second — the simulator's own speed.
    pub cycles_per_sec: f64,
    /// How the run ended (see [`RunOutcome`]).
    pub outcome: RunOutcome,
    /// Observability events dropped across the run's attached sinks (ring
    /// eviction or I/O failure); 0 for unobserved runs.
    pub dropped_events: u64,
    /// Set if the deadlock watchdog fired during the run.
    #[serde(skip)]
    pub deadlock: Option<DeadlockReport>,
    /// Set if the livelock guard flagged messages over budget.
    #[serde(skip)]
    pub livelock: Option<LivelockReport>,
    /// Refined stall verdict from `wormsim-verify`: present exactly when
    /// the outcome is `Deadlocked` or `LiveLocked`, distinguishing a
    /// validated circular wait (`confirmed_unsafe`) from a stall with no
    /// self-sustaining cycle (`budget_artifact`).
    #[serde(skip)]
    pub triage: Option<TriageReport>,
}

/// Writes a float that must survive a JSON round-trip bit-exactly.
///
/// Finite values go through `{}` Display (Rust's shortest round-trip
/// representation; the vendored parser reads numbers back with
/// `f64::from_str`, which inverts it exactly). Non-finite values — which
/// JSON numbers cannot express and [`JsonObject::field_f64`] would null
/// out — are written as the strings `"inf"`, `"-inf"`, `"nan"`.
fn field_f64_exact(obj: &mut JsonObject<'_>, key: &str, value: f64) {
    if value.is_finite() {
        obj.field_f64(key, value);
    } else if value.is_nan() {
        obj.field_str(key, "nan");
    } else if value > 0.0 {
        obj.field_str(key, "inf");
    } else {
        obj.field_str(key, "-inf");
    }
}

/// Inverse of [`field_f64_exact`].
fn get_f64_exact(value: &Value, key: &str) -> Result<f64, String> {
    let v = value
        .get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    if let Some(n) = v.as_f64() {
        return Ok(n);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some("nan") => Ok(f64::NAN),
        _ => Err(format!("field '{key}' is not a number")),
    }
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn get_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn convergence_tag(status: ConvergenceStatus) -> &'static str {
    match status {
        ConvergenceStatus::NeedMoreSamples => "need_more_samples",
        ConvergenceStatus::Converged => "converged",
        ConvergenceStatus::MaxSamplesReached => "max_samples_reached",
    }
}

fn convergence_from_tag(tag: &str) -> Result<ConvergenceStatus, String> {
    match tag {
        "need_more_samples" => Ok(ConvergenceStatus::NeedMoreSamples),
        "converged" => Ok(ConvergenceStatus::Converged),
        "max_samples_reached" => Ok(ConvergenceStatus::MaxSamplesReached),
        other => Err(format!("unknown convergence tag '{other}'")),
    }
}

impl JsonRecord for RunResult {
    /// Encodes the result for the run journal. Every field the CSV and
    /// table renderers read is preserved exactly — including non-finite
    /// floats and the deadlock/livelock reports — so a journal-replayed
    /// result renders byte-identically to the original.
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field_str("algorithm", &self.algorithm)
            .field_str("traffic", &self.traffic);
        field_f64_exact(&mut obj, "offered_load", self.offered_load);
        field_f64_exact(&mut obj, "injection_rate", self.injection_rate);
        field_f64_exact(&mut obj, "latency_mean", self.latency.mean());
        field_f64_exact(&mut obj, "latency_half_width", self.latency.half_width());
        obj.field_u64_array("latency_percentiles", &self.latency_percentiles)
            .field_u64("latency_max", self.latency_max);
        let mut classes = String::from("[");
        for (i, c) in self.class_latencies.iter().enumerate() {
            if i > 0 {
                classes.push(',');
            }
            let mut class_obj = JsonObject::begin(&mut classes);
            class_obj
                .field_u64("hops", u64::from(c.hops))
                .field_u64("count", c.count);
            field_f64_exact(&mut class_obj, "mean", c.mean);
            class_obj.finish();
        }
        classes.push(']');
        obj.field_raw("class_latencies", &classes);
        field_f64_exact(&mut obj, "achieved_utilization", self.achieved_utilization);
        field_f64_exact(&mut obj, "delivery_rate", self.delivery_rate);
        field_f64_exact(&mut obj, "acceptance_rate", self.acceptance_rate);
        field_f64_exact(&mut obj, "refused_fraction", self.refused_fraction);
        obj.field_u64("messages_measured", self.messages_measured)
            .field_str("convergence", convergence_tag(self.convergence))
            .field_u64("samples", self.samples as u64)
            .field_u64("cycles_simulated", self.cycles_simulated);
        field_f64_exact(&mut obj, "wall_seconds", self.wall_seconds);
        field_f64_exact(&mut obj, "cycles_per_sec", self.cycles_per_sec);
        obj.field_str("outcome", self.outcome.tag());
        if let RunOutcome::Harness(info) = &self.outcome {
            obj.field_str("panic_message", &info.message);
        }
        obj.field_u64("dropped_events", self.dropped_events);
        if let Some(d) = &self.deadlock {
            let mut nested = String::new();
            let mut report = JsonObject::begin(&mut nested);
            report
                .field_u64("detected_at", d.detected_at)
                .field_u64("last_progress", d.last_progress)
                .field_u64("flits_in_flight", d.flits_in_flight)
                .field_u64("live_messages", d.live_messages as u64);
            report.finish();
            obj.field_raw("deadlock", &nested);
        }
        if let Some(l) = &self.livelock {
            let mut nested = String::new();
            let mut report = JsonObject::begin(&mut nested);
            report
                .field_u64("detected_at", l.detected_at)
                .field_u64("messages_over_budget", l.messages_over_budget as u64)
                .field_u64("max_hops", u64::from(l.max_hops))
                .field_u64("max_age", l.max_age);
            report.finish();
            obj.field_raw("livelock", &nested);
        }
        if let Some(t) = &self.triage {
            let mut nested = String::new();
            let mut report = JsonObject::begin(&mut nested);
            report
                .field_str("verdict", t.verdict.tag())
                .field_u64("edges", t.edges as u64)
                .field_u64_array("cycle_messages", &t.cycle_messages)
                .field_u64_array("cycle_channels", &t.cycle_channels);
            report.finish();
            obj.field_raw("triage", &nested);
        }
        obj.finish();
    }
}

impl RunResult {
    /// Whether the run produced a trustworthy steady-state estimate.
    pub fn is_converged(&self) -> bool {
        self.convergence.is_converged() && self.outcome == RunOutcome::Completed
    }

    /// Decodes a journal record written by
    /// [`write_json`](JsonRecord::write_json).
    pub fn from_json(value: &Value) -> Result<RunResult, String> {
        let percentiles = value
            .get("latency_percentiles")
            .and_then(Value::as_array)
            .ok_or("missing field 'latency_percentiles'")?;
        if percentiles.len() != 3 {
            return Err(format!(
                "expected 3 latency percentiles, got {}",
                percentiles.len()
            ));
        }
        let mut latency_percentiles = [0u64; 3];
        for (slot, v) in latency_percentiles.iter_mut().zip(percentiles) {
            *slot = v.as_u64().ok_or("non-integer latency percentile")?;
        }
        let mut class_latencies = Vec::new();
        for c in value
            .get("class_latencies")
            .and_then(Value::as_array)
            .ok_or("missing field 'class_latencies'")?
        {
            class_latencies.push(ClassLatency {
                hops: u16::try_from(get_u64(c, "hops")?)
                    .map_err(|_| "hop class out of range".to_string())?,
                count: get_u64(c, "count")?,
                mean: get_f64_exact(c, "mean")?,
            });
        }
        let outcome = match get_str(value, "outcome")? {
            "completed" => RunOutcome::Completed,
            "saturated" => RunOutcome::Saturated,
            "deadlocked" => RunOutcome::Deadlocked,
            "livelocked" => RunOutcome::LiveLocked,
            "budget_exceeded" => RunOutcome::BudgetExceeded,
            "unroutable" => RunOutcome::Unroutable,
            "interrupted" => RunOutcome::Interrupted,
            "harness_panic" => RunOutcome::Harness(PanicInfo {
                message: get_str(value, "panic_message")?.to_owned(),
            }),
            other => return Err(format!("unknown outcome tag '{other}'")),
        };
        let deadlock = match value.get("deadlock") {
            Some(d) => Some(DeadlockReport {
                detected_at: get_u64(d, "detected_at")?,
                last_progress: get_u64(d, "last_progress")?,
                flits_in_flight: get_u64(d, "flits_in_flight")?,
                live_messages: get_u64(d, "live_messages")? as usize,
            }),
            None => None,
        };
        let livelock = match value.get("livelock") {
            Some(l) => Some(LivelockReport {
                detected_at: get_u64(l, "detected_at")?,
                messages_over_budget: get_u64(l, "messages_over_budget")? as usize,
                max_hops: u32::try_from(get_u64(l, "max_hops")?)
                    .map_err(|_| "max_hops out of range".to_string())?,
                max_age: get_u64(l, "max_age")?,
            }),
            None => None,
        };
        // Pre-verification journals simply lack the field: tolerate its
        // absence instead of failing the resume.
        let triage = match value.get("triage") {
            Some(t) => {
                let u64_array = |key: &str| -> Result<Vec<u64>, String> {
                    t.get(key)
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("missing field 'triage.{key}'"))?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| format!("non-integer in '{key}'")))
                        .collect()
                };
                Some(TriageReport {
                    verdict: TriageVerdict::from_tag(get_str(t, "verdict")?)?,
                    edges: get_u64(t, "edges")? as usize,
                    cycle_messages: u64_array("cycle_messages")?,
                    cycle_channels: u64_array("cycle_channels")?,
                })
            }
            None => None,
        };
        Ok(RunResult {
            algorithm: get_str(value, "algorithm")?.to_owned(),
            traffic: get_str(value, "traffic")?.to_owned(),
            offered_load: get_f64_exact(value, "offered_load")?,
            injection_rate: get_f64_exact(value, "injection_rate")?,
            latency: ConfidenceInterval::new(
                get_f64_exact(value, "latency_mean")?,
                get_f64_exact(value, "latency_half_width")?,
            ),
            latency_percentiles,
            latency_max: get_u64(value, "latency_max")?,
            class_latencies,
            achieved_utilization: get_f64_exact(value, "achieved_utilization")?,
            delivery_rate: get_f64_exact(value, "delivery_rate")?,
            acceptance_rate: get_f64_exact(value, "acceptance_rate")?,
            refused_fraction: get_f64_exact(value, "refused_fraction")?,
            messages_measured: get_u64(value, "messages_measured")?,
            convergence: convergence_from_tag(get_str(value, "convergence")?)?,
            samples: get_u64(value, "samples")? as usize,
            cycles_simulated: get_u64(value, "cycles_simulated")?,
            wall_seconds: get_f64_exact(value, "wall_seconds")?,
            cycles_per_sec: get_f64_exact(value, "cycles_per_sec")?,
            outcome,
            dropped_events: get_u64(value, "dropped_events")?,
            deadlock,
            livelock,
            triage,
        })
    }
}

/// One point of a load sweep: the result plus its position in the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Index within the sweep.
    pub index: usize,
    /// The measurement at this load.
    pub result: RunResult,
}

/// Summary statistics over a sweep (peak throughput and where it occurs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// The highest achieved utilization across the sweep.
    pub peak_utilization: f64,
    /// The offered load at which the peak occurred.
    pub peak_at_offered: f64,
}

impl SweepSummary {
    /// Computes the summary of a sweep.
    ///
    /// Returns `None` for an empty sweep.
    pub fn of(results: &[RunResult]) -> Option<SweepSummary> {
        results
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("utilizations are finite")
            })
            .map(|best| SweepSummary {
                peak_utilization: best.achieved_utilization,
                peak_at_offered: best.offered_load,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(offered: f64, util: f64) -> RunResult {
        RunResult {
            algorithm: "phop".into(),
            traffic: "uniform".into(),
            offered_load: offered,
            injection_rate: 0.01,
            latency: ConfidenceInterval::new(30.0, 1.0),
            latency_percentiles: [28, 40, 55],
            latency_max: 90,
            class_latencies: Vec::new(),
            achieved_utilization: util,
            delivery_rate: 0.01,
            acceptance_rate: 0.01,
            refused_fraction: 0.0,
            messages_measured: 1000,
            convergence: ConvergenceStatus::Converged,
            samples: 3,
            cycles_simulated: 30_000,
            wall_seconds: 0.5,
            cycles_per_sec: 60_000.0,
            outcome: RunOutcome::Completed,
            dropped_events: 0,
            deadlock: None,
            livelock: None,
            triage: None,
        }
    }

    #[test]
    fn summary_finds_peak() {
        let sweep = vec![result(0.2, 0.2), result(0.6, 0.55), result(0.8, 0.50)];
        let s = SweepSummary::of(&sweep).unwrap();
        assert_eq!(s.peak_utilization, 0.55);
        assert_eq!(s.peak_at_offered, 0.6);
        assert_eq!(SweepSummary::of(&[]), None);
    }

    #[test]
    fn convergence_gate() {
        let mut r = result(0.2, 0.2);
        assert!(r.is_converged());
        r.convergence = ConvergenceStatus::MaxSamplesReached;
        assert!(!r.is_converged());
    }

    #[test]
    fn outcome_taxonomy() {
        assert_eq!(RunOutcome::BudgetExceeded.tag(), "budget_exceeded");
        assert_eq!(RunOutcome::LiveLocked.to_string(), "livelocked");
        assert!(RunOutcome::Saturated.has_statistics());
        assert!(!RunOutcome::Unroutable.has_statistics());
        assert!(!RunOutcome::Interrupted.has_statistics());
        assert!(RunOutcome::BudgetExceeded.is_transient());
        let panic = RunOutcome::Harness(PanicInfo {
            message: "boom".into(),
        });
        assert!(panic.is_transient() && !panic.has_statistics());
        assert_eq!(panic.tag(), "harness_panic");
        assert!(!RunOutcome::Deadlocked.is_transient());
        let mut r = result(0.2, 0.2);
        r.outcome = RunOutcome::Deadlocked;
        assert!(!r.is_converged());
    }

    fn roundtrip(r: &RunResult) -> RunResult {
        let text = r.to_json();
        let value = wormsim_observe::json::from_str(&text).expect("journal line parses");
        RunResult::from_json(&value).expect("journal line decodes")
    }

    #[test]
    fn journal_roundtrip_is_exact() {
        let mut r = result(0.3, 0.27);
        // Awkward floats: shortest-Display representations must survive.
        r.injection_rate = 0.1 + 0.2; // 0.30000000000000004
                                      // One ULP off round numbers: the longest shortest-representations.
        let ulp_up = |x: f64| f64::from_bits(x.to_bits() + 1);
        r.latency = ConfidenceInterval::new(ulp_up(31.4), 0.9876543210987654);
        r.wall_seconds = 1.0 / 3.0;
        r.cycles_per_sec = 1.23e8;
        r.class_latencies = vec![
            ClassLatency {
                hops: 1,
                count: 512,
                mean: 17.25,
            },
            ClassLatency {
                hops: 7,
                count: 3,
                mean: ulp_up(99.0),
            },
        ];
        let back = roundtrip(&r);
        assert_eq!(back.algorithm, r.algorithm);
        assert_eq!(back.injection_rate.to_bits(), r.injection_rate.to_bits());
        assert_eq!(back.latency.mean().to_bits(), r.latency.mean().to_bits());
        assert_eq!(
            back.latency.half_width().to_bits(),
            r.latency.half_width().to_bits()
        );
        assert_eq!(back.wall_seconds.to_bits(), r.wall_seconds.to_bits());
        assert_eq!(back.class_latencies, r.class_latencies);
        assert_eq!(back.latency_percentiles, r.latency_percentiles);
        assert_eq!(back.convergence, r.convergence);
        assert_eq!(back.outcome, r.outcome);
        // The whole record re-encodes to the same bytes.
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn journal_roundtrip_preserves_nonfinite_and_reports() {
        let mut r = result(0.9, 0.0);
        r.outcome = RunOutcome::Unroutable;
        r.latency = ConfidenceInterval::new(0.0, f64::INFINITY);
        r.convergence = ConvergenceStatus::NeedMoreSamples;
        r.deadlock = Some(DeadlockReport {
            detected_at: 52_000,
            last_progress: 50_100,
            flits_in_flight: 312,
            live_messages: 41,
        });
        r.livelock = Some(LivelockReport {
            detected_at: 48_000,
            messages_over_budget: 5,
            max_hops: 211,
            max_age: 30_000,
        });
        r.triage = Some(TriageReport {
            verdict: TriageVerdict::ConfirmedUnsafe,
            edges: 7,
            cycle_messages: vec![3, 9, 12],
            cycle_channels: vec![40, 44, 32],
        });
        let back = roundtrip(&r);
        assert!(back.latency.half_width().is_infinite());
        assert_eq!(back.deadlock, r.deadlock);
        assert_eq!(back.livelock, r.livelock);
        assert_eq!(back.triage, r.triage);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn journal_without_triage_field_still_decodes() {
        // Journals written before runtime triage existed have no 'triage'
        // key; resuming from them must not fail.
        let r = result(0.5, 0.4);
        let text = r.to_json();
        assert!(!text.contains("triage"));
        let value = wormsim_observe::json::from_str(&text).unwrap();
        assert_eq!(RunResult::from_json(&value).unwrap().triage, None);
    }

    #[test]
    fn journal_roundtrip_keeps_panic_message() {
        let mut r = result(0.5, 0.0);
        r.outcome = RunOutcome::Harness(PanicInfo {
            message: "index out of bounds: the len is 4 but the index is 9".into(),
        });
        let back = roundtrip(&r);
        assert_eq!(back.outcome, r.outcome);
    }

    #[test]
    fn journal_decode_rejects_garbage() {
        let value = wormsim_observe::json::from_str("{\"algorithm\":\"phop\"}").unwrap();
        assert!(RunResult::from_json(&value).is_err());
        let mut r = result(0.2, 0.2);
        r.outcome = RunOutcome::Completed;
        let text = r.to_json().replace("completed", "exploded");
        let value = wormsim_observe::json::from_str(&text).unwrap();
        assert!(RunResult::from_json(&value)
            .unwrap_err()
            .contains("unknown outcome"));
    }
}

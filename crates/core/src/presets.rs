//! Ready-made configurations for every experiment in the paper.
//!
//! Each figure of the evaluation section maps to a [`FigureSpec`]; pass it
//! to [`experiments_for`] to get one [`Experiment`] per
//! `(algorithm, offered load)` point.

use crate::{Experiment, MeasurementSchedule, Switching};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Topology;
use wormsim_traffic::TrafficConfig;

/// The network every figure uses: the 16×16 torus.
pub fn paper_topology() -> Topology {
    Topology::torus(&[16, 16])
}

/// The six algorithms in the paper's legend order
/// (nbc, phop, nhop, 2pn, e-cube, nlast).
pub fn paper_algorithms() -> [AlgorithmKind; 6] {
    AlgorithmKind::all()
}

/// The offered-load sweep shared by the figures (fractions of capacity).
pub fn paper_loads() -> Vec<f64> {
    vec![0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
}

/// One reproducible experiment family: a figure or in-text study.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Identifier used in EXPERIMENTS.md and CSV filenames (e.g. `"fig3"`).
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// The network under test.
    pub topology: Topology,
    /// The workload.
    pub traffic: TrafficConfig,
    /// The switching discipline.
    pub switching: Switching,
    /// Offered loads to sweep.
    pub loads: Vec<f64>,
    /// Algorithms to compare.
    pub algorithms: Vec<AlgorithmKind>,
}

impl FigureSpec {
    /// Retargets this figure at a different network (`--topo` on the figure
    /// binaries), keeping everything else.
    ///
    /// Hotspot coordinates are remapped to the same *relative* position, so
    /// the paper's corner hotspot `(15, 15)` on the 16×16 torus stays the far
    /// corner on a 64×64 torus or an 8³ cube rather than falling out of
    /// range. Extra target dimensions reuse the last source coordinate's
    /// relative position.
    pub fn with_topology(&self, topology: Topology) -> FigureSpec {
        let traffic = match &self.traffic {
            TrafficConfig::Hotspot { nodes, fraction } => TrafficConfig::Hotspot {
                nodes: nodes
                    .iter()
                    .map(|coords| remap_coords(coords, &self.topology, &topology))
                    .collect(),
                fraction: *fraction,
            },
            other => other.clone(),
        };
        FigureSpec {
            id: self.id.clone(),
            title: format!("{} [{}]", self.title, topology.label()),
            topology,
            traffic,
            switching: self.switching,
            loads: self.loads.clone(),
            algorithms: self.algorithms.clone(),
        }
    }
}

/// Maps `coords` (a position in `from`) to the coordinates at the same
/// relative per-dimension position in `to`.
fn remap_coords(coords: &[u16], from: &Topology, to: &Topology) -> Vec<u16> {
    (0..to.num_dims())
        .map(|d| {
            let sd = d.min(from.num_dims() - 1).min(coords.len() - 1);
            let from_max = (from.radix(sd) - 1) as f64;
            let to_max = (to.radix(d) - 1) as f64;
            (coords[sd] as f64 / from_max * to_max).round() as u16
        })
        .collect()
}

/// Figure 3: uniform traffic of 16-flit worms on the 16×16 torus.
pub fn fig3() -> FigureSpec {
    FigureSpec {
        id: "fig3".to_owned(),
        title: "Uniform traffic of 16-flit worms".to_owned(),
        topology: paper_topology(),
        traffic: TrafficConfig::Uniform,
        switching: Switching::wormhole(),
        loads: paper_loads(),
        algorithms: paper_algorithms().to_vec(),
    }
}

/// Figure 4: 4% hotspot traffic, hotspot node (15, 15).
pub fn fig4() -> FigureSpec {
    FigureSpec {
        id: "fig4".to_owned(),
        title: "Hotspot traffic of 16-flit worms with 4% hotspot traffic".to_owned(),
        topology: paper_topology(),
        traffic: TrafficConfig::Hotspot {
            nodes: vec![vec![15, 15]],
            fraction: 0.04,
        },
        switching: Switching::wormhole(),
        loads: paper_loads(),
        algorithms: paper_algorithms().to_vec(),
    }
}

/// Figure 5: local traffic with 0.4 locality (7×7 neighborhoods, r = 3).
pub fn fig5() -> FigureSpec {
    FigureSpec {
        id: "fig5".to_owned(),
        title: "Local traffic of 16-flit worms with 0.4 locality fraction".to_owned(),
        topology: paper_topology(),
        traffic: TrafficConfig::Local { radius: 3 },
        switching: Switching::wormhole(),
        loads: paper_loads(),
        algorithms: paper_algorithms().to_vec(),
    }
}

/// The Section 3.4 in-text experiment: 2pn, nbc, and e-cube under
/// *virtual cut-through* switching, uniform traffic — the study that led
/// the authors to credit priority information for the hop schemes' edge.
pub fn vct_section_3_4() -> FigureSpec {
    FigureSpec {
        id: "vct34".to_owned(),
        title: "Virtual cut-through of 16-flit packets, uniform traffic".to_owned(),
        topology: paper_topology(),
        traffic: TrafficConfig::Uniform,
        switching: Switching::VirtualCutThrough,
        loads: paper_loads(),
        algorithms: vec![
            AlgorithmKind::NegativeHopBonusCards,
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::Ecube,
        ],
    }
}

/// All of the paper's experiment families.
pub fn all_figures() -> Vec<FigureSpec> {
    vec![fig3(), fig4(), fig5(), vct_section_3_4()]
}

/// Expands a [`FigureSpec`] into concrete experiments, one per
/// `(algorithm, load)` pair, with the given schedule and seed.
pub fn experiments_for(
    spec: &FigureSpec,
    schedule: MeasurementSchedule,
    seed: u64,
) -> Vec<Experiment> {
    let topo = spec.topology.clone();
    let mut experiments = Vec::new();
    for &algorithm in &spec.algorithms {
        for &load in &spec.loads {
            experiments.push(
                Experiment::new(topo.clone(), algorithm)
                    .traffic(spec.traffic.clone())
                    .switching(spec.switching)
                    .offered_load(load)
                    .schedule(schedule)
                    .seed(seed),
            );
        }
    }
    experiments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_matches_section_three() {
        let topo = paper_topology();
        assert_eq!(topo.num_nodes(), 256);
        assert_eq!(paper_algorithms().len(), 6);
        // The Figure 4 hotspot is node (15,15) at 4%.
        match fig4().traffic {
            TrafficConfig::Hotspot { nodes, fraction } => {
                assert_eq!(nodes, vec![vec![15, 15]]);
                assert_eq!(fraction, 0.04);
            }
            other => panic!("unexpected traffic {other:?}"),
        }
        // Figure 5 is the 7x7 neighborhood.
        assert_eq!(fig5().traffic, TrafficConfig::Local { radius: 3 });
    }

    #[test]
    fn experiments_expand_fully() {
        let spec = fig3();
        let experiments = experiments_for(&spec, MeasurementSchedule::quick(), 1);
        assert_eq!(experiments.len(), 6 * spec.loads.len());
    }

    #[test]
    fn vct_uses_cut_through() {
        let spec = vct_section_3_4();
        assert_eq!(spec.switching, Switching::VirtualCutThrough);
        assert_eq!(spec.algorithms.len(), 3);
    }

    #[test]
    fn with_topology_remaps_hotspots() {
        // The (15, 15) far corner stays the far corner on an 8³ cube...
        let cube = fig4().with_topology(Topology::k_ary_n_cube(8, 3));
        match &cube.traffic {
            TrafficConfig::Hotspot { nodes, fraction } => {
                assert_eq!(nodes, &vec![vec![7, 7, 7]]);
                assert_eq!(*fraction, 0.04);
            }
            other => panic!("unexpected traffic {other:?}"),
        }
        // ...and on a mixed-radix torus.
        let wide = fig4().with_topology(Topology::torus(&[32, 8]));
        match &wide.traffic {
            TrafficConfig::Hotspot { nodes, .. } => assert_eq!(nodes, &vec![vec![31, 7]]),
            other => panic!("unexpected traffic {other:?}"),
        }
        // Non-hotspot figures just swap the network.
        let big = fig3().with_topology(Topology::torus(&[64, 64]));
        assert_eq!(big.topology.num_nodes(), 4096);
        assert_eq!(big.traffic, TrafficConfig::Uniform);
        assert_eq!(big.id, "fig3");
    }

    #[test]
    fn all_figures_have_unique_ids() {
        let figs = all_figures();
        let mut ids: Vec<_> = figs.iter().map(|f| f.id.clone()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), figs.len());
    }
}

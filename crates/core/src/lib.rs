//! `wormsim` — a reproduction of Boppana & Chalasani, *A Comparison of
//! Adaptive Wormhole Routing Algorithms* (ISCA 1993).
//!
//! The crate drives a flit-level torus/mesh simulator through the paper's
//! measurement methodology and regenerates its evaluation:
//!
//! * **Six routing algorithms** — e-cube, north-last, 2pn, phop, nhop, nbc —
//!   plus a deliberately deadlock-prone `naive` strawman
//!   ([`AlgorithmKind`]).
//! * **Three switching disciplines** — wormhole, virtual cut-through,
//!   store-and-forward ([`Switching`]).
//! * **The paper's workloads** — uniform, hotspot, local traffic, plus the
//!   classic permutations ([`TrafficConfig`]).
//! * **The paper's statistics** — stratified hop-class latency estimation
//!   with dual convergence criteria ([`stats`]).
//! * **Fault injection** — static and transient link/node failures with
//!   livelock guards, run budgets, and a structured [`RunOutcome`] per run
//!   ([`faults`], [`Experiment::faults`]).
//!
//! The main entry point is [`Experiment`]: configure a network and an
//! offered load (as a fraction of channel capacity, the paper's x-axis),
//! call [`Experiment::run`], and receive a [`RunResult`] with converged
//! latency and throughput estimates.
//!
//! # Quickstart
//!
//! ```
//! use wormsim::{Experiment, AlgorithmKind, TrafficConfig};
//! use wormsim::topology::Topology;
//!
//! // Average message latency of phop on an 8x8 torus at 30% offered load.
//! let result = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
//!     .traffic(TrafficConfig::Uniform)
//!     .offered_load(0.3)
//!     .seed(1)
//!     .quick() // short schedule for doc tests; drop for real runs
//!     .run()?;
//! assert!(result.latency.mean() > 18.0); // at least the zero-load latency
//! assert!(result.achieved_utilization > 0.2);
//! # Ok::<(), wormsim::ExperimentError>(())
//! ```
//!
//! The paper's figures are available as presets: see [`presets`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
pub mod presets;
mod report;
mod result;
mod saturation;
mod schedule;
pub mod wire;

pub use experiment::{Experiment, ExperimentError};
pub use report::{format_results_table, format_sweep_csv};
pub use result::{ClassLatency, PanicInfo, RunOutcome, RunResult, SweepPoint, SweepSummary};
pub use saturation::SaturationPoint;
pub use schedule::MeasurementSchedule;
pub use wire::{wire_digest, WIRE_PROTOCOL};

// Re-export the substrate crates under stable names so downstream users
// need only one dependency.
pub use wormsim_engine as engine;
pub use wormsim_faults as faults;
pub use wormsim_observe as observe;
pub use wormsim_routing as routing;
pub use wormsim_stats as stats;
pub use wormsim_topology as topology;
pub use wormsim_traffic as traffic;
pub use wormsim_verify as verify;

// The most common types, re-exported flat for convenience.
pub use wormsim_engine::{
    CancelToken, EjectionModel, LivelockReport, NetworkBuilder, ObserverHandle, SelectionPolicy,
    Switching,
};
pub use wormsim_faults::{Fault, FaultPlan, FaultRegion, FaultTarget, Reachability};
pub use wormsim_observe::{ObserveConfig, RunManifest, Sample};
pub use wormsim_routing::AlgorithmKind;
pub use wormsim_stats::{ConfidenceInterval, ConvergencePolicy, ConvergenceStatus};
pub use wormsim_topology::{NodeId, Topology};
pub use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

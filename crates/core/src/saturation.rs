//! Saturation-point search.
//!
//! The paper reads saturation off its curves ("phop and nbc begin to
//! saturate after 0.6, and nhop shows signs of saturation at about 0.55");
//! this module automates that reading with a bisection over offered load,
//! using the throughput criterion that matches how the curves are read:
//! a point is *saturated* when achieved utilization stops tracking offered
//! load.

use crate::{Experiment, ExperimentError, RunResult};
use serde::{Deserialize, Serialize};

/// Where a configuration saturates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Largest probed offered load that still tracked demand.
    pub below: f64,
    /// Smallest probed offered load that exceeded it.
    pub above: f64,
    /// The measurement at `below`.
    pub at_below: RunResult,
    /// The tracking fraction used by the criterion.
    pub tracking_fraction: f64,
}

impl SaturationPoint {
    /// The midpoint estimate of the saturation load.
    pub fn estimate(&self) -> f64 {
        (self.below + self.above) / 2.0
    }
}

impl Experiment {
    /// Locates the offered load at which this configuration saturates:
    /// the point where achieved channel utilization drops below
    /// `tracking_fraction ×` offered load (the network no longer keeps up
    /// with demand), found by bisection within `(0.05, 1.0)`.
    ///
    /// Runs `2 + iterations` measurements; with the quick schedule this is
    /// fast enough for tests, with the default schedule it mirrors how the
    /// paper's curves were read.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`Experiment::run`]. If the
    /// configuration is already saturated at the minimum load, `below`
    /// equals that minimum and `at_below` holds the (saturated)
    /// measurement; if it never saturates below the maximum load, `above`
    /// equals the maximum.
    pub fn find_saturation(
        &self,
        tracking_fraction: f64,
        iterations: usize,
    ) -> Result<SaturationPoint, ExperimentError> {
        let (min_load, max_load) = (0.05, 1.0);
        let saturated = |r: &RunResult| {
            r.achieved_utilization < tracking_fraction * r.offered_load || r.deadlock.is_some()
        };

        let low_run = self.clone().offered_load(min_load).run()?;
        if saturated(&low_run) {
            return Ok(SaturationPoint {
                below: min_load,
                above: min_load,
                at_below: low_run,
                tracking_fraction,
            });
        }
        let high_run = self.clone().offered_load(max_load).run()?;
        let mut below = min_load;
        let mut above = max_load;
        let mut at_below = low_run;
        if !saturated(&high_run) {
            return Ok(SaturationPoint {
                below: max_load,
                above: max_load,
                at_below: high_run,
                tracking_fraction,
            });
        }
        for _ in 0..iterations {
            let mid = (below + above) / 2.0;
            let run = self.clone().offered_load(mid).run()?;
            if saturated(&run) {
                above = mid;
            } else {
                below = mid;
                at_below = run;
            }
        }
        Ok(SaturationPoint {
            below,
            above,
            at_below,
            tracking_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeasurementSchedule;
    use wormsim_routing::AlgorithmKind;
    use wormsim_topology::Topology;

    fn base(algorithm: AlgorithmKind) -> Experiment {
        Experiment::new(Topology::torus(&[8, 8]), algorithm)
            .schedule(MeasurementSchedule::quick())
            .seed(77)
    }

    #[test]
    fn phop_saturates_later_than_ecube() {
        let ecube = base(AlgorithmKind::Ecube)
            .find_saturation(0.9, 3)
            .expect("search runs");
        let phop = base(AlgorithmKind::PositiveHop)
            .find_saturation(0.9, 3)
            .expect("search runs");
        assert!(
            phop.estimate() > ecube.estimate() + 0.1,
            "phop saturates at {:.2}, ecube at {:.2}",
            phop.estimate(),
            ecube.estimate()
        );
        assert!(ecube.below <= ecube.above);
    }

    #[test]
    fn bracketing_invariant() {
        let p = base(AlgorithmKind::NegativeHop)
            .find_saturation(0.9, 4)
            .expect("search runs");
        assert!(p.below <= p.above);
        assert!((0.05..=1.0).contains(&p.estimate()));
        assert_eq!(p.tracking_fraction, 0.9);
        // The point below saturation really does track offered load.
        assert!(p.at_below.achieved_utilization >= 0.9 * p.at_below.offered_load - 1e-9);
    }
}

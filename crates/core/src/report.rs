//! Plain-text and CSV rendering of measurement results.

use crate::RunResult;
use std::fmt::Write as _;

/// Formats a slice of results as an aligned text table, one row per run.
///
/// # Example
///
/// ```
/// use wormsim::{Experiment, AlgorithmKind, format_results_table};
/// use wormsim::topology::Topology;
///
/// let r = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
///     .offered_load(0.1).quick().seed(1).run()?;
/// let table = format_results_table(&[r]);
/// assert!(table.contains("ecube"));
/// assert!(table.lines().count() >= 3); // header, rule, one row
/// # Ok::<(), wormsim::ExperimentError>(())
/// ```
pub fn format_results_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} {:<14} {:>8} {:>10} {:>12} {:>9} {:>8} {:>8} {:>6}",
        "algo", "traffic", "offered", "achieved", "latency", "±95%", "refused", "msgs", "end"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for r in results {
        let end = match &r.outcome {
            crate::RunOutcome::Deadlocked => "DEAD",
            crate::RunOutcome::LiveLocked => "LIVE",
            crate::RunOutcome::BudgetExceeded => "BUDG",
            crate::RunOutcome::Unroutable => "UNRT",
            crate::RunOutcome::Interrupted => "INTR",
            crate::RunOutcome::Harness(_) => "PANIC",
            crate::RunOutcome::Completed => "yes",
            crate::RunOutcome::Saturated => "cap",
        };
        let _ = writeln!(
            out,
            "{:<7} {:<14} {:>8.3} {:>10.4} {:>12.2} {:>9.2} {:>7.1}% {:>8} {:>6}",
            r.algorithm,
            r.traffic,
            r.offered_load,
            r.achieved_utilization,
            r.latency.mean(),
            r.latency.half_width(),
            r.refused_fraction * 100.0,
            r.messages_measured,
            end
        );
    }
    out
}

/// Formats a sweep as CSV with a header row, suitable for plotting.
pub fn format_sweep_csv(results: &[RunResult]) -> String {
    let mut out = String::from(
        "algorithm,traffic,offered_load,injection_rate,achieved_utilization,\
         latency_mean,latency_half_width,latency_p50,latency_p95,latency_p99,\
         delivery_rate,acceptance_rate,\
         refused_fraction,messages,samples,converged,deadlocked,outcome,dropped_events,\
         triage\n",
    );
    for r in results {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.algorithm,
            r.traffic,
            r.offered_load,
            r.injection_rate,
            r.achieved_utilization,
            r.latency.mean(),
            r.latency.half_width(),
            r.latency_percentiles[0],
            r.latency_percentiles[1],
            r.latency_percentiles[2],
            r.delivery_rate,
            r.acceptance_rate,
            r.refused_fraction,
            r.messages_measured,
            r.samples,
            r.convergence.is_converged(),
            r.deadlock.is_some(),
            r.outcome,
            r.dropped_events,
            r.triage.as_ref().map_or("", |t| t.verdict.tag())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_stats::{ConfidenceInterval, ConvergenceStatus};

    fn sample() -> RunResult {
        RunResult {
            algorithm: "nbc".into(),
            traffic: "uniform".into(),
            offered_load: 0.6,
            injection_rate: 0.0187,
            latency: ConfidenceInterval::new(45.2, 1.8),
            latency_percentiles: [44, 60, 75],
            latency_max: 120,
            class_latencies: Vec::new(),
            achieved_utilization: 0.58,
            delivery_rate: 0.018,
            acceptance_rate: 0.0185,
            refused_fraction: 0.01,
            messages_measured: 12_345,
            convergence: ConvergenceStatus::Converged,
            samples: 4,
            cycles_simulated: 40_000,
            wall_seconds: 0.8,
            cycles_per_sec: 50_000.0,
            outcome: crate::RunOutcome::Completed,
            dropped_events: 0,
            deadlock: None,
            livelock: None,
            triage: None,
        }
    }

    #[test]
    fn table_contains_key_fields() {
        let t = format_results_table(&[sample()]);
        assert!(t.contains("nbc"));
        assert!(t.contains("uniform"));
        assert!(t.contains("45.20"));
        assert!(t.contains("yes"));
    }

    #[test]
    fn csv_round_trips_fields() {
        let csv = format_sweep_csv(&[sample()]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.starts_with("nbc,uniform,0.6,"));
        assert!(row.ends_with("true,false,completed,0,"));
    }

    #[test]
    fn csv_renders_triage_verdict() {
        let mut r = sample();
        r.outcome = crate::RunOutcome::Deadlocked;
        r.triage = Some(wormsim_verify::TriageReport {
            verdict: wormsim_verify::TriageVerdict::ConfirmedUnsafe,
            edges: 4,
            cycle_messages: vec![1, 2],
            cycle_channels: vec![10, 11],
        });
        let csv = format_sweep_csv(&[r]);
        assert!(csv.lines().next().unwrap().ends_with(",triage"));
        assert!(csv.ends_with("deadlocked,0,confirmed_unsafe\n"));
    }
}

//! Steady-state statistics and convergence control for network simulation.
//!
//! Implements the measurement methodology of Boppana & Chalasani
//! (ISCA 1993), Section 3:
//!
//! * messages are partitioned into **hop classes** (strata) by the distance
//!   they travel; per-stratum latency moments feed a stratified population
//!   estimator with pattern-derived weights ([`StratifiedEstimator`]),
//! * the 95% confidence interval of the average latency is `mean ± 2σ̂`
//!   ([`ConfidenceInterval`]), and
//! * a simulation run takes repeated samples (with warm-up and re-seeded
//!   RNG streams between them) until **both** convergence criteria hold —
//!   the stratified bound and the across-sample bound each within 5% of
//!   their means — subject to a minimum of 3 and a maximum of 10–15 samples
//!   ([`ConvergenceController`]).
//!
//! The [`throughput`] module provides the paper's Equations 2–4 relating
//! injection rate, message length, mean distance, and normalized channel
//! utilization.
//!
//! # Example
//!
//! ```
//! use wormsim_stats::{SampleAccumulator, ConvergenceController, ConvergencePolicy};
//!
//! // Hop-class weights (two classes here, 30%/70% of messages).
//! let weights = vec![0.3, 0.7];
//! let mut controller = ConvergenceController::new(ConvergencePolicy::default(), weights.clone());
//!
//! for sample_index in 0..5 {
//!     let mut acc = SampleAccumulator::new(weights.len());
//!     // ... record per-message latencies during the sampling period ...
//!     for i in 0..1000 {
//!         let class = if i % 10 < 3 { 0 } else { 1 };
//!         acc.record(class, 20.0 + (i % 7) as f64);
//!     }
//!     controller.push_sample(acc.summarize());
//!     if controller.status().is_converged() { break; }
//! }
//! assert!(controller.status().is_converged());
//! println!("latency = {}", controller.estimate().unwrap().mean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod convergence;
mod histogram;
mod stratified;
mod streaming;
pub mod throughput;

pub use confidence::ConfidenceInterval;
pub use convergence::{ConvergenceController, ConvergencePolicy, ConvergenceStatus};
pub use histogram::Histogram;
pub use stratified::{SampleAccumulator, SampleSummary, StratifiedEstimator};
pub use streaming::StreamingStats;

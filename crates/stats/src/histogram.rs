//! Integer-valued histograms (latency distributions).

use serde::{Deserialize, Serialize};

/// A dense histogram over non-negative integer values (e.g. cycle counts),
/// growing its bucket array on demand.
///
/// # Example
///
/// ```
/// use wormsim_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [5u64, 5, 7, 9, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.5), 7);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        self.buckets.iter().position(|&c| c > 0).unwrap_or(0) as u64
    }

    /// The largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0) as u64
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by lower interpolation; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (value, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return value as u64;
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaves() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.01), 1);
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 50);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(1, 1), (2, 2), (50, 1)]);
    }
}

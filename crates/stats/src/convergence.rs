//! The paper's dual-criterion convergence controller.

use crate::{ConfidenceInterval, SampleSummary, StratifiedEstimator, StreamingStats};
use serde::{Deserialize, Serialize};

/// Tunable knobs of the convergence procedure.
///
/// Defaults match the paper: at least 3 samples, at most 15, and both error
/// bounds within 5% of the respective averages.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePolicy {
    /// Minimum number of samples before convergence may be declared.
    pub min_samples: usize,
    /// Hard cap on samples; the run is cut off after this many.
    pub max_samples: usize,
    /// Relative error tolerance for both criteria (paper: 0.05).
    pub relative_tolerance: f64,
    /// How many of the latest sample means criterion B examines (paper:
    /// "the latest three or more samples").
    pub recent_window: usize,
}

impl Default for ConvergencePolicy {
    fn default() -> Self {
        ConvergencePolicy {
            min_samples: 3,
            max_samples: 15,
            relative_tolerance: 0.05,
            recent_window: 3,
        }
    }
}

/// Where a measurement run stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceStatus {
    /// Keep sampling.
    NeedMoreSamples,
    /// Both criteria satisfied.
    Converged,
    /// The sample cap was reached without satisfying both criteria.
    MaxSamplesReached,
}

impl ConvergenceStatus {
    /// Whether sampling may stop (converged or capped).
    pub fn is_done(self) -> bool {
        self != ConvergenceStatus::NeedMoreSamples
    }

    /// Whether both criteria were satisfied.
    pub fn is_converged(self) -> bool {
        self == ConvergenceStatus::Converged
    }
}

/// Drives the paper's sampling loop.
///
/// Push one [`SampleSummary`] per sampling period; after each push, check
/// [`status`](Self::status). Convergence requires **both**:
///
/// * **Criterion A** (stratified): the pooled per-hop-class estimator's
///   95% bound is within `relative_tolerance` of the estimated latency.
/// * **Criterion B** (across samples): the 95% bound on the mean of the
///   last `recent_window`+ sample means is within `relative_tolerance`.
pub struct ConvergenceController {
    policy: ConvergencePolicy,
    estimator: StratifiedEstimator,
    samples: Vec<SampleSummary>,
    pooled: Vec<StreamingStats>,
}

impl ConvergenceController {
    /// Creates a controller with hop-class `weights` (one per stratum).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or invalid
    /// (see [`StratifiedEstimator::new`]).
    pub fn new(policy: ConvergencePolicy, weights: Vec<f64>) -> Self {
        let strata = weights.len();
        ConvergenceController {
            policy,
            estimator: StratifiedEstimator::new(weights),
            samples: Vec::new(),
            pooled: vec![StreamingStats::new(); strata],
        }
    }

    /// Adds one sampling period's result.
    pub fn push_sample(&mut self, sample: SampleSummary) {
        for (pooled, stratum) in self.pooled.iter_mut().zip(sample.strata()) {
            pooled.merge(stratum);
        }
        self.samples.push(sample);
    }

    /// Number of samples taken so far.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// The samples pushed so far.
    pub fn samples(&self) -> &[SampleSummary] {
        &self.samples
    }

    /// Criterion A: the stratified estimate over all pooled observations.
    pub fn estimate(&self) -> Option<ConfidenceInterval> {
        self.estimator.estimate(&self.pooled)
    }

    /// The pooled per-stratum statistics across every sample so far.
    pub fn pooled_strata(&self) -> &[StreamingStats] {
        &self.pooled
    }

    /// Criterion B: the across-sample bound on the mean of recent sample
    /// means.
    pub fn across_sample_interval(&self) -> Option<ConfidenceInterval> {
        let window = self.policy.recent_window.max(2);
        if self.samples.len() < window {
            return None;
        }
        let recent = &self.samples[self.samples.len() - window..];
        let means: StreamingStats = recent
            .iter()
            .filter(|s| s.count() > 0)
            .map(|s| s.unweighted().mean())
            .collect();
        if means.count() < 2 {
            return None;
        }
        Some(ConfidenceInterval::from_mean_and_variance(
            means.mean(),
            means.sample_variance() / means.count() as f64,
        ))
    }

    /// Evaluates the stopping rule.
    pub fn status(&self) -> ConvergenceStatus {
        if self.samples.len() < self.policy.min_samples {
            return ConvergenceStatus::NeedMoreSamples;
        }
        let a_ok = self
            .estimate()
            .is_some_and(|ci| ci.within(self.policy.relative_tolerance));
        let b_ok = self
            .across_sample_interval()
            .is_some_and(|ci| ci.within(self.policy.relative_tolerance));
        if a_ok && b_ok {
            ConvergenceStatus::Converged
        } else if self.samples.len() >= self.policy.max_samples {
            ConvergenceStatus::MaxSamplesReached
        } else {
            ConvergenceStatus::NeedMoreSamples
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleAccumulator;

    fn steady_sample(strata: usize, base: f64, jitter: f64, seed: u64) -> SampleSummary {
        let mut acc = SampleAccumulator::new(strata);
        let mut x = seed;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((x >> 33) % 1000) as f64 / 1000.0 - 0.5;
            acc.record((i % strata as u64) as usize, base + jitter * noise);
        }
        acc.summarize()
    }

    #[test]
    fn converges_on_steady_input() {
        let mut c = ConvergenceController::new(ConvergencePolicy::default(), vec![0.5, 0.5]);
        for seed in 0..15 {
            c.push_sample(steady_sample(2, 50.0, 2.0, seed));
            if c.status().is_done() {
                break;
            }
        }
        assert_eq!(c.status(), ConvergenceStatus::Converged);
        assert!(c.num_samples() <= 4, "steady input should converge fast");
        let est = c.estimate().unwrap();
        assert!((est.mean() - 50.0).abs() < 1.0);
    }

    #[test]
    fn never_converges_below_min_samples() {
        let mut c = ConvergenceController::new(ConvergencePolicy::default(), vec![1.0]);
        c.push_sample(steady_sample(1, 10.0, 0.0, 1));
        c.push_sample(steady_sample(1, 10.0, 0.0, 2));
        assert_eq!(c.status(), ConvergenceStatus::NeedMoreSamples);
    }

    #[test]
    fn caps_at_max_samples_on_drifting_input() {
        let policy = ConvergencePolicy {
            max_samples: 6,
            ..Default::default()
        };
        let mut c = ConvergenceController::new(policy, vec![1.0]);
        // Means drifting upward sample over sample never satisfy B.
        for i in 0..10 {
            c.push_sample(steady_sample(1, 10.0 * (i + 1) as f64, 0.1, i));
            if c.status().is_done() {
                break;
            }
        }
        assert_eq!(c.status(), ConvergenceStatus::MaxSamplesReached);
        assert_eq!(c.num_samples(), 6);
    }

    #[test]
    fn across_sample_interval_uses_recent_window() {
        let mut c = ConvergenceController::new(ConvergencePolicy::default(), vec![1.0]);
        assert!(c.across_sample_interval().is_none());
        // Two wild early samples followed by stable ones: the window should
        // eventually only see the stable tail.
        c.push_sample(steady_sample(1, 500.0, 0.0, 1));
        c.push_sample(steady_sample(1, 900.0, 0.0, 2));
        for s in 0..3 {
            c.push_sample(steady_sample(1, 100.0, 1.0, 3 + s));
        }
        let ci = c.across_sample_interval().unwrap();
        assert!(
            (ci.mean() - 100.0).abs() < 1.0,
            "window should exclude early outliers"
        );
    }

    #[test]
    fn pooled_estimate_merges_samples() {
        let mut c = ConvergenceController::new(ConvergencePolicy::default(), vec![1.0]);
        c.push_sample(steady_sample(1, 10.0, 0.0, 1));
        c.push_sample(steady_sample(1, 20.0, 0.0, 2));
        let est = c.estimate().unwrap();
        assert!((est.mean() - 15.0).abs() < 1e-9);
    }
}

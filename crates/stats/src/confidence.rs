//! Confidence intervals in the paper's `mean ± 2σ̂` form.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 95% confidence interval `(mean - 2σ̂, mean + 2σ̂)`.
///
/// The paper: "The 95% confidence interval of the average latency is given
/// by `(l - 2σ_l, l + 2σ_l)`. The value `2σ_l` is the bound on the error of
/// estimation of `l`."
///
/// # Example
///
/// ```
/// use wormsim_stats::ConfidenceInterval;
///
/// let ci = ConfidenceInterval::from_mean_and_variance(100.0, 4.0);
/// assert_eq!(ci.half_width(), 4.0); // 2 * sqrt(4)
/// assert_eq!(ci.low(), 96.0);
/// assert_eq!(ci.high(), 104.0);
/// assert!(ci.relative_error() <= 0.05); // within the paper's 5% criterion
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
}

impl ConfidenceInterval {
    /// Builds an interval from an estimate and the variance *of that
    /// estimate* (not of the population).
    pub fn from_mean_and_variance(mean: f64, variance_of_mean: f64) -> Self {
        ConfidenceInterval {
            mean,
            half_width: 2.0 * variance_of_mean.max(0.0).sqrt(),
        }
    }

    /// Builds an interval directly from a mean and half-width.
    pub fn new(mean: f64, half_width: f64) -> Self {
        ConfidenceInterval {
            mean,
            half_width: half_width.max(0.0),
        }
    }

    /// The point estimate.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The error bound `2σ̂`.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Lower end of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper end of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// The error bound relative to the mean (the paper's 5% criterion
    /// compares this against 0.05). Infinite if the mean is zero but the
    /// width is not; zero if both are zero.
    pub fn relative_error(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }

    /// Whether the relative error is within `tolerance`.
    pub fn within(&self, tolerance: f64) -> bool {
        self.relative_error() <= tolerance
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(ConfidenceInterval::new(0.0, 0.0).relative_error(), 0.0);
        assert_eq!(
            ConfidenceInterval::new(0.0, 1.0).relative_error(),
            f64::INFINITY
        );
        assert!(ConfidenceInterval::new(100.0, 5.0).within(0.05));
        assert!(!ConfidenceInterval::new(100.0, 5.1).within(0.05));
    }

    #[test]
    fn negative_variance_clamped() {
        let ci = ConfidenceInterval::from_mean_and_variance(10.0, -1e-18);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn display_form() {
        let ci = ConfidenceInterval::new(12.3456, 0.789);
        assert_eq!(ci.to_string(), "12.346 ± 0.789");
    }
}

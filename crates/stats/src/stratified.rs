//! Stratified (hop-class) latency estimation.

use crate::{ConfidenceInterval, StreamingStats};
use serde::{Deserialize, Serialize};

/// Accumulates per-stratum observations during one sampling period.
///
/// Strata are the paper's *hop classes*: messages grouped by the number of
/// hops they need. Index `h` holds the latencies of messages whose
/// source–destination distance is `h`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleAccumulator {
    strata: Vec<StreamingStats>,
    all: StreamingStats,
}

impl SampleAccumulator {
    /// Creates an accumulator with `num_strata` strata.
    pub fn new(num_strata: usize) -> Self {
        SampleAccumulator {
            strata: vec![StreamingStats::new(); num_strata],
            all: StreamingStats::new(),
        }
    }

    /// Records one observation (e.g. a message latency) in `stratum`.
    ///
    /// # Panics
    ///
    /// Panics if `stratum` is out of range.
    pub fn record(&mut self, stratum: usize, value: f64) {
        self.strata[stratum].record(value);
        self.all.record(value);
    }

    /// Total observations across strata.
    pub fn count(&self) -> u64 {
        self.all.count()
    }

    /// The per-stratum statistics.
    pub fn strata(&self) -> &[StreamingStats] {
        &self.strata
    }

    /// Condenses this sampling period into a [`SampleSummary`].
    pub fn summarize(&self) -> SampleSummary {
        SampleSummary {
            strata: self.strata.clone(),
            unweighted: self.all.clone(),
        }
    }
}

/// The condensed result of one sampling period.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleSummary {
    strata: Vec<StreamingStats>,
    unweighted: StreamingStats,
}

impl SampleSummary {
    /// Per-stratum statistics of this sample.
    pub fn strata(&self) -> &[StreamingStats] {
        &self.strata
    }

    /// Statistics over all observations, ignoring strata.
    pub fn unweighted(&self) -> &StreamingStats {
        &self.unweighted
    }

    /// Number of observations in this sample.
    pub fn count(&self) -> u64 {
        self.unweighted.count()
    }
}

/// The paper's stratified population-mean estimator.
///
/// Given stratum weights `w_h` (the exact frequency of hop class `h` under
/// the traffic pattern) and per-stratum sample moments, estimates
///
/// ```text
/// l    = Σ_h w_h · μ_h                (population mean latency)
/// σ_l² = Σ_h w_h² · s_h² / n_h        (variance of that estimate)
/// ```
///
/// Strata with positive weight but *no observations* in the sample are
/// handled by renormalizing over the observed strata — with a footnote-style
/// caveat that this biases towards the observed classes, which matters only
/// for very short samples.
///
/// # Example
///
/// ```
/// use wormsim_stats::{SampleAccumulator, StratifiedEstimator};
///
/// let mut acc = SampleAccumulator::new(2);
/// for _ in 0..100 { acc.record(0, 10.0); }
/// for _ in 0..100 { acc.record(1, 20.0); }
///
/// // Class 0 is 3x as frequent as class 1 in the population, even though
/// // the sample observed them equally often.
/// let est = StratifiedEstimator::new(vec![0.75, 0.25]);
/// let ci = est.estimate(acc.summarize().strata()).unwrap();
/// assert!((ci.mean() - 12.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StratifiedEstimator {
    weights: Vec<f64>,
}

impl StratifiedEstimator {
    /// Creates an estimator with the given stratum weights.
    ///
    /// Weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one stratum");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        StratifiedEstimator {
            weights: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// The normalized stratum weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Estimates the population mean and its confidence interval from
    /// per-stratum statistics.
    ///
    /// Returns `None` if no stratum with positive weight has observations.
    pub fn estimate(&self, strata: &[StreamingStats]) -> Option<ConfidenceInterval> {
        let mut observed_weight = 0.0;
        for (h, w) in self.weights.iter().enumerate() {
            if *w > 0.0 && strata.get(h).is_some_and(|s| s.count() > 0) {
                observed_weight += w;
            }
        }
        if observed_weight <= 0.0 {
            return None;
        }
        let mut mean = 0.0;
        let mut variance = 0.0;
        for (h, w) in self.weights.iter().enumerate() {
            let Some(s) = strata.get(h) else { continue };
            if *w == 0.0 || s.count() == 0 {
                continue;
            }
            let w = w / observed_weight;
            mean += w * s.mean();
            variance += w * w * s.sample_variance() / s.count() as f64;
        }
        Some(ConfidenceInterval::from_mean_and_variance(mean, variance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_reweight_the_sample() {
        let mut acc = SampleAccumulator::new(3);
        for _ in 0..10 {
            acc.record(0, 1.0);
            acc.record(1, 2.0);
            acc.record(2, 3.0);
        }
        let est = StratifiedEstimator::new(vec![1.0, 0.0, 1.0]);
        let ci = est.estimate(acc.summarize().strata()).unwrap();
        assert!((ci.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_shrinks_with_more_data() {
        let noisy = |n: u64| {
            let mut acc = SampleAccumulator::new(1);
            for i in 0..n {
                acc.record(0, (i % 10) as f64);
            }
            let est = StratifiedEstimator::new(vec![1.0]);
            est.estimate(acc.summarize().strata()).unwrap().half_width()
        };
        assert!(noisy(10_000) < noisy(100));
    }

    #[test]
    fn missing_strata_renormalize() {
        let mut acc = SampleAccumulator::new(2);
        for _ in 0..50 {
            acc.record(0, 4.0);
        }
        // Stratum 1 has weight but no data; the estimate falls back to the
        // observed stratum.
        let est = StratifiedEstimator::new(vec![0.5, 0.5]);
        let ci = est.estimate(acc.summarize().strata()).unwrap();
        assert!((ci.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_gives_none() {
        let acc = SampleAccumulator::new(4);
        let est = StratifiedEstimator::new(vec![0.25; 4]);
        assert!(est.estimate(acc.summarize().strata()).is_none());
    }

    #[test]
    fn exact_when_strata_are_constant() {
        // If each stratum's latency is deterministic, the CI collapses.
        let mut acc = SampleAccumulator::new(2);
        for _ in 0..30 {
            acc.record(0, 10.0);
            acc.record(1, 30.0);
        }
        let est = StratifiedEstimator::new(vec![0.9, 0.1]);
        let ci = est.estimate(acc.summarize().strata()).unwrap();
        assert!((ci.mean() - 12.0).abs() < 1e-12);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn accumulator_counts() {
        let mut acc = SampleAccumulator::new(2);
        acc.record(0, 1.0);
        acc.record(1, 2.0);
        acc.record(1, 3.0);
        assert_eq!(acc.count(), 3);
        let summary = acc.summarize();
        assert_eq!(summary.count(), 3);
        assert_eq!(summary.strata()[1].count(), 2);
        assert!((summary.unweighted().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = StratifiedEstimator::new(vec![0.5, -0.5]);
    }
}

//! Single-pass moment accumulation.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// Numerically stable in a single pass, and mergeable (for combining
/// per-stratum or per-sample statistics).
///
/// # Example
///
/// ```
/// use wormsim_stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (divides by `n-1`); 0 below 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The population variance (divides by `n`); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The standard error of the mean, `s / sqrt(n)`; 0 below 2 samples.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// The smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al.).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = StreamingStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_sane() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 * 0.7).collect();
        let s: StreamingStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data: Vec<f64> = (0..500).map(|i| i as f64 * 0.3).collect();
        let b_data: Vec<f64> = (0..300).map(|i| 100.0 - i as f64).collect();
        let mut a: StreamingStats = a_data.iter().copied().collect();
        let b: StreamingStats = b_data.iter().copied().collect();
        let combined: StreamingStats = a_data.iter().chain(b_data.iter()).copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - combined.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: StreamingStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a, before);
        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extrema_track() {
        let s: StreamingStats = [3.0, -1.0, 7.5, 2.0].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.5);
    }
}

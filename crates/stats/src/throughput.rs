//! The paper's latency/throughput bookkeeping (Equations 2–4).
//!
//! For a k-ary n-cube with two unidirectional channels per adjacent pair,
//! the normalized throughput (average channel utilization) is
//!
//! ```text
//! ρ = λ · m_l · d̄ / (2n)                                  (Equation 4)
//! ```
//!
//! where `λ` is the per-node, per-cycle message injection rate, `m_l` the
//! average message length in flits, and `d̄` the average hop count. The
//! numerator is the flit-hop bandwidth a node demands per cycle; the
//! denominator is the bandwidth of the `2n` channels it owns.

/// Converts a per-node injection rate `λ` into offered normalized channel
/// utilization (Equation 4).
///
/// # Example
///
/// ```
/// // The paper's setup: 16-flit messages, 16x16 torus (d̄ = 8.03, n = 2).
/// let rho = wormsim_stats::throughput::utilization_from_rate(0.0063, 16.0, 8.03, 2);
/// assert!((rho - 0.2).abs() < 0.005);
/// ```
pub fn utilization_from_rate(
    lambda: f64,
    mean_length: f64,
    mean_distance: f64,
    n_dims: usize,
) -> f64 {
    lambda * mean_length * mean_distance / (2.0 * n_dims as f64)
}

/// Converts an offered normalized channel utilization into the per-node
/// injection rate `λ` that produces it (Equation 4 inverted).
///
/// # Panics
///
/// Panics if `mean_length` or `mean_distance` is not positive.
pub fn rate_for_utilization(
    utilization: f64,
    mean_length: f64,
    mean_distance: f64,
    n_dims: usize,
) -> f64 {
    assert!(mean_length > 0.0, "mean length must be positive");
    assert!(mean_distance > 0.0, "mean distance must be positive");
    utilization * 2.0 * n_dims as f64 / (mean_length * mean_distance)
}

/// The paper's Equation 2: the latency of a message that waited `wait`
/// cycles, has `length` flits, travels `hops` hops, with `flit_time` cycles
/// per flit transfer.
///
/// ```text
/// latency = w + (m_l + d - 1) · f_t
/// ```
pub fn message_latency(wait: f64, length: f64, hops: f64, flit_time: f64) -> f64 {
    wait + (length + hops - 1.0) * flit_time
}

/// The zero-load latency of Equation 2 (no waiting anywhere).
pub fn zero_load_latency(length: f64, hops: f64, flit_time: f64) -> f64 {
    message_latency(0.0, length, hops, flit_time)
}

/// Measured channel utilization: flit-hop transfers performed divided by
/// the raw flit-hop capacity (`channels × cycles`).
///
/// This is the direct "fraction of the physical channel bandwidth utilized"
/// definition; under Equation 4's assumptions both agree.
///
/// # Panics
///
/// Panics if `channels` or `cycles` is zero.
pub fn measured_utilization(flit_hops: u64, channels: u64, cycles: u64) -> f64 {
    assert!(channels > 0, "need at least one channel");
    assert!(cycles > 0, "need at least one cycle");
    flit_hops as f64 / (channels as f64 * cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equations_invert() {
        let (ml, d, n) = (16.0, 8.03, 2);
        for rho in [0.1, 0.4, 0.72] {
            let lambda = rate_for_utilization(rho, ml, d, n);
            assert!((utilization_from_rate(lambda, ml, d, n) - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_full_load_rate() {
        // At rho = 1.0 on 16^2 with 16-flit messages, each node injects one
        // message roughly every 32 cycles.
        let lambda = rate_for_utilization(1.0, 16.0, 8.03, 2);
        assert!((1.0 / lambda - 32.1).abs() < 0.1);
    }

    #[test]
    fn zero_load_latency_form() {
        // 16 flits over 8 hops at 1 cycle/flit: 16 + 8 - 1 = 23 cycles.
        assert_eq!(zero_load_latency(16.0, 8.0, 1.0), 23.0);
        assert_eq!(message_latency(10.0, 16.0, 8.0, 1.0), 33.0);
    }

    #[test]
    fn measured_utilization_bounds() {
        assert_eq!(measured_utilization(0, 1024, 100), 0.0);
        assert_eq!(measured_utilization(1024 * 100, 1024, 100), 1.0);
    }
}

//! Property-based tests: streaming statistics against brute force, the
//! stratified estimator against its closed form, and histogram order
//! statistics.

use proptest::prelude::*;
use wormsim_stats::{Histogram, SampleAccumulator, StratifiedEstimator, StreamingStats};

proptest! {
    /// Welford accumulation matches the two-pass formulas.
    #[test]
    fn streaming_matches_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let s: StreamingStats = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = var.abs().max(1.0);
        prop_assert!((s.mean() - mean).abs() / mean.abs().max(1.0) < 1e-9);
        prop_assert!((s.sample_variance() - var).abs() / scale < 1e-6);
        prop_assert_eq!(s.count(), data.len() as u64);
    }

    /// Merging any split of a dataset equals accumulating it whole.
    #[test]
    fn merge_is_split_invariant(
        data in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let k = split % data.len();
        let mut left: StreamingStats = data[..k].iter().copied().collect();
        let right: StreamingStats = data[k..].iter().copied().collect();
        let whole: StreamingStats = data.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        let scale = whole.sample_variance().abs().max(1.0);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() / scale < 1e-6);
    }

    /// The stratified estimate equals the closed-form weighted mean.
    #[test]
    fn stratified_matches_closed_form(
        strata in prop::collection::vec(
            (0.01f64..10.0, prop::collection::vec(0f64..1000.0, 1..50)),
            1..6,
        ),
    ) {
        let weights: Vec<f64> = strata.iter().map(|(w, _)| *w).collect();
        let mut acc = SampleAccumulator::new(strata.len());
        for (h, (_, values)) in strata.iter().enumerate() {
            for &v in values {
                acc.record(h, v);
            }
        }
        let est = StratifiedEstimator::new(weights.clone());
        let ci = est.estimate(acc.summarize().strata()).expect("data present");
        let total_w: f64 = weights.iter().sum();
        let expected: f64 = strata
            .iter()
            .map(|(w, values)| {
                w / total_w * (values.iter().sum::<f64>() / values.len() as f64)
            })
            .sum();
        prop_assert!((ci.mean() - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "{} vs {}", ci.mean(), expected);
    }

    /// Histogram percentiles agree with sorted order statistics.
    #[test]
    fn histogram_percentiles_are_order_statistics(
        mut values in prop::collection::vec(0u64..500, 1..200),
        p in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
        prop_assert_eq!(h.percentile(p), values[rank - 1]);
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Histogram merge is concatenation.
    #[test]
    fn histogram_merge_is_concatenation(
        a in prop::collection::vec(0u64..100, 0..50),
        b in prop::collection::vec(0u64..100, 0..50),
    ) {
        let mut ha = Histogram::new();
        a.iter().for_each(|&v| ha.record(v));
        let mut hb = Histogram::new();
        b.iter().for_each(|&v| hb.record(v));
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut all = Histogram::new();
        a.iter().chain(b.iter()).for_each(|&v| all.record(v));
        prop_assert_eq!(merged, all);
    }
}

//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace builds in environments with no registry access, and nothing
//! in wormsim actually drives serde serialization (figure output is
//! hand-formatted CSV/JSON). This shim keeps the `#[derive(Serialize,
//! Deserialize)]` annotations compiling — as documentation of which types are
//! wire-shaped, and so the real serde can be dropped back in without touching
//! call sites — while the derive macros expand to trivial impls of the
//! marker traits below, so generic bounds like `T: Serialize` keep compiling.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! The fully adaptive two-power-n (2pn) algorithm.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{DimStep, Direction, NodeId, Sign, Topology, TopologyKind};

/// Fully adaptive routing based on the enumeration of directions
/// (the paper's *2pn* algorithm, derived from Dally, Felperin et al., and
/// Linder & Harden).
///
/// At the source an n-bit tag `t` is computed from source `s` and
/// destination `d` (Equation 1 of the paper):
///
/// ```text
/// t_i = 1 if s_i < d_i,   0 if s_i > d_i,   0 (free choice) if s_i = d_i
/// ```
///
/// The message then always reserves the virtual channel *numbered `t`* on
/// any link of an uncorrected dimension — fully adaptive, with `2^n` VC
/// classes on tori and `2^(n-1)` on meshes (the highest dimension does not
/// need a tag bit on meshes, Dally's result).
///
/// # Torus variants
///
/// The scheme above is the paper's published configuration and is kept
/// bit-for-bit on **meshes and 1D/2D tori** (the seed-1993 goldens pin the
/// 16×16 torus figures). On a torus, however, Equation 1 alone is *not* a
/// deadlock-freedom proof: a tag class mixes messages travelling plus
/// (through the wrap-around) and minus in the same dimension, and the CDG
/// checker finds a genuine cycle on every 2D torus (see
/// `deadlock::tests::two_power_n_paper_torus_variant_is_cyclic`). A cyclic
/// CDG is inconclusive for an adaptive algorithm (Duato's criterion), and
/// the paper's 16×16 runs complete, so the 2D variant is preserved as
/// published.
///
/// The `wormsim-verify` bounded checker has since settled the question
/// definitively: on a 4×4 torus the published 2D variant admits a stable
/// configuration in which every blocked worm's full candidate set is held
/// (a hand-verified 4-cycle of class-01 worms around the `x=2..3, y=0..1`
/// block), and the engine reproduces it under random VC selection with
/// aligned injection timing. The 2D variant is therefore *deadlockable in
/// principle* — vanishingly rarely under the paper's workloads — and is
/// still preserved as published, with the refutation pinned in
/// `wormsim-verify`'s tests rather than papered over here.
///
/// On **tori with `n >= 3` dimensions** — outside the paper's regime, where
/// nothing pins the behavior — the generalization is corrected à la
/// Linder & Harden:
///
/// * the tag bit records the committed *travel* sign instead of the raw
///   coordinate comparison (`1` = Plus is minimal; ties at `k/2` commit
///   Plus), so every class is sign-consistent per dimension, and
/// * each tag class is split into `n + 1` *dateline levels* indexed by
///   [`MessageRouteState::datelines_crossed`], giving
///   `2^n * (n + 1)` classes.
///
/// This is provably deadlock-free: a dependency never decreases the level
/// and crossing a wrap channel strictly increases it, so a CDG cycle would
/// have to live inside one `(tag, level)` slice; there every dimension's
/// travel sign is fixed and no wrap channel's out-edges are available, so a
/// closed walk would need `k_i` same-sign hops in some dimension *without*
/// its wrap link — impossible. The checker confirms this exhaustively on
/// 3D cubes and mixed-radix 3D tori (`deadlock::tests`).
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{TwoPowerN, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let tpn = TwoPowerN::new(&topo)?;
/// assert_eq!(tpn.num_vc_classes(), 4); // 2^2 for the 16x16 torus
///
/// let mut state = MessageRouteState::new(topo.node_at(&[2, 7]), topo.node_at(&[5, 3]));
/// tpn.init_message(&topo, &mut state);
/// assert_eq!(state.tag(), 0b01); // s_0 < d_0, s_1 > d_1
///
/// // Beyond the paper's 2D regime the classes carry dateline levels:
/// let cube = Topology::k_ary_n_cube(8, 3);
/// let tpn3 = TwoPowerN::new(&cube)?;
/// assert_eq!(tpn3.num_vc_classes(), 32); // 2^3 tags x (3 + 1) levels
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TwoPowerN {
    classes: usize,
    tagged_dims: usize,
    /// Dateline levels multiplying the tag classes: 1 in the paper's
    /// published configuration (meshes, 1D/2D tori), `n + 1` on
    /// higher-dimensional tori.
    levels: usize,
}

impl TwoPowerN {
    /// Builds 2pn for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::TooManyDimensions`] when the class index
    /// would not fit the `u8` VC-class space: more than 8 dimensions on a
    /// mesh (the tag is stored in a `u8`), or more than 5 on a torus
    /// (`2^n * (n + 1)` dateline-levelled classes must stay below 256).
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        let n = topo.num_dims();
        let (tagged_dims, levels, max) = match topo.kind() {
            TopologyKind::Torus if n >= 3 => (n, n + 1, 5),
            TopologyKind::Torus => (n, 1, 7),
            TopologyKind::Mesh => (n - 1, 1, 7),
        };
        if tagged_dims > max {
            return Err(RoutingError::TooManyDimensions {
                algorithm: "2pn",
                max,
                got: n,
            });
        }
        Ok(TwoPowerN {
            classes: (1 << tagged_dims) * levels,
            tagged_dims,
            levels,
        })
    }

    /// Computes the message tag for a source/destination pair.
    ///
    /// In the paper's configuration (meshes, 1D/2D tori) this is Equation 1
    /// verbatim: bit `i` is set iff `s_i < d_i`. On `n >= 3` tori the bit
    /// instead records the committed travel sign — set iff Plus is a
    /// minimal direction in dimension `i` (ties at half the radix commit
    /// Plus) — so that every tag class is sign-consistent.
    pub fn tag_for(&self, topo: &Topology, src: NodeId, dest: NodeId) -> u8 {
        let mut tag = 0u8;
        for dim in 0..self.tagged_dims {
            let bit = if self.levels > 1 {
                topo.dim_step(src, dest, dim).allows(Sign::Plus)
            } else {
                topo.coord(src, dim) < topo.coord(dest, dim)
            };
            if bit {
                tag |= 1 << dim;
            }
        }
        tag
    }

    /// The VC class of a message with `tag` at dateline level `level`.
    fn class_at(&self, tag: u8, level: u32) -> u8 {
        debug_assert!(self.levels == 1 || (level as usize) < self.levels);
        (tag as usize * self.levels + level as usize) as u8
    }
}

impl RoutingAlgorithm for TwoPowerN {
    fn name(&self) -> &'static str {
        "2pn"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        let claim = FaultTolerance::best_effort_if_connected(topo, mask);
        // The published Eq.1 variant on tori (single dateline level) is
        // deadlockable in principle — see the module docs and the
        // wormsim-verify refutation — so even on a healthy network its
        // claim caps at best-effort. The >=3D dateline-levelled variant
        // keeps the full guarantee.
        if claim == FaultTolerance::Guaranteed
            && self.levels == 1
            && topo.kind() == TopologyKind::Torus
        {
            return FaultTolerance::BestEffort;
        }
        claim
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn init_message(&self, topo: &Topology, state: &mut MessageRouteState) {
        state.set_tag(self.tag_for(topo, state.src(), state.dest()));
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let tag = state.tag();
        if self.levels > 1 {
            // Corrected >=3D torus variant: the travel sign per dimension
            // is fixed by the tag, and the class advances with each
            // dateline crossing.
            let class = self.class_at(tag, state.datelines_crossed());
            for dim in 0..topo.num_dims() {
                let step = topo.dim_step(here, state.dest(), dim);
                if step == DimStep::Done {
                    continue;
                }
                let sign = if tag & (1 << dim) != 0 {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                // The committed sign stays minimal along the whole path:
                // the remaining offset only shrinks in that direction.
                debug_assert!(step.allows(sign));
                out.push(Candidate::new(Direction::new(dim, sign), class));
            }
        } else {
            for dim in 0..topo.num_dims() {
                let step = topo.dim_step(here, state.dest(), dim);
                for sign in [Sign::Plus, Sign::Minus] {
                    if step.allows(sign) {
                        out.push(Candidate::new(Direction::new(dim, sign), tag));
                    }
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // "a message class is based on the virtual channel number it can
        // use" — for 2pn the tag, at dateline level 0 before any hop.
        self.class_at(self.tag_for(topo, state.src(), state.dest()), 0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_torus_variant_never_claims_guaranteed() {
        // The wormsim-verify bounded checker refutes the 2D Eq.1 torus
        // variant (a stable all-candidates-held cycle exists), so its
        // healthy-network claim caps at best-effort. The mesh variant and
        // the >=3D dateline-levelled torus variant keep the guarantee.
        use wormsim_topology::ChannelMask;
        let torus = Topology::torus(&[4, 4]);
        let tpn = TwoPowerN::new(&torus).unwrap();
        assert_eq!(
            tpn.fault_tolerance(&torus, &ChannelMask::all_alive(&torus)),
            FaultTolerance::BestEffort
        );
        let torus3 = Topology::torus(&[2, 4, 4]);
        let tpn3 = TwoPowerN::new(&torus3).unwrap();
        assert_eq!(
            tpn3.fault_tolerance(&torus3, &ChannelMask::all_alive(&torus3)),
            FaultTolerance::Guaranteed
        );
        let mesh = Topology::mesh(&[4, 4]);
        let tpnm = TwoPowerN::new(&mesh).unwrap();
        assert_eq!(
            tpnm.fault_tolerance(&mesh, &ChannelMask::all_alive(&mesh)),
            FaultTolerance::Guaranteed
        );
    }

    #[test]
    fn tag_matches_equation_one() {
        let topo = Topology::torus(&[16, 16]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        let tag = |s: [u16; 2], d: [u16; 2]| tpn.tag_for(&topo, topo.node_at(&s), topo.node_at(&d));
        assert_eq!(tag([0, 0], [5, 5]), 0b11);
        assert_eq!(tag([5, 5], [0, 0]), 0b00);
        assert_eq!(tag([0, 5], [5, 0]), 0b01);
        assert_eq!(tag([3, 3], [3, 9]), 0b10); // equal coordinate -> bit 0
    }

    #[test]
    fn torus_has_two_power_n_classes() {
        assert_eq!(
            TwoPowerN::new(&Topology::torus(&[8, 8]))
                .unwrap()
                .num_vc_classes(),
            4
        );
        // >=3D tori multiply the 2^n tags by n + 1 dateline levels.
        assert_eq!(
            TwoPowerN::new(&Topology::torus(&[4, 4, 4]))
                .unwrap()
                .num_vc_classes(),
            32
        );
    }

    #[test]
    fn mesh_drops_one_tag_bit() {
        assert_eq!(
            TwoPowerN::new(&Topology::mesh(&[8, 8]))
                .unwrap()
                .num_vc_classes(),
            2
        );
        assert_eq!(
            TwoPowerN::new(&Topology::mesh(&[4, 4, 4]))
                .unwrap()
                .num_vc_classes(),
            4
        );
    }

    #[test]
    fn fully_adaptive_candidate_set() {
        let topo = Topology::torus(&[16, 16]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        let mut state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[3, 13]));
        tpn.init_message(&topo, &mut state);
        let mut out = Vec::new();
        tpn.candidates(&topo, &state, state.src(), &mut out);
        // +0 (3 hops) and -1 (3 hops via wraparound) are both minimal.
        assert_eq!(out.len(), 2);
        // The tag compares coordinate *indices*, not travel directions:
        // s0 < d0 and s1 < d1 give t = 0b11 even though dimension 1 travels
        // minus through the wraparound.
        assert!(out.iter().all(|c| c.vc_class() == 0b11));
    }

    #[test]
    fn candidates_always_minimal_and_nonempty() {
        let topo = Topology::torus(&[6, 6]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let mut state = MessageRouteState::new(s, d);
                tpn.init_message(&topo, &mut state);
                let mut out = Vec::new();
                tpn.candidates(&topo, &state, s, &mut out);
                assert!(!out.is_empty());
                for c in &out {
                    let next = topo.neighbor(s, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, d), topo.distance(s, d) - 1);
                    assert!((c.vc_class() as usize) < tpn.num_vc_classes());
                }
            }
        }
    }

    #[test]
    fn three_d_torus_tag_commits_travel_signs() {
        let topo = Topology::k_ary_n_cube(8, 3);
        let tpn = TwoPowerN::new(&topo).unwrap();
        let tag = |s: [u16; 3], d: [u16; 3]| tpn.tag_for(&topo, topo.node_at(&s), topo.node_at(&d));
        // (7,0,0) -> (1,0,0): minimal travel wraps Plus even though s_0 > d_0.
        assert_eq!(tag([7, 0, 0], [1, 0, 0]), 0b001);
        // (0,3,0) -> (0,1,0): Minus, two hops, no wrap.
        assert_eq!(tag([0, 3, 0], [0, 1, 0]), 0b000);
        // Ties at k/2 commit Plus in every dimension.
        assert_eq!(tag([0, 0, 0], [4, 4, 4]), 0b111);
        assert_eq!(tag([4, 4, 4], [0, 0, 0]), 0b111);
    }

    #[test]
    fn three_d_torus_candidates_are_sign_fixed_minimal_and_levelled() {
        let topo = Topology::k_ary_n_cube(8, 3);
        let tpn = TwoPowerN::new(&topo).unwrap();
        for (s, d) in [
            ([0u16, 0, 0], [3u16, 5, 1]),
            ([7, 2, 4], [1, 2, 0]),
            ([4, 4, 4], [0, 0, 0]),
        ] {
            let src = topo.node_at(&s);
            let dest = topo.node_at(&d);
            let mut state = MessageRouteState::new(src, dest);
            tpn.init_message(&topo, &mut state);
            let mut here = src;
            // Walk one full path greedily, checking every candidate set.
            while here != dest {
                let mut out = Vec::new();
                tpn.candidates(&topo, &state, here, &mut out);
                assert!(!out.is_empty());
                let expected_class = (state.tag() as u32) * 4 + state.datelines_crossed();
                for c in &out {
                    let next = topo.neighbor(here, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, dest), topo.distance(here, dest) - 1);
                    assert_eq!(c.vc_class() as u32, expected_class);
                    // The travel sign in each dimension matches the tag bit.
                    let bit = state.tag() >> c.direction().dim() & 1;
                    assert_eq!(bit == 1, c.direction().sign() == Sign::Plus);
                }
                let taken = out[0];
                state.advance(&topo, here, taken);
                here = topo.neighbor(here, taken.direction()).unwrap();
            }
        }
    }

    #[test]
    fn rejects_too_many_dimensions() {
        let topo = Topology::torus(&[2, 2, 2, 2, 2, 2, 2, 2]);
        assert!(matches!(
            TwoPowerN::new(&topo),
            Err(RoutingError::TooManyDimensions { .. })
        ));
        // Tori cap earlier than meshes: 2^n * (n+1) classes must fit a u8.
        let topo = Topology::torus(&[2, 2, 2, 2, 2, 2]);
        assert!(matches!(
            TwoPowerN::new(&topo),
            Err(RoutingError::TooManyDimensions { max: 5, .. })
        ));
        let topo = Topology::torus(&[2, 2, 2, 2, 2]);
        assert!(TwoPowerN::new(&topo).is_ok());
    }
}

//! The fully adaptive two-power-n (2pn) algorithm.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{Direction, NodeId, Sign, Topology, TopologyKind};

/// Fully adaptive routing based on the enumeration of directions
/// (the paper's *2pn* algorithm, derived from Dally, Felperin et al., and
/// Linder & Harden).
///
/// At the source an n-bit tag `t` is computed from source `s` and
/// destination `d` (Equation 1 of the paper):
///
/// ```text
/// t_i = 1 if s_i < d_i,   0 if s_i > d_i,   0 (free choice) if s_i = d_i
/// ```
///
/// The message then always reserves the virtual channel *numbered `t`* on
/// any link of an uncorrected dimension — fully adaptive, with `2^n` VC
/// classes on tori and `2^(n-1)` on meshes (the highest dimension does not
/// need a tag bit on meshes, Dally's result).
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{TwoPowerN, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let tpn = TwoPowerN::new(&topo)?;
/// assert_eq!(tpn.num_vc_classes(), 4); // 2^2 for the 16x16 torus
///
/// let mut state = MessageRouteState::new(topo.node_at(&[2, 7]), topo.node_at(&[5, 3]));
/// tpn.init_message(&topo, &mut state);
/// assert_eq!(state.tag(), 0b01); // s_0 < d_0, s_1 > d_1
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TwoPowerN {
    classes: usize,
    tagged_dims: usize,
}

impl TwoPowerN {
    /// Builds 2pn for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::TooManyDimensions`] when the topology has
    /// more than 7 dimensions (the tag is stored in a `u8` class index).
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        let n = topo.num_dims();
        let tagged_dims = match topo.kind() {
            TopologyKind::Torus => n,
            TopologyKind::Mesh => n - 1,
        };
        if tagged_dims > 7 {
            return Err(RoutingError::TooManyDimensions {
                algorithm: "2pn",
                max: 7,
                got: n,
            });
        }
        Ok(TwoPowerN {
            classes: 1 << tagged_dims,
            tagged_dims,
        })
    }

    /// Computes the paper's Equation 1 tag for a source/destination pair.
    pub fn tag_for(&self, topo: &Topology, src: NodeId, dest: NodeId) -> u8 {
        let mut tag = 0u8;
        for dim in 0..self.tagged_dims {
            if topo.coord(src, dim) < topo.coord(dest, dim) {
                tag |= 1 << dim;
            }
        }
        tag
    }
}

impl RoutingAlgorithm for TwoPowerN {
    fn name(&self) -> &'static str {
        "2pn"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn init_message(&self, topo: &Topology, state: &mut MessageRouteState) {
        state.set_tag(self.tag_for(topo, state.src(), state.dest()));
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = state.tag();
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            for sign in [Sign::Plus, Sign::Minus] {
                if step.allows(sign) {
                    out.push(Candidate::new(Direction::new(dim, sign), class));
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // "a message class is based on the virtual channel number it can
        // use" — which for 2pn is the tag.
        self.tag_for(topo, state.src(), state.dest()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_matches_equation_one() {
        let topo = Topology::torus(&[16, 16]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        let tag = |s: [u16; 2], d: [u16; 2]| tpn.tag_for(&topo, topo.node_at(&s), topo.node_at(&d));
        assert_eq!(tag([0, 0], [5, 5]), 0b11);
        assert_eq!(tag([5, 5], [0, 0]), 0b00);
        assert_eq!(tag([0, 5], [5, 0]), 0b01);
        assert_eq!(tag([3, 3], [3, 9]), 0b10); // equal coordinate -> bit 0
    }

    #[test]
    fn torus_has_two_power_n_classes() {
        assert_eq!(
            TwoPowerN::new(&Topology::torus(&[8, 8]))
                .unwrap()
                .num_vc_classes(),
            4
        );
        assert_eq!(
            TwoPowerN::new(&Topology::torus(&[4, 4, 4]))
                .unwrap()
                .num_vc_classes(),
            8
        );
    }

    #[test]
    fn mesh_drops_one_tag_bit() {
        assert_eq!(
            TwoPowerN::new(&Topology::mesh(&[8, 8]))
                .unwrap()
                .num_vc_classes(),
            2
        );
        assert_eq!(
            TwoPowerN::new(&Topology::mesh(&[4, 4, 4]))
                .unwrap()
                .num_vc_classes(),
            4
        );
    }

    #[test]
    fn fully_adaptive_candidate_set() {
        let topo = Topology::torus(&[16, 16]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        let mut state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[3, 13]));
        tpn.init_message(&topo, &mut state);
        let mut out = Vec::new();
        tpn.candidates(&topo, &state, state.src(), &mut out);
        // +0 (3 hops) and -1 (3 hops via wraparound) are both minimal.
        assert_eq!(out.len(), 2);
        // The tag compares coordinate *indices*, not travel directions:
        // s0 < d0 and s1 < d1 give t = 0b11 even though dimension 1 travels
        // minus through the wraparound.
        assert!(out.iter().all(|c| c.vc_class() == 0b11));
    }

    #[test]
    fn candidates_always_minimal_and_nonempty() {
        let topo = Topology::torus(&[6, 6]);
        let tpn = TwoPowerN::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let mut state = MessageRouteState::new(s, d);
                tpn.init_message(&topo, &mut state);
                let mut out = Vec::new();
                tpn.candidates(&topo, &state, s, &mut out);
                assert!(!out.is_empty());
                for c in &out {
                    let next = topo.neighbor(s, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, d), topo.distance(s, d) - 1);
                    assert!((c.vc_class() as usize) < tpn.num_vc_classes());
                }
            }
        }
    }

    #[test]
    fn rejects_too_many_dimensions() {
        let topo = Topology::torus(&[2, 2, 2, 2, 2, 2, 2, 2]);
        assert!(matches!(
            TwoPowerN::new(&topo),
            Err(RoutingError::TooManyDimensions { .. })
        ));
    }
}

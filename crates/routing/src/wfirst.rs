//! The partially adaptive west-first algorithm (Glass & Ni turn model).

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{DimStep, NodeId, Sign, Topology};

/// West-first routing: the other canonical member of the Glass–Ni turn
/// model family the paper draws north-last from.
///
/// "West" is the `-` direction of dimension 0. All west travel happens
/// *first* and non-adaptively; afterwards the message routes fully
/// adaptively among the remaining minimal directions (never turning back
/// west — a torus half-way tie in dimension 0 resolves east).
///
/// Torus wrap-around uses the same dateline-crossing-count classes as
/// [`NorthLast`](crate::NorthLast) (`n + 1` classes; 1 on meshes), and is
/// machine-checked acyclic by the [`deadlock`](crate::deadlock) analysis.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{WestFirst, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::mesh(&[10, 10]);
/// let wf = WestFirst::new(&topo)?;
/// // Westbound component: dimension 0 must be corrected first.
/// let state = MessageRouteState::new(topo.node_at(&[3, 3]), topo.node_at(&[1, 5]));
/// let mut out = Vec::new();
/// wf.candidates(&topo, &state, state.src(), &mut out);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].direction().dim(), 0);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WestFirst {
    classes: usize,
}

impl WestFirst {
    /// Builds west-first for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::NeedsDimensions`] for one-dimensional
    /// networks, where the turn model degenerates.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        if topo.num_dims() < 2 {
            return Err(RoutingError::NeedsDimensions {
                algorithm: "wfirst",
                needs: 2,
                got: topo.num_dims(),
            });
        }
        Ok(WestFirst {
            classes: if topo.wraps() { topo.num_dims() + 1 } else { 1 },
        })
    }
}

impl RoutingAlgorithm for WestFirst {
    fn name(&self) -> &'static str {
        "wfirst"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::PartiallyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = if topo.wraps() {
            state.datelines_crossed() as u8
        } else {
            0
        };
        // Phase 1: while west travel remains, it is the only option.
        if let DimStep::One {
            sign: Sign::Minus, ..
        } = topo.dim_step(here, state.dest(), 0)
        {
            out.push(Candidate::new(
                wormsim_topology::Direction::new(0, Sign::Minus),
                class,
            ));
            return;
        }
        // Phase 2: fully adaptive among remaining minimal directions,
        // never turning back west.
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            for sign in [Sign::Plus, Sign::Minus] {
                if dim == 0 && sign == Sign::Minus {
                    continue;
                }
                if step.allows(sign) {
                    out.push(Candidate::new(
                        wormsim_topology::Direction::new(dim, sign),
                        class,
                    ));
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        let mut out = Vec::with_capacity(4);
        self.candidates(topo, state, state.src(), &mut out);
        match out.first() {
            Some(c) => (c.direction().index() * self.classes) as u32 + c.vc_class() as u32,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;
    use wormsim_topology::Direction;

    fn candidates_at(topo: &Topology, here: &[u16], dest: &[u16]) -> Vec<Candidate> {
        let algo = WestFirst::new(topo).unwrap();
        let state = MessageRouteState::new(topo.node_at(here), topo.node_at(dest));
        let mut out = Vec::new();
        algo.candidates(topo, &state, topo.node_at(here), &mut out);
        out
    }

    #[test]
    fn west_phase_is_forced_then_adaptive() {
        let topo = Topology::mesh(&[8, 8]);
        let c = candidates_at(&topo, &[5, 2], &[2, 6]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(0, Sign::Minus));
        // Once dimension 0 is corrected, the rest is adaptive.
        let c = candidates_at(&topo, &[2, 2], &[2, 6]);
        assert_eq!(c.len(), 1); // only +1 remains here
        let c = candidates_at(&topo, &[1, 2], &[4, 6]);
        assert_eq!(c.len(), 2); // east + south, both adaptive
    }

    #[test]
    fn never_turns_back_west() {
        let topo = Topology::torus(&[6, 6]);
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let c = candidates_at(&topo, &topo.coords(s), &topo.coords(d));
                assert!(!c.is_empty());
                let west = c
                    .iter()
                    .filter(|c| c.direction() == Direction::new(0, Sign::Minus))
                    .count();
                if west > 0 {
                    assert_eq!(c.len(), 1, "west must be exclusive: {c:?}");
                }
            }
        }
    }

    #[test]
    fn acyclic_on_small_tori() {
        for dims in [[4u16, 4u16], [6, 6]] {
            let topo = Topology::torus(&dims);
            let algo = WestFirst::new(&topo).unwrap();
            assert!(deadlock::analyze(&topo, &algo).is_acyclic(), "{dims:?}");
        }
    }

    #[test]
    fn candidates_are_minimal() {
        let topo = Topology::torus(&[6, 6]);
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                for c in candidates_at(&topo, &topo.coords(s), &topo.coords(d)) {
                    let next = topo.neighbor(s, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, d), topo.distance(s, d) - 1);
                }
            }
        }
    }

    #[test]
    fn rejects_rings() {
        assert!(WestFirst::new(&Topology::torus(&[8])).is_err());
    }
}

//! Algorithm registry: build any of the paper's six algorithms by name.

use crate::{
    Ecube, NaiveMinimal, NegativeHop, NegativeHopBonusCards, NorthLast, PositiveHop,
    RoutingAlgorithm, RoutingError, TwoPowerN, WestFirst,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use wormsim_topology::Topology;

/// The six routing algorithms of the ISCA '93 study.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::AlgorithmKind;
///
/// let topo = Topology::torus(&[16, 16]);
/// for kind in AlgorithmKind::all() {
///     let algo = kind.build(&topo)?;
///     println!("{}: {} classes", algo.name(), algo.num_vc_classes());
/// }
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Non-adaptive dimension-order routing ([`Ecube`]).
    Ecube,
    /// Partially adaptive turn-model routing ([`NorthLast`]).
    NorthLast,
    /// Fully adaptive direction-tag routing ([`TwoPowerN`]).
    TwoPowerN,
    /// Fully adaptive positive-hop routing ([`PositiveHop`]).
    PositiveHop,
    /// Fully adaptive negative-hop routing ([`NegativeHop`]).
    NegativeHop,
    /// Negative-hop routing with bonus cards ([`NegativeHopBonusCards`]).
    NegativeHopBonusCards,
    /// Deadlock-prone single-class minimal routing ([`NaiveMinimal`]) —
    /// not part of the paper's comparison; a strawman for demonstrating
    /// why deadlock avoidance matters.
    NaiveMinimal,
    /// Partially adaptive west-first turn-model routing ([`WestFirst`]) —
    /// not in the paper's comparison, but the other canonical Glass–Ni
    /// turn-model member, provided for extension studies.
    WestFirst,
}

impl AlgorithmKind {
    /// All six algorithms, in the order the paper's figures legend them.
    pub const fn all() -> [AlgorithmKind; 6] {
        [
            AlgorithmKind::NegativeHopBonusCards,
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::Ecube,
            AlgorithmKind::NorthLast,
        ]
    }

    /// The paper's six plus the repository's extension algorithms
    /// (west-first and the deadlock-prone naive strawman).
    pub const fn extended() -> [AlgorithmKind; 8] {
        [
            AlgorithmKind::NegativeHopBonusCards,
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::Ecube,
            AlgorithmKind::NorthLast,
            AlgorithmKind::WestFirst,
            AlgorithmKind::NaiveMinimal,
        ]
    }

    /// The paper's short name for this algorithm.
    pub const fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Ecube => "ecube",
            AlgorithmKind::NorthLast => "nlast",
            AlgorithmKind::TwoPowerN => "2pn",
            AlgorithmKind::PositiveHop => "phop",
            AlgorithmKind::NegativeHop => "nhop",
            AlgorithmKind::NegativeHopBonusCards => "nbc",
            AlgorithmKind::NaiveMinimal => "naive",
            AlgorithmKind::WestFirst => "wfirst",
        }
    }

    /// Builds the algorithm for `topo`.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's error, e.g.
    /// [`RoutingError::RequiresBipartite`] for nhop/nbc on odd tori.
    pub fn build(self, topo: &Topology) -> Result<Box<dyn RoutingAlgorithm>, RoutingError> {
        Ok(match self {
            AlgorithmKind::Ecube => Box::new(Ecube::new(topo)?),
            AlgorithmKind::NorthLast => Box::new(NorthLast::new(topo)?),
            AlgorithmKind::TwoPowerN => Box::new(TwoPowerN::new(topo)?),
            AlgorithmKind::PositiveHop => Box::new(PositiveHop::new(topo)?),
            AlgorithmKind::NegativeHop => Box::new(NegativeHop::new(topo)?),
            AlgorithmKind::NegativeHopBonusCards => Box::new(NegativeHopBonusCards::new(topo)?),
            AlgorithmKind::NaiveMinimal => Box::new(NaiveMinimal::new(topo)?),
            AlgorithmKind::WestFirst => Box::new(WestFirst::new(topo)?),
        })
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AlgorithmKind {
    type Err = RoutingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ecube" | "e-cube" => Ok(AlgorithmKind::Ecube),
            "nlast" | "north-last" | "northlast" => Ok(AlgorithmKind::NorthLast),
            "2pn" | "two-power-n" | "twopowern" => Ok(AlgorithmKind::TwoPowerN),
            "phop" | "positive-hop" | "positivehop" => Ok(AlgorithmKind::PositiveHop),
            "nhop" | "negative-hop" | "negativehop" => Ok(AlgorithmKind::NegativeHop),
            "nbc" | "negative-hop-bonus-cards" => Ok(AlgorithmKind::NegativeHopBonusCards),
            "naive" | "naive-minimal" => Ok(AlgorithmKind::NaiveMinimal),
            "wfirst" | "west-first" | "westfirst" => Ok(AlgorithmKind::WestFirst),
            other => Err(RoutingError::UnknownAlgorithm {
                name: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adaptivity;

    #[test]
    fn builds_all_six_on_paper_torus() {
        let topo = Topology::torus(&[16, 16]);
        let expected_classes = [9, 17, 9, 4, 2, 3];
        for (kind, classes) in AlgorithmKind::all().iter().zip(expected_classes) {
            let algo = kind.build(&topo).unwrap();
            assert_eq!(algo.num_vc_classes(), classes, "{kind}");
            assert_eq!(algo.name(), kind.name());
        }
    }

    #[test]
    fn adaptivity_classes_match_paper() {
        let topo = Topology::torus(&[16, 16]);
        let adaptivity = |k: AlgorithmKind| k.build(&topo).unwrap().adaptivity();
        assert_eq!(adaptivity(AlgorithmKind::Ecube), Adaptivity::NonAdaptive);
        assert_eq!(
            adaptivity(AlgorithmKind::NorthLast),
            Adaptivity::PartiallyAdaptive
        );
        for k in [
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::NegativeHopBonusCards,
        ] {
            assert_eq!(adaptivity(k), Adaptivity::FullyAdaptive);
        }
    }

    #[test]
    fn extended_includes_all() {
        let ext = AlgorithmKind::extended();
        for kind in AlgorithmKind::all() {
            assert!(ext.contains(&kind));
        }
        assert!(ext.contains(&AlgorithmKind::WestFirst));
        assert!(ext.contains(&AlgorithmKind::NaiveMinimal));
    }

    #[test]
    fn parse_roundtrip() {
        for kind in AlgorithmKind::extended() {
            assert_eq!(kind.name().parse::<AlgorithmKind>().unwrap(), kind);
        }
        assert!("warp-speed".parse::<AlgorithmKind>().is_err());
    }
}

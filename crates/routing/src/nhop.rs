//! The fully adaptive negative-hop (nhop) algorithm.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{Direction, NodeId, Parity, Sign, Topology};

/// Negative-hop routing, derived from Gopal's store-and-forward scheme.
///
/// The network's nodes are two-colored by coordinate parity (the graph is
/// bipartite for meshes and even-radix tori). A hop leaving an *odd* node
/// is **negative**; a message that has taken `i` negative hops reserves a
/// class-`i` virtual channel. Since at most every other hop is negative,
/// only `⌈diameter/2⌉ + 1` classes are needed — 9 on the 16×16 torus versus
/// phop's 17.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{NegativeHop, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let nhop = NegativeHop::new(&topo)?;
/// assert_eq!(nhop.num_vc_classes(), 9);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
///
/// # Errors
///
/// Construction fails on tori with odd radices, which are not bipartite
/// (the paper notes odd-k designs exist but "will not be considered any
/// further"; we match that scope).
#[derive(Clone, Debug)]
pub struct NegativeHop {
    classes: usize,
}

impl NegativeHop {
    /// Builds nhop for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::RequiresBipartite`] if the topology is a
    /// torus with any odd radix.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        if !topo.is_bipartite() {
            return Err(RoutingError::RequiresBipartite { algorithm: "nhop" });
        }
        Ok(NegativeHop {
            classes: topo.max_negative_hops() as usize + 1,
        })
    }

    /// The number of negative hops a message from `src` to `dest` will take
    /// on *any* minimal path.
    ///
    /// Because parity alternates along every path, the count depends only on
    /// the source parity and path length `L`: `⌈L/2⌉` from an odd source,
    /// `⌊L/2⌋` from an even one.
    pub fn negative_hops_needed(topo: &Topology, src: NodeId, dest: NodeId) -> u32 {
        let dist = topo.distance(src, dest);
        match topo.parity(src) {
            Parity::Odd => dist.div_ceil(2),
            Parity::Even => dist / 2,
        }
    }
}

impl RoutingAlgorithm for NegativeHop {
    fn name(&self) -> &'static str {
        "nhop"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = u8::try_from(state.negative_hops()).expect("negative hops fit u8");
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            for sign in [Sign::Plus, Sign::Minus] {
                if step.allows(sign) {
                    out.push(Candidate::new(Direction::new(dim, sign), class));
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // "Based on the virtual channel number it can use": a message
        // needing i negative hops uses exactly classes 0..=i.
        NegativeHop::negative_hops_needed(topo, state.src(), state.dest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper_formula() {
        // "For 16^2, for example, 9 buffer classes per node are sufficient."
        assert_eq!(
            NegativeHop::new(&Topology::torus(&[16, 16]))
                .unwrap()
                .num_vc_classes(),
            9
        );
        // 6^2: diameter 6, so 4 classes (c0..c3), matching the paper's
        // Figure 2 discussion ("all 4 virtual channels c0,c1,c2,c3").
        assert_eq!(
            NegativeHop::new(&Topology::torus(&[6, 6]))
                .unwrap()
                .num_vc_classes(),
            4
        );
    }

    #[test]
    fn rejects_odd_radix_torus() {
        assert!(matches!(
            NegativeHop::new(&Topology::torus(&[5, 6])),
            Err(RoutingError::RequiresBipartite { .. })
        ));
        // Odd-radix meshes are still bipartite.
        assert!(NegativeHop::new(&Topology::mesh(&[5, 5])).is_ok());
    }

    #[test]
    fn paper_figure_two_walk() {
        // (4,4) -> (3,4) -> (3,3) -> (2,3) -> (2,2) in 6^2 reserves classes
        // c0, c0, c1, c1.
        let topo = Topology::torus(&[6, 6]);
        let nhop = NegativeHop::new(&topo).unwrap();
        let src = topo.node_at(&[4, 4]);
        let dest = topo.node_at(&[2, 2]);
        let mut state = MessageRouteState::new(src, dest);
        nhop.init_message(&topo, &mut state);
        let hops = [
            ([4u16, 4u16], Direction::new(0, Sign::Minus)),
            ([3, 4], Direction::new(1, Sign::Minus)),
            ([3, 3], Direction::new(0, Sign::Minus)),
            ([2, 3], Direction::new(1, Sign::Minus)),
        ];
        let mut classes = Vec::new();
        for (at, dir) in hops {
            let here = topo.node_at(&at);
            let mut out = Vec::new();
            nhop.candidates(&topo, &state, here, &mut out);
            let taken = *out
                .iter()
                .find(|c| c.direction() == dir)
                .expect("fully adaptive: requested direction available");
            classes.push(taken.vc_class());
            state.advance(&topo, here, taken);
        }
        assert_eq!(classes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn negative_hops_needed_is_path_independent() {
        let topo = Topology::torus(&[6, 6]);
        // Walk random minimal paths and count actual negative hops.
        for (s, d) in [
            ([0u16, 0u16], [3u16, 2u16]),
            ([1, 0], [4, 4]),
            ([5, 5], [2, 2]),
        ] {
            let src = topo.node_at(&s);
            let dest = topo.node_at(&d);
            let needed = NegativeHop::negative_hops_needed(&topo, src, dest);
            let nhop = NegativeHop::new(&topo).unwrap();
            // Greedy walk always taking the first candidate.
            let mut state = MessageRouteState::new(src, dest);
            let mut here = src;
            while here != dest {
                let mut out = Vec::new();
                nhop.candidates(&topo, &state, here, &mut out);
                let taken = out[0];
                state.advance(&topo, here, taken);
                here = topo.neighbor(here, taken.direction()).unwrap();
            }
            assert_eq!(state.negative_hops(), needed);
            // And the last class used is within bounds.
            assert!(state.negative_hops() < nhop.num_vc_classes() as u32);
        }
    }

    #[test]
    fn max_class_reached_only_by_diametric_messages() {
        let topo = Topology::torus(&[16, 16]);
        let src = topo.node_at(&[0, 0]);
        let opposite = topo.node_at(&[8, 8]);
        assert_eq!(NegativeHop::negative_hops_needed(&topo, src, opposite), 8);
        let near = topo.node_at(&[1, 0]);
        assert_eq!(NegativeHop::negative_hops_needed(&topo, src, near), 0);
    }
}

//! Channel-dependency-graph (CDG) analysis.
//!
//! Builds the virtual-channel dependency graph of a routing algorithm on a
//! concrete topology by *exhaustive reachability analysis*: for every
//! source/destination pair, every reachable `(node, message-state)` pair is
//! enumerated, and an edge is recorded from each virtual channel a message
//! may hold to each virtual channel it may request next.
//!
//! An **acyclic** CDG proves the algorithm deadlock-free (Dally & Seitz).
//! A cyclic CDG is *inconclusive* for adaptive algorithms — a blocked
//! message with several candidates deadlocks only if **all** of them are
//! unavailable (Duato's criterion) — so the result distinguishes the two
//! cases rather than conflating "cyclic" with "deadlocks".
//!
//! # Example
//!
//! ```
//! use wormsim_topology::Topology;
//! use wormsim_routing::{AlgorithmKind, deadlock};
//!
//! let topo = Topology::torus(&[4, 4]);
//! let phop = AlgorithmKind::PositiveHop.build(&topo)?;
//! let report = deadlock::analyze(&topo, phop.as_ref());
//! assert!(report.is_acyclic());
//! # Ok::<(), wormsim_routing::RoutingError>(())
//! ```

use crate::{MessageRouteState, RoutingAlgorithm};
use std::collections::{HashMap, HashSet, VecDeque};
use wormsim_topology::{ChannelId, ChannelMask, NodeId, Topology};

/// A virtual channel: a physical channel plus a VC class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualChannelId {
    /// The physical channel.
    pub channel: ChannelId,
    /// The virtual-channel class on that physical channel.
    pub class: u8,
}

/// The result of a CDG analysis.
#[derive(Clone, Debug)]
pub enum CdgReport {
    /// No cycles: the algorithm is deadlock-free on this topology.
    Acyclic {
        /// Number of virtual channels that appeared in some dependency.
        vertices: usize,
        /// Number of distinct dependencies.
        edges: usize,
    },
    /// At least one cycle exists. Deadlock-freedom is *not disproved* for
    /// adaptive algorithms, but the sufficient condition failed.
    Cyclic {
        /// One witness cycle, in order (last element depends on the first).
        cycle: Vec<VirtualChannelId>,
        /// Number of virtual channels that appeared in some dependency.
        vertices: usize,
        /// Number of distinct dependencies.
        edges: usize,
    },
}

impl CdgReport {
    /// Whether the dependency graph is acyclic (sufficient for
    /// deadlock-freedom).
    pub fn is_acyclic(&self) -> bool {
        matches!(self, CdgReport::Acyclic { .. })
    }

    /// Vertices in the dependency graph.
    pub fn vertices(&self) -> usize {
        match self {
            CdgReport::Acyclic { vertices, .. } | CdgReport::Cyclic { vertices, .. } => *vertices,
        }
    }

    /// Edges in the dependency graph.
    pub fn edges(&self) -> usize {
        match self {
            CdgReport::Acyclic { edges, .. } | CdgReport::Cyclic { edges, .. } => *edges,
        }
    }
}

/// The full channel-dependency graph of an algorithm on a topology.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    adjacency: HashMap<VirtualChannelId, HashSet<VirtualChannelId>>,
}

impl DependencyGraph {
    /// Builds the dependency graph by exhaustive reachability analysis.
    ///
    /// Every `(source, destination)` pair is expanded over all reachable
    /// `(node, state)` configurations; dependencies are added from the
    /// virtual channel of each possible hop to the virtual channels of every
    /// possible *next* hop.
    pub fn build(topo: &Topology, algo: &dyn RoutingAlgorithm) -> Self {
        Self::build_from_pairs(
            topo,
            algo,
            topo.nodes()
                .flat_map(|src| topo.nodes().map(move |dest| (src, dest))),
        )
    }

    /// Builds the dependency graph from an explicit set of `(source,
    /// destination)` pairs (self-pairs are skipped). The result is a
    /// *subgraph* of the full CDG: acyclicity of the full graph implies
    /// acyclicity here, but not conversely — a cycle found this way is
    /// always real, while a clean report from a sample is a witness, not a
    /// proof. Useful where the all-pairs expansion is intractable (e.g. a
    /// strided source sample on the 4096-node 16-ary 3-cube).
    pub fn build_from_pairs(
        topo: &Topology,
        algo: &dyn RoutingAlgorithm,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut graph = DependencyGraph::default();
        let mut candidates = Vec::new();
        let mut next_candidates = Vec::new();
        for (src, dest) in pairs {
            if src == dest {
                continue;
            }
            graph.expand_pair(
                topo,
                None,
                algo,
                src,
                dest,
                &mut candidates,
                &mut next_candidates,
                &mut 0,
            );
        }
        graph
    }

    /// Builds the dependency graph over the *surviving* subgraph of `mask`:
    /// pairs with a dead or unreachable endpoint are skipped, and candidates
    /// on dead channels are dropped before any dependency is recorded.
    ///
    /// Returns the graph plus the number of excluded pairs and the number of
    /// reachable `(node, state)` configurations whose entire candidate set
    /// is dead (places where a minimal algorithm would strand a message).
    pub fn build_masked(
        topo: &Topology,
        mask: &ChannelMask,
        algo: &dyn RoutingAlgorithm,
    ) -> (Self, u64, u64) {
        let mut graph = DependencyGraph::default();
        let mut candidates = Vec::new();
        let mut next_candidates = Vec::new();
        let mut excluded_pairs = 0u64;
        let mut blocked_states = 0u64;
        for src in topo.nodes() {
            let reach = topo.reachable_from(mask, src);
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                if !mask.node_alive(dest) || !reach[dest.index() as usize] {
                    excluded_pairs += 1;
                    continue;
                }
                graph.expand_pair(
                    topo,
                    Some(mask),
                    algo,
                    src,
                    dest,
                    &mut candidates,
                    &mut next_candidates,
                    &mut blocked_states,
                );
            }
        }
        (graph, excluded_pairs, blocked_states)
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_pair(
        &mut self,
        topo: &Topology,
        mask: Option<&ChannelMask>,
        algo: &dyn RoutingAlgorithm,
        src: NodeId,
        dest: NodeId,
        candidates: &mut Vec<crate::Candidate>,
        next_candidates: &mut Vec<crate::Candidate>,
        blocked_states: &mut u64,
    ) {
        let mut initial = MessageRouteState::new(src, dest);
        algo.init_message(topo, &mut initial);
        let mut seen: HashSet<(NodeId, MessageRouteState)> = HashSet::new();
        let mut queue: VecDeque<(NodeId, MessageRouteState)> = VecDeque::new();
        seen.insert((src, initial));
        queue.push_back((src, initial));
        while let Some((node, state)) = queue.pop_front() {
            candidates.clear();
            algo.candidates(topo, &state, node, candidates);
            if let Some(mask) = mask {
                candidates.retain(|c| mask.channel_alive(topo.channel(node, c.direction())));
                if candidates.is_empty() {
                    *blocked_states += 1;
                    continue;
                }
            }
            for &taken in candidates.iter() {
                let next = topo
                    .neighbor(node, taken.direction())
                    .expect("candidate on nonexistent channel");
                let held = VirtualChannelId {
                    channel: topo.channel(node, taken.direction()),
                    class: taken.vc_class(),
                };
                let mut next_state = state;
                next_state.advance(topo, node, taken);
                if next != dest {
                    next_candidates.clear();
                    algo.candidates(topo, &next_state, next, next_candidates);
                    if let Some(mask) = mask {
                        next_candidates
                            .retain(|c| mask.channel_alive(topo.channel(next, c.direction())));
                    }
                    for &want in next_candidates.iter() {
                        let wanted = VirtualChannelId {
                            channel: topo.channel(next, want.direction()),
                            class: want.vc_class(),
                        };
                        self.adjacency.entry(held).or_default().insert(wanted);
                    }
                    if seen.insert((next, next_state)) {
                        queue.push_back((next, next_state));
                    }
                } else {
                    // Terminal hop: the held channel still becomes a vertex.
                    self.adjacency.entry(held).or_default();
                }
            }
        }
    }

    /// Number of vertices (virtual channels that appear in a dependency).
    pub fn num_vertices(&self) -> usize {
        let mut verts: HashSet<VirtualChannelId> = self.adjacency.keys().copied().collect();
        for targets in self.adjacency.values() {
            verts.extend(targets.iter().copied());
        }
        verts.len()
    }

    /// Number of edges (distinct dependencies).
    pub fn num_edges(&self) -> usize {
        self.adjacency.values().map(|t| t.len()).sum()
    }

    /// Searches for a cycle; returns one witness if present.
    pub fn find_cycle(&self) -> Option<Vec<VirtualChannelId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<VirtualChannelId, Color> = HashMap::new();
        let empty: HashSet<VirtualChannelId> = HashSet::new();
        // Deterministic iteration order helps reproducible witnesses.
        let mut roots: Vec<VirtualChannelId> = self.adjacency.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            if *color.get(&root).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            // Iterative DFS with an explicit path stack.
            let mut stack: Vec<(VirtualChannelId, Vec<VirtualChannelId>)> = Vec::new();
            let mut neighbors: Vec<VirtualChannelId> = self
                .adjacency
                .get(&root)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .collect();
            neighbors.sort_unstable();
            color.insert(root, Color::Gray);
            stack.push((root, neighbors));
            let mut path = vec![root];
            while let Some((node, todo)) = stack.last_mut() {
                if let Some(next) = todo.pop() {
                    match *color.get(&next).unwrap_or(&Color::White) {
                        Color::Gray => {
                            // Found a cycle: slice the path from `next`.
                            let start = path.iter().position(|&v| v == next).expect("on path");
                            return Some(path[start..].to_vec());
                        }
                        Color::White => {
                            color.insert(next, Color::Gray);
                            let mut nn: Vec<VirtualChannelId> = self
                                .adjacency
                                .get(&next)
                                .unwrap_or(&empty)
                                .iter()
                                .copied()
                                .collect();
                            nn.sort_unstable();
                            path.push(next);
                            stack.push((next, nn));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(*node, Color::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

/// Builds the CDG for `algo` on `topo` and checks it for cycles.
pub fn analyze(topo: &Topology, algo: &dyn RoutingAlgorithm) -> CdgReport {
    let graph = DependencyGraph::build(topo, algo);
    let vertices = graph.num_vertices();
    let edges = graph.num_edges();
    match graph.find_cycle() {
        None => CdgReport::Acyclic { vertices, edges },
        Some(cycle) => CdgReport::Cyclic {
            cycle,
            vertices,
            edges,
        },
    }
}

/// The result of a CDG analysis over the surviving subgraph of a fault
/// mask (see [`analyze_masked`]).
#[derive(Clone, Debug)]
pub struct MaskedCdgReport {
    /// The cycle analysis of the surviving dependency graph.
    pub report: CdgReport,
    /// Ordered pairs skipped because an endpoint is dead or unreachable.
    pub excluded_pairs: u64,
    /// Reachable `(node, message-state)` configurations whose entire
    /// candidate set is on dead channels: a minimal algorithm strands any
    /// message that reaches one (a misrouting fallback is needed there).
    pub blocked_states: u64,
}

impl MaskedCdgReport {
    /// Whether the surviving graph is acyclic *and* no reachable state is
    /// stranded — the conditions for the algorithm's own candidate sets to
    /// keep working under this mask without fallback.
    pub fn is_clean(&self) -> bool {
        self.report.is_acyclic() && self.blocked_states == 0
    }
}

/// Like [`analyze`], but over the surviving subgraph of `mask`: pairs with
/// dead or unreachable endpoints are excluded, and dependencies through
/// dead channels are never recorded.
///
/// # Example
///
/// ```
/// use wormsim_topology::{Direction, Sign, Topology};
/// use wormsim_routing::{deadlock, AlgorithmKind};
///
/// let topo = Topology::torus(&[4, 4]);
/// let mut mask = wormsim_topology::ChannelMask::all_alive(&topo);
/// mask.kill_channel(topo.channel(topo.node_at(&[0, 0]), Direction::new(0, Sign::Plus)));
/// let phop = AlgorithmKind::PositiveHop.build(&topo)?;
/// let report = deadlock::analyze_masked(&topo, &mask, phop.as_ref());
/// // The surviving dependencies stay acyclic, but phop is minimal: some
/// // states now have every candidate dead and would strand a message.
/// assert!(report.report.is_acyclic());
/// assert!(report.blocked_states > 0);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
pub fn analyze_masked(
    topo: &Topology,
    mask: &ChannelMask,
    algo: &dyn RoutingAlgorithm,
) -> MaskedCdgReport {
    let (graph, excluded_pairs, blocked_states) = DependencyGraph::build_masked(topo, mask, algo);
    let vertices = graph.num_vertices();
    let edges = graph.num_edges();
    let report = match graph.find_cycle() {
        None => CdgReport::Acyclic { vertices, edges },
        Some(cycle) => CdgReport::Cyclic {
            cycle,
            vertices,
            edges,
        },
    };
    MaskedCdgReport {
        report,
        excluded_pairs,
        blocked_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgorithmKind;

    fn report_for(kind: AlgorithmKind, topo: &Topology) -> CdgReport {
        let algo = kind.build(topo).unwrap();
        analyze(topo, algo.as_ref())
    }

    #[test]
    fn ecube_is_acyclic_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let report = report_for(AlgorithmKind::Ecube, &topo);
        assert!(report.is_acyclic(), "{report:?}");
        assert!(report.vertices() > 0 && report.edges() > 0);
    }

    #[test]
    fn ecube_is_acyclic_on_mesh() {
        let topo = Topology::mesh(&[4, 4]);
        assert!(report_for(AlgorithmKind::Ecube, &topo).is_acyclic());
    }

    #[test]
    fn hop_schemes_are_acyclic_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        for kind in [
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::NegativeHopBonusCards,
        ] {
            let report = report_for(kind, &topo);
            assert!(report.is_acyclic(), "{kind}: {report:?}");
        }
    }

    #[test]
    fn hop_schemes_are_acyclic_on_six_torus() {
        let topo = Topology::torus(&[6, 6]);
        for kind in [AlgorithmKind::PositiveHop, AlgorithmKind::NegativeHop] {
            assert!(report_for(kind, &topo).is_acyclic(), "{kind}");
        }
    }

    #[test]
    fn two_power_n_is_acyclic_on_mesh() {
        let topo = Topology::mesh(&[4, 4]);
        assert!(report_for(AlgorithmKind::TwoPowerN, &topo).is_acyclic());
        // The untagged-top-dimension trick holds in 3D as well.
        let topo = Topology::mesh(&[4, 4, 4]);
        assert!(report_for(AlgorithmKind::TwoPowerN, &topo).is_acyclic());
    }

    #[test]
    fn two_power_n_paper_torus_variant_is_cyclic() {
        // Known limitation, kept deliberately: on 1D/2D tori 2pn runs the
        // paper's published Equation-1 scheme, whose tag classes mix
        // wrap-around (Plus) and direct (Minus) travel in the same
        // dimension. That CDG has a genuine cycle on *every* 2D torus —
        // the seed never checked 2pn on a torus, only on a mesh. A cyclic
        // CDG is inconclusive for a fully adaptive algorithm (Duato), the
        // paper's 16×16 figures reproduce fine, and the seed-1993 goldens
        // pin the behavior bit-for-bit, so the 2D variant stays as
        // published. Tori with n >= 3 use the corrected dateline-levelled
        // variant, which the tests above prove acyclic.
        let topo = Topology::torus(&[6, 6]);
        let report = report_for(AlgorithmKind::TwoPowerN, &topo);
        assert!(!report.is_acyclic(), "{report:?}");
    }

    #[test]
    fn all_paper_algorithms_acyclic_on_small_3d_cube() {
        // The VC-class rules are parameterized over `n`; exercise them
        // exhaustively on a 4-ary 3-cube (64 nodes, diameter 6).
        let topo = Topology::k_ary_n_cube(4, 3);
        for kind in AlgorithmKind::all() {
            let report = report_for(kind, &topo);
            assert!(report.is_acyclic(), "{kind}: {report:?}");
            assert!(report.vertices() > 0 && report.edges() > 0, "{kind}");
        }
    }

    #[test]
    fn all_paper_algorithms_acyclic_on_mixed_radix_3d_torus() {
        // Per-dimension radices may differ; 4×6×8 keeps every radix even
        // (the negative-hop schemes need a bipartite network) while making
        // any hidden uniform-radix assumption fail loudly.
        let topo = Topology::torus(&[4, 6, 8]);
        for kind in AlgorithmKind::all() {
            let report = report_for(kind, &topo);
            assert!(report.is_acyclic(), "{kind}: {report:?}");
        }
    }

    #[test]
    fn ecube_is_acyclic_on_3d_mesh() {
        let topo = Topology::mesh(&[4, 4, 4]);
        assert!(report_for(AlgorithmKind::Ecube, &topo).is_acyclic());
    }

    /// The paper-scale 3D check: all six algorithms on the 8-ary 3-cube
    /// (512 nodes). Exhaustive over all ordered pairs, so it is `#[ignore]`
    /// under plain `cargo test`; CI runs it in release via
    /// `cargo test --release -p wormsim-routing -- --ignored` (the
    /// large-network CDG sweep step).
    #[test]
    #[ignore = "exhaustive 512-node CDG sweep; run with --release -- --ignored"]
    fn all_paper_algorithms_acyclic_on_8_ary_3_cube() {
        let topo = Topology::k_ary_n_cube(8, 3);
        for kind in AlgorithmKind::all() {
            let report = report_for(kind, &topo);
            assert!(report.is_acyclic(), "{kind}: {report:?}");
        }
    }

    /// The 16-ary 3-cube (4096 nodes) on a deterministic strided sample of
    /// sources: the all-pairs expansion (~16.8M pairs) is intractable, but
    /// any cycle a sampled subgraph exhibits is real, and the n≥3 class
    /// disciplines (2pn's travel-sign tags, nlast's per-dimension gating)
    /// are radix-independent — the exhaustive 8³ test above plus the
    /// module-doc proofs carry the full claim; this is the large-radix
    /// witness.
    #[test]
    #[ignore = "sampled 4096-node CDG sweep; run with --release -- --ignored"]
    fn all_paper_algorithms_acyclic_on_16_ary_3_cube_sampled() {
        let topo = Topology::k_ary_n_cube(16, 3);
        // Stride co-prime with the node count so sampled sources spread
        // over all coordinate residues rather than one hyperplane.
        let srcs: Vec<_> = topo.nodes().step_by(307).collect();
        for kind in AlgorithmKind::all() {
            let algo = kind.build(&topo).unwrap();
            let graph = DependencyGraph::build_from_pairs(
                &topo,
                algo.as_ref(),
                srcs.iter()
                    .flat_map(|&src| topo.nodes().map(move |dest| (src, dest))),
            );
            assert!(graph.find_cycle().is_none(), "{kind} has a sampled cycle");
        }
    }

    #[test]
    fn trivial_mask_matches_unmasked_analysis() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::NegativeHop.build(&topo).unwrap();
        let plain = analyze(&topo, algo.as_ref());
        let masked = analyze_masked(&topo, &ChannelMask::all_alive(&topo), algo.as_ref());
        assert!(masked.is_clean());
        assert_eq!(masked.excluded_pairs, 0);
        assert_eq!(masked.report.vertices(), plain.vertices());
        assert_eq!(masked.report.edges(), plain.edges());
    }

    #[test]
    fn dead_node_excludes_its_pairs_and_stays_acyclic() {
        // A mesh pins minimal paths down: (0,1) -> (2,1) must pass through
        // the dead node (1,1), so that state is stranded ("blocked").
        let topo = Topology::mesh(&[4, 4]);
        let mut mask = ChannelMask::all_alive(&topo);
        mask.kill_node(&topo, topo.node_at(&[1, 1]));
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let masked = analyze_masked(&topo, &mask, algo.as_ref());
        // 15 ordered pairs into the dead node + 15 out of it.
        assert_eq!(masked.excluded_pairs, 30);
        assert!(masked.report.is_acyclic());
        // Minimal routing strands some messages around the hole.
        assert!(masked.blocked_states > 0);
    }

    #[test]
    fn broken_algorithm_is_detected() {
        // A deliberately deadlock-prone algorithm: fully adaptive torus
        // routing on a single VC class. The wrap-around rings form an
        // obvious cycle; the checker must find it.
        #[derive(Debug)]
        struct SingleClass;
        impl RoutingAlgorithm for SingleClass {
            fn name(&self) -> &'static str {
                "single-class"
            }
            fn adaptivity(&self) -> crate::Adaptivity {
                crate::Adaptivity::FullyAdaptive
            }
            fn num_vc_classes(&self) -> usize {
                1
            }
            fn candidates(
                &self,
                topo: &Topology,
                state: &MessageRouteState,
                here: NodeId,
                out: &mut Vec<crate::Candidate>,
            ) {
                use wormsim_topology::{Direction, Sign};
                for dim in 0..topo.num_dims() {
                    let step = topo.dim_step(here, state.dest(), dim);
                    for sign in [Sign::Plus, Sign::Minus] {
                        if step.allows(sign) {
                            out.push(crate::Candidate::new(Direction::new(dim, sign), 0));
                        }
                    }
                }
            }
            fn injection_class(&self, _: &Topology, _: &MessageRouteState) -> u32 {
                0
            }
        }
        let topo = Topology::torus(&[4, 4]);
        let report = analyze(&topo, &SingleClass);
        match report {
            CdgReport::Cyclic { cycle, .. } => assert!(cycle.len() >= 2),
            CdgReport::Acyclic { .. } => panic!("single-class torus routing must be cyclic"),
        }
    }
}

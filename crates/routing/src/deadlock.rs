//! Channel-dependency-graph (CDG) analysis.
//!
//! Builds the virtual-channel dependency graph of a routing algorithm on a
//! concrete topology by *exhaustive reachability analysis*: for every
//! source/destination pair, every reachable `(node, message-state)` pair is
//! enumerated, and an edge is recorded from each virtual channel a message
//! may hold to each virtual channel it may request next.
//!
//! An **acyclic** CDG proves the algorithm deadlock-free (Dally & Seitz).
//! A cyclic CDG is *inconclusive* for adaptive algorithms — a blocked
//! message with several candidates deadlocks only if **all** of them are
//! unavailable (Duato's criterion) — so the result distinguishes the two
//! cases rather than conflating "cyclic" with "deadlocks".
//!
//! # Example
//!
//! ```
//! use wormsim_topology::Topology;
//! use wormsim_routing::{AlgorithmKind, deadlock};
//!
//! let topo = Topology::torus(&[4, 4]);
//! let phop = AlgorithmKind::PositiveHop.build(&topo)?;
//! let report = deadlock::analyze(&topo, phop.as_ref());
//! assert!(report.is_acyclic());
//! # Ok::<(), wormsim_routing::RoutingError>(())
//! ```

use crate::{MessageRouteState, RoutingAlgorithm};
use std::collections::{HashMap, HashSet, VecDeque};
use wormsim_topology::{ChannelId, NodeId, Topology};

/// A virtual channel: a physical channel plus a VC class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualChannelId {
    /// The physical channel.
    pub channel: ChannelId,
    /// The virtual-channel class on that physical channel.
    pub class: u8,
}

/// The result of a CDG analysis.
#[derive(Clone, Debug)]
pub enum CdgReport {
    /// No cycles: the algorithm is deadlock-free on this topology.
    Acyclic {
        /// Number of virtual channels that appeared in some dependency.
        vertices: usize,
        /// Number of distinct dependencies.
        edges: usize,
    },
    /// At least one cycle exists. Deadlock-freedom is *not disproved* for
    /// adaptive algorithms, but the sufficient condition failed.
    Cyclic {
        /// One witness cycle, in order (last element depends on the first).
        cycle: Vec<VirtualChannelId>,
        /// Number of virtual channels that appeared in some dependency.
        vertices: usize,
        /// Number of distinct dependencies.
        edges: usize,
    },
}

impl CdgReport {
    /// Whether the dependency graph is acyclic (sufficient for
    /// deadlock-freedom).
    pub fn is_acyclic(&self) -> bool {
        matches!(self, CdgReport::Acyclic { .. })
    }

    /// Vertices in the dependency graph.
    pub fn vertices(&self) -> usize {
        match self {
            CdgReport::Acyclic { vertices, .. } | CdgReport::Cyclic { vertices, .. } => *vertices,
        }
    }

    /// Edges in the dependency graph.
    pub fn edges(&self) -> usize {
        match self {
            CdgReport::Acyclic { edges, .. } | CdgReport::Cyclic { edges, .. } => *edges,
        }
    }
}

/// The full channel-dependency graph of an algorithm on a topology.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    adjacency: HashMap<VirtualChannelId, HashSet<VirtualChannelId>>,
}

impl DependencyGraph {
    /// Builds the dependency graph by exhaustive reachability analysis.
    ///
    /// Every `(source, destination)` pair is expanded over all reachable
    /// `(node, state)` configurations; dependencies are added from the
    /// virtual channel of each possible hop to the virtual channels of every
    /// possible *next* hop.
    pub fn build(topo: &Topology, algo: &dyn RoutingAlgorithm) -> Self {
        let mut graph = DependencyGraph::default();
        let mut candidates = Vec::new();
        let mut next_candidates = Vec::new();
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                graph.expand_pair(topo, algo, src, dest, &mut candidates, &mut next_candidates);
            }
        }
        graph
    }

    fn expand_pair(
        &mut self,
        topo: &Topology,
        algo: &dyn RoutingAlgorithm,
        src: NodeId,
        dest: NodeId,
        candidates: &mut Vec<crate::Candidate>,
        next_candidates: &mut Vec<crate::Candidate>,
    ) {
        let mut initial = MessageRouteState::new(src, dest);
        algo.init_message(topo, &mut initial);
        let mut seen: HashSet<(NodeId, MessageRouteState)> = HashSet::new();
        let mut queue: VecDeque<(NodeId, MessageRouteState)> = VecDeque::new();
        seen.insert((src, initial));
        queue.push_back((src, initial));
        while let Some((node, state)) = queue.pop_front() {
            candidates.clear();
            algo.candidates(topo, &state, node, candidates);
            for &taken in candidates.iter() {
                let next = topo
                    .neighbor(node, taken.direction())
                    .expect("candidate on nonexistent channel");
                let held = VirtualChannelId {
                    channel: topo.channel(node, taken.direction()),
                    class: taken.vc_class(),
                };
                let mut next_state = state;
                next_state.advance(topo, node, taken);
                if next != dest {
                    next_candidates.clear();
                    algo.candidates(topo, &next_state, next, next_candidates);
                    for &want in next_candidates.iter() {
                        let wanted = VirtualChannelId {
                            channel: topo.channel(next, want.direction()),
                            class: want.vc_class(),
                        };
                        self.adjacency.entry(held).or_default().insert(wanted);
                    }
                    if seen.insert((next, next_state)) {
                        queue.push_back((next, next_state));
                    }
                } else {
                    // Terminal hop: the held channel still becomes a vertex.
                    self.adjacency.entry(held).or_default();
                }
            }
        }
    }

    /// Number of vertices (virtual channels that appear in a dependency).
    pub fn num_vertices(&self) -> usize {
        let mut verts: HashSet<VirtualChannelId> = self.adjacency.keys().copied().collect();
        for targets in self.adjacency.values() {
            verts.extend(targets.iter().copied());
        }
        verts.len()
    }

    /// Number of edges (distinct dependencies).
    pub fn num_edges(&self) -> usize {
        self.adjacency.values().map(|t| t.len()).sum()
    }

    /// Searches for a cycle; returns one witness if present.
    pub fn find_cycle(&self) -> Option<Vec<VirtualChannelId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<VirtualChannelId, Color> = HashMap::new();
        let empty: HashSet<VirtualChannelId> = HashSet::new();
        // Deterministic iteration order helps reproducible witnesses.
        let mut roots: Vec<VirtualChannelId> = self.adjacency.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            if *color.get(&root).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            // Iterative DFS with an explicit path stack.
            let mut stack: Vec<(VirtualChannelId, Vec<VirtualChannelId>)> = Vec::new();
            let mut neighbors: Vec<VirtualChannelId> = self
                .adjacency
                .get(&root)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .collect();
            neighbors.sort_unstable();
            color.insert(root, Color::Gray);
            stack.push((root, neighbors));
            let mut path = vec![root];
            while let Some((node, todo)) = stack.last_mut() {
                if let Some(next) = todo.pop() {
                    match *color.get(&next).unwrap_or(&Color::White) {
                        Color::Gray => {
                            // Found a cycle: slice the path from `next`.
                            let start = path.iter().position(|&v| v == next).expect("on path");
                            return Some(path[start..].to_vec());
                        }
                        Color::White => {
                            color.insert(next, Color::Gray);
                            let mut nn: Vec<VirtualChannelId> = self
                                .adjacency
                                .get(&next)
                                .unwrap_or(&empty)
                                .iter()
                                .copied()
                                .collect();
                            nn.sort_unstable();
                            path.push(next);
                            stack.push((next, nn));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(*node, Color::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

/// Builds the CDG for `algo` on `topo` and checks it for cycles.
pub fn analyze(topo: &Topology, algo: &dyn RoutingAlgorithm) -> CdgReport {
    let graph = DependencyGraph::build(topo, algo);
    let vertices = graph.num_vertices();
    let edges = graph.num_edges();
    match graph.find_cycle() {
        None => CdgReport::Acyclic { vertices, edges },
        Some(cycle) => CdgReport::Cyclic {
            cycle,
            vertices,
            edges,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgorithmKind;

    fn report_for(kind: AlgorithmKind, topo: &Topology) -> CdgReport {
        let algo = kind.build(topo).unwrap();
        analyze(topo, algo.as_ref())
    }

    #[test]
    fn ecube_is_acyclic_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let report = report_for(AlgorithmKind::Ecube, &topo);
        assert!(report.is_acyclic(), "{report:?}");
        assert!(report.vertices() > 0 && report.edges() > 0);
    }

    #[test]
    fn ecube_is_acyclic_on_mesh() {
        let topo = Topology::mesh(&[4, 4]);
        assert!(report_for(AlgorithmKind::Ecube, &topo).is_acyclic());
    }

    #[test]
    fn hop_schemes_are_acyclic_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        for kind in [
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::NegativeHopBonusCards,
        ] {
            let report = report_for(kind, &topo);
            assert!(report.is_acyclic(), "{kind}: {report:?}");
        }
    }

    #[test]
    fn hop_schemes_are_acyclic_on_six_torus() {
        let topo = Topology::torus(&[6, 6]);
        for kind in [AlgorithmKind::PositiveHop, AlgorithmKind::NegativeHop] {
            assert!(report_for(kind, &topo).is_acyclic(), "{kind}");
        }
    }

    #[test]
    fn two_power_n_is_acyclic_on_mesh() {
        let topo = Topology::mesh(&[4, 4]);
        assert!(report_for(AlgorithmKind::TwoPowerN, &topo).is_acyclic());
    }

    #[test]
    fn broken_algorithm_is_detected() {
        // A deliberately deadlock-prone algorithm: fully adaptive torus
        // routing on a single VC class. The wrap-around rings form an
        // obvious cycle; the checker must find it.
        #[derive(Debug)]
        struct SingleClass;
        impl RoutingAlgorithm for SingleClass {
            fn name(&self) -> &'static str {
                "single-class"
            }
            fn adaptivity(&self) -> crate::Adaptivity {
                crate::Adaptivity::FullyAdaptive
            }
            fn num_vc_classes(&self) -> usize {
                1
            }
            fn candidates(
                &self,
                topo: &Topology,
                state: &MessageRouteState,
                here: NodeId,
                out: &mut Vec<crate::Candidate>,
            ) {
                use wormsim_topology::{Direction, Sign};
                for dim in 0..topo.num_dims() {
                    let step = topo.dim_step(here, state.dest(), dim);
                    for sign in [Sign::Plus, Sign::Minus] {
                        if step.allows(sign) {
                            out.push(crate::Candidate::new(Direction::new(dim, sign), 0));
                        }
                    }
                }
            }
            fn injection_class(&self, _: &Topology, _: &MessageRouteState) -> u32 {
                0
            }
        }
        let topo = Topology::torus(&[4, 4]);
        let report = analyze(&topo, &SingleClass);
        match report {
            CdgReport::Cyclic { cycle, .. } => assert!(cycle.len() >= 2),
            CdgReport::Acyclic { .. } => panic!("single-class torus routing must be cyclic"),
        }
    }
}

//! Errors for routing-algorithm construction.

use std::fmt;

/// Errors produced when building a routing algorithm for a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// The negative-hop schemes need the bipartite (two-colorable) property,
    /// which tori with an odd radix lack.
    RequiresBipartite {
        /// The algorithm that was requested.
        algorithm: &'static str,
    },
    /// The algorithm is only defined for networks with at least this many
    /// dimensions.
    NeedsDimensions {
        /// The algorithm that was requested.
        algorithm: &'static str,
        /// Minimum number of dimensions required.
        needs: usize,
        /// Number of dimensions the topology has.
        got: usize,
    },
    /// The topology has too many dimensions for the algorithm's class
    /// encoding (e.g. 2pn tags are limited to 8 dimensions).
    TooManyDimensions {
        /// The algorithm that was requested.
        algorithm: &'static str,
        /// Maximum number of dimensions supported.
        max: usize,
        /// Number of dimensions the topology has.
        got: usize,
    },
    /// An algorithm name failed to parse.
    UnknownAlgorithm {
        /// The unrecognized name.
        name: String,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::RequiresBipartite { algorithm } => write!(
                f,
                "{algorithm} requires a bipartite network (mesh, or torus with even radices)"
            ),
            RoutingError::NeedsDimensions {
                algorithm,
                needs,
                got,
            } => write!(
                f,
                "{algorithm} needs at least {needs} dimensions, topology has {got}"
            ),
            RoutingError::TooManyDimensions {
                algorithm,
                max,
                got,
            } => write!(
                f,
                "{algorithm} supports at most {max} dimensions, topology has {got}"
            ),
            RoutingError::UnknownAlgorithm { name } => {
                write!(f, "unknown routing algorithm '{name}'")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RoutingError::RequiresBipartite { algorithm: "nhop" };
        assert!(e.to_string().contains("bipartite"));
        let e = RoutingError::UnknownAlgorithm {
            name: "zigzag".into(),
        };
        assert!(e.to_string().contains("zigzag"));
    }
}

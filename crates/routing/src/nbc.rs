//! The fully adaptive negative-hop-with-bonus-cards (nbc) algorithm.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, NegativeHop, RoutingAlgorithm,
    RoutingError,
};
use wormsim_topology::{Direction, NodeId, Sign, Topology};

/// Negative-hop routing with **bonus cards**: nhop plus virtual-channel
/// load balancing.
///
/// Plain nhop loads low-numbered VC classes much more heavily than high
/// ones (every message starts at class 0; only diametrically opposite pairs
/// ever reach the top class). nbc evens this out: a message receives
///
/// ```text
/// bonus cards b = (max possible negative hops in the network)
///               - (negative hops this message will take)
/// ```
///
/// and may use *any* class `0..=b` for its **first** hop — preferably the
/// least congested one, which the simulator's candidate-selection policy
/// provides. Every later hop uses `base_class + negative_hops`, exactly as
/// nhop does relative to the chosen start. The class ceiling is unchanged,
/// so nbc needs the same `⌈diameter/2⌉ + 1` classes as nhop (9 on 16²).
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{NegativeHopBonusCards, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let nbc = NegativeHopBonusCards::new(&topo)?;
///
/// // A one-hop message takes 0 negative hops, so it gets all 8 bonus
/// // cards: 9 first-hop class choices on its single minimal direction.
/// let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[1, 0]));
/// let mut out = Vec::new();
/// nbc.candidates(&topo, &state, state.src(), &mut out);
/// assert_eq!(out.len(), 9);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NegativeHopBonusCards {
    classes: usize,
    max_negative_hops: u32,
}

impl NegativeHopBonusCards {
    /// Builds nbc for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::RequiresBipartite`] if the topology is a
    /// torus with any odd radix.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        if !topo.is_bipartite() {
            return Err(RoutingError::RequiresBipartite { algorithm: "nbc" });
        }
        Ok(NegativeHopBonusCards {
            classes: topo.max_negative_hops() as usize + 1,
            max_negative_hops: topo.max_negative_hops(),
        })
    }

    /// The number of bonus cards a message from `src` to `dest` receives.
    pub fn bonus_cards(&self, topo: &Topology, src: NodeId, dest: NodeId) -> u32 {
        self.max_negative_hops - NegativeHop::negative_hops_needed(topo, src, dest)
    }
}

impl RoutingAlgorithm for NegativeHopBonusCards {
    fn name(&self) -> &'static str {
        "nbc"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        if state.at_source() {
            let b = self.bonus_cards(topo, state.src(), state.dest()) as u8;
            for dim in 0..topo.num_dims() {
                let step = topo.dim_step(here, state.dest(), dim);
                for sign in [Sign::Plus, Sign::Minus] {
                    if step.allows(sign) {
                        for class in 0..=b {
                            out.push(Candidate::new(Direction::new(dim, sign), class));
                        }
                    }
                }
            }
        } else {
            let class = state.base_class() + u8::try_from(state.negative_hops()).expect("fits u8");
            for dim in 0..topo.num_dims() {
                let step = topo.dim_step(here, state.dest(), dim);
                for sign in [Sign::Plus, Sign::Minus] {
                    if step.allows(sign) {
                        out.push(Candidate::new(Direction::new(dim, sign), class));
                    }
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // Bucket by bonus cards: the set of virtual channels the message
        // can use at injection.
        self.bonus_cards(topo, state.src(), state.dest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonus_card_formula() {
        let topo = Topology::torus(&[16, 16]);
        let nbc = NegativeHopBonusCards::new(&topo).unwrap();
        let src = topo.node_at(&[0, 0]);
        // Diametrically opposite: 8 negative hops needed, 0 bonus cards.
        assert_eq!(nbc.bonus_cards(&topo, src, topo.node_at(&[8, 8])), 0);
        // One hop away: 0 negative hops needed, all 8 cards.
        assert_eq!(nbc.bonus_cards(&topo, src, topo.node_at(&[1, 0])), 8);
    }

    #[test]
    fn zero_bonus_cards_behaves_like_nhop() {
        let topo = Topology::torus(&[16, 16]);
        let nbc = NegativeHopBonusCards::new(&topo).unwrap();
        let nhop = NegativeHop::new(&topo).unwrap();
        let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[8, 8]));
        let mut ours = Vec::new();
        nbc.candidates(&topo, &state, state.src(), &mut ours);
        let mut theirs = Vec::new();
        nhop.candidates(&topo, &state, state.src(), &mut theirs);
        assert_eq!(ours, theirs);
    }

    #[test]
    fn classes_never_exceed_ceiling_on_any_walk() {
        let topo = Topology::torus(&[8, 8]);
        let nbc = NegativeHopBonusCards::new(&topo).unwrap();
        let ceiling = nbc.num_vc_classes() as u8;
        for s in topo.nodes().step_by(7) {
            for d in topo.nodes().step_by(5) {
                if s == d {
                    continue;
                }
                let mut state = MessageRouteState::new(s, d);
                nbc.init_message(&topo, &mut state);
                let mut here = s;
                while here != d {
                    let mut out = Vec::new();
                    nbc.candidates(&topo, &state, here, &mut out);
                    assert!(!out.is_empty());
                    // Take the *highest*-class candidate to stress the bound.
                    let taken = *out.iter().max_by_key(|c| c.vc_class()).unwrap();
                    assert!(taken.vc_class() < ceiling, "class out of range");
                    state.advance(&topo, here, taken);
                    here = topo.neighbor(here, taken.direction()).unwrap();
                }
            }
        }
    }

    #[test]
    fn later_hops_follow_base_class() {
        let topo = Topology::torus(&[6, 6]);
        let nbc = NegativeHopBonusCards::new(&topo).unwrap();
        // Figure 2 walk but starting on class 1 thanks to a bonus card.
        let src = topo.node_at(&[4, 4]);
        let dest = topo.node_at(&[2, 2]);
        let mut state = MessageRouteState::new(src, dest);
        // 4 hops from an even source: 2 negative hops; max is 3 for 6^2
        // (diameter 6 → ceil(6/2) = 3), so b = 1.
        assert_eq!(nbc.bonus_cards(&topo, src, dest), 1);
        let mut out = Vec::new();
        nbc.candidates(&topo, &state, src, &mut out);
        // Two minimal directions x two class choices (0 and 1).
        assert_eq!(out.len(), 4);
        let taken = *out
            .iter()
            .find(|c| c.vc_class() == 1 && c.direction() == Direction::new(0, Sign::Minus))
            .unwrap();
        state.advance(&topo, src, taken);
        // Next hop from (3,4): no negative hop taken yet (4,4 is even), so
        // still class 1.
        let here = topo.node_at(&[3, 4]);
        out.clear();
        nbc.candidates(&topo, &state, here, &mut out);
        assert!(out.iter().all(|c| c.vc_class() == 1));
        // (3,4) is odd: hop out of it is negative, class then becomes 2.
        let taken = out[0];
        state.advance(&topo, here, taken);
        let here = topo.neighbor(here, taken.direction()).unwrap();
        out.clear();
        nbc.candidates(&topo, &state, here, &mut out);
        assert!(out.iter().all(|c| c.vc_class() == 2));
    }

    #[test]
    fn injection_classes_bucket_by_bonus_cards() {
        let topo = Topology::torus(&[16, 16]);
        let nbc = NegativeHopBonusCards::new(&topo).unwrap();
        let near = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[1, 0]));
        let far = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[8, 8]));
        assert_eq!(nbc.injection_class(&topo, &near), 8);
        assert_eq!(nbc.injection_class(&topo, &far), 0);
    }

    #[test]
    fn rejects_odd_radix_torus() {
        assert!(matches!(
            NegativeHopBonusCards::new(&Topology::torus(&[5, 5])),
            Err(RoutingError::RequiresBipartite { .. })
        ));
    }
}

//! The partially adaptive north-last algorithm (Glass & Ni turn model).

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{DimStep, Direction, NodeId, Sign, Topology};

/// North-last routing from the Glass–Ni turn model.
///
/// "North" is the `-` direction of the highest dimension (dimension 1 on the
/// paper's two-dimensional networks, matching its description: *"if
/// destination index is less than source index in dimension 1, then a
/// message must correct dimension 0 first before taking any hops on
/// dimension 1 links; otherwise it is routed fully-adaptively"*).
///
/// In `n` dimensions the restriction applies **per dimension**: `-` hops in
/// dimension `j` are allowed only once every dimension below `j` is
/// corrected (dimension 0 is never gated), and a torus half-way tie in a
/// gated dimension is resolved towards `+` so the message never enters its
/// "north" early. For `n = 2` this is exactly the paper's rule. Gating only
/// the top dimension — the obvious reading of "north last" — is *not*
/// deadlock-free for `n >= 3`: the ungated lower dimensions then form an
/// unrestricted fully adaptive plane whose four turn types close the
/// classic turn-model cycle (the CDG checker exhibits a rectangular x–y
/// cycle on a 4-ary 3-cube).
///
/// * Messages that still owe `-` hops in some dimension correct all lower
///   dimensions first (adaptively among them); their `-` hops then cannot
///   turn back into any lower dimension, so no turn *out of* a north ever
///   re-enters the dimensions that could complete a cycle.
/// * All other travel routes fully adaptively among minimal directions.
///
/// Deadlock freedom (mesh, per VC class on tori): in a hypothetical CDG
/// cycle, let `d` be the highest dimension contributing a `-` channel. A
/// message holding a `-d` channel has every dimension below `d` corrected,
/// so its next request within the cycle (which contains no dimension above
/// `d` with `-` travel, and no `+d` request can follow `-d` travel) is
/// another `-d` channel; the cycle collapses to `-d` channels only, which
/// cannot close without a wrap-around link — and wrap links hand over to
/// the next dateline class (below).
///
/// On tori, deadlock freedom over the wrap-around links uses a
/// **dateline-crossing count** discipline with `n + 1` VC classes: a
/// message's class is the total number of dimension datelines it has
/// crossed so far. The class is non-decreasing along every path, and within
/// one class only non-wrap channels are held, so the mesh turn-model
/// argument applies level by level. (A per-dimension 2-class scheme, as
/// used by e-cube, is *not* sufficient for the adaptive turns north-last
/// allows — our simulator's watchdog demonstrates real deadlocks with it.)
/// Meshes need a single class.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{NorthLast, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::mesh(&[10, 10]);
/// let nlast = NorthLast::new(&topo)?;
///
/// // The paper's example: (3,3) -> (1,1) must go through (3,2), (3,1), (2,1):
/// // dimension-1 travel is north (towards lower index), so dimension 0 has
/// // no adaptivity... but note coordinates here are (x, y) = (dim0, dim1).
/// let state = MessageRouteState::new(topo.node_at(&[3, 3]), topo.node_at(&[1, 1]));
/// let mut out = Vec::new();
/// nlast.candidates(&topo, &state, state.src(), &mut out);
/// assert_eq!(out.len(), 1); // forced: correct dimension 0 first
/// assert_eq!(out[0].direction().dim(), 0);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NorthLast {
    classes: usize,
}

impl NorthLast {
    /// Builds north-last for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::NeedsDimensions`] for one-dimensional
    /// networks, where the turn model degenerates.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        if topo.num_dims() < 2 {
            return Err(RoutingError::NeedsDimensions {
                algorithm: "nlast",
                needs: 2,
                got: topo.num_dims(),
            });
        }
        Ok(NorthLast {
            classes: if topo.wraps() { topo.num_dims() + 1 } else { 1 },
        })
    }

    fn class_for(&self, topo: &Topology, state: &MessageRouteState) -> u8 {
        if topo.wraps() {
            state.datelines_crossed() as u8
        } else {
            0
        }
    }
}

impl RoutingAlgorithm for NorthLast {
    fn name(&self) -> &'static str {
        "nlast"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::PartiallyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = self.class_for(topo, state);
        // `-` hops in dimension `j > 0` ("north" hops) come last: they are
        // offered only once every dimension below `j` is corrected, and a
        // gated dimension's half-way tie resolves towards `+`. Dimension 0
        // is never gated.
        let mut lower_dims_done = true;
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            if matches!(step, DimStep::Done) {
                continue;
            }
            if step.allows(Sign::Plus) {
                out.push(Candidate::new(Direction::new(dim, Sign::Plus), class));
            }
            let minus_ok = if dim == 0 {
                step.allows(Sign::Minus)
            } else {
                lower_dims_done
                    && matches!(
                        step,
                        DimStep::One {
                            sign: Sign::Minus,
                            ..
                        }
                    )
            };
            if minus_ok {
                out.push(Candidate::new(Direction::new(dim, Sign::Minus), class));
            }
            lower_dims_done = false;
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // Like e-cube: the particular first-hop virtual channel it intends
        // to use. Partially adaptive messages may have several options; the
        // class of the first (deterministic) candidate identifies the
        // congestion-control bucket.
        let mut out = Vec::with_capacity(4);
        self.candidates(topo, state, state.src(), &mut out);
        match out.first() {
            Some(c) => (c.direction().index() * self.classes) as u32 + c.vc_class() as u32,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates_at(
        topo: &Topology,
        algo: &NorthLast,
        here: &[u16],
        dest: &[u16],
    ) -> Vec<Candidate> {
        // Synthesize a state as if the message had been injected at `here`.
        let state = MessageRouteState::new(topo.node_at(here), topo.node_at(dest));
        let mut out = Vec::new();
        algo.candidates(topo, &state, topo.node_at(here), &mut out);
        out
    }

    #[test]
    fn paper_example_path_is_forced() {
        // (3,3) -> (1,1) on a 10x10 mesh: the message must correct
        // dimension 0 (to 1) before any dimension-1 hops.
        let topo = Topology::mesh(&[10, 10]);
        let algo = NorthLast::new(&topo).unwrap();
        let c = candidates_at(&topo, &algo, &[3, 3], &[1, 1]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(0, Sign::Minus));
        // After dimension 0 is corrected, north hops are forced.
        let c = candidates_at(&topo, &algo, &[1, 3], &[1, 1]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(1, Sign::Minus));
    }

    #[test]
    fn southbound_messages_are_fully_adaptive() {
        let topo = Topology::mesh(&[10, 10]);
        let algo = NorthLast::new(&topo).unwrap();
        let c = candidates_at(&topo, &algo, &[3, 3], &[5, 5]);
        assert_eq!(c.len(), 2);
        let dirs: Vec<Direction> = c.iter().map(|c| c.direction()).collect();
        assert!(dirs.contains(&Direction::new(0, Sign::Plus)));
        assert!(dirs.contains(&Direction::new(1, Sign::Plus)));
    }

    #[test]
    fn north_tie_on_torus_resolves_south() {
        let topo = Topology::torus(&[8, 8]);
        let algo = NorthLast::new(&topo).unwrap();
        // Dimension 1 offset of exactly 4 = 8/2: both minimal; nlast must
        // only offer the + (south) choice.
        let c = candidates_at(&topo, &algo, &[0, 0], &[0, 4]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(1, Sign::Plus));
    }

    #[test]
    fn never_turns_out_of_north() {
        // Exhaustively: whenever a north candidate is offered, it is the
        // only candidate (so a message in the north phase stays there).
        let topo = Topology::torus(&[6, 6]);
        let algo = NorthLast::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let c = candidates_at(&topo, &algo, &topo.coords(s), &topo.coords(d));
                assert!(!c.is_empty(), "must always offer a hop");
                let norths = c
                    .iter()
                    .filter(|c| c.direction() == Direction::new(1, Sign::Minus))
                    .count();
                if norths > 0 {
                    assert_eq!(c.len(), 1, "north hops must be exclusive: {c:?}");
                }
            }
        }
    }

    #[test]
    fn all_candidates_minimal() {
        let topo = Topology::torus(&[6, 6]);
        let algo = NorthLast::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                for c in candidates_at(&topo, &algo, &topo.coords(s), &topo.coords(d)) {
                    let next = topo.neighbor(s, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, d), topo.distance(s, d) - 1);
                }
            }
        }
    }

    #[test]
    fn rejects_one_dimensional_networks() {
        let ring = Topology::torus(&[8]);
        assert!(matches!(
            NorthLast::new(&ring),
            Err(RoutingError::NeedsDimensions { .. })
        ));
    }
}

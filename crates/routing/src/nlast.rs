//! The partially adaptive north-last algorithm (Glass & Ni turn model).

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{DimStep, Direction, NodeId, Sign, Topology};

/// North-last routing from the Glass–Ni turn model.
///
/// "North" is the `-` direction of the highest dimension (dimension 1 on the
/// paper's two-dimensional networks, matching its description: *"if
/// destination index is less than source index in dimension 1, then a
/// message must correct dimension 0 first before taking any hops on
/// dimension 1 links; otherwise it is routed fully-adaptively"*).
///
/// * Messages that need to travel north correct all other dimensions first
///   (adaptively among them), then take their north hops non-adaptively —
///   so no turn *out of* north ever occurs.
/// * All other messages route fully adaptively among minimal directions.
///   A torus half-way tie in the highest dimension is resolved towards `+`
///   (south) so the message never enters north early.
///
/// On tori, deadlock freedom over the wrap-around links uses a
/// **dateline-crossing count** discipline with `n + 1` VC classes: a
/// message's class is the total number of dimension datelines it has
/// crossed so far. The class is non-decreasing along every path, and within
/// one class only non-wrap channels are held, so the mesh turn-model
/// argument applies level by level. (A per-dimension 2-class scheme, as
/// used by e-cube, is *not* sufficient for the adaptive turns north-last
/// allows — our simulator's watchdog demonstrates real deadlocks with it.)
/// Meshes need a single class.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{NorthLast, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::mesh(&[10, 10]);
/// let nlast = NorthLast::new(&topo)?;
///
/// // The paper's example: (3,3) -> (1,1) must go through (3,2), (3,1), (2,1):
/// // dimension-1 travel is north (towards lower index), so dimension 0 has
/// // no adaptivity... but note coordinates here are (x, y) = (dim0, dim1).
/// let state = MessageRouteState::new(topo.node_at(&[3, 3]), topo.node_at(&[1, 1]));
/// let mut out = Vec::new();
/// nlast.candidates(&topo, &state, state.src(), &mut out);
/// assert_eq!(out.len(), 1); // forced: correct dimension 0 first
/// assert_eq!(out[0].direction().dim(), 0);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NorthLast {
    classes: usize,
    north_dim: usize,
}

impl NorthLast {
    /// Builds north-last for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::NeedsDimensions`] for one-dimensional
    /// networks, where the turn model degenerates.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        if topo.num_dims() < 2 {
            return Err(RoutingError::NeedsDimensions {
                algorithm: "nlast",
                needs: 2,
                got: topo.num_dims(),
            });
        }
        Ok(NorthLast {
            classes: if topo.wraps() { topo.num_dims() + 1 } else { 1 },
            north_dim: topo.num_dims() - 1,
        })
    }

    fn class_for(&self, topo: &Topology, state: &MessageRouteState) -> u8 {
        if topo.wraps() {
            state.datelines_crossed() as u8
        } else {
            0
        }
    }

    /// Whether this message still needs a north hop (strictly `-` travel in
    /// the highest dimension).
    fn needs_north(&self, topo: &Topology, state: &MessageRouteState, here: NodeId) -> bool {
        matches!(
            topo.dim_step(here, state.dest(), self.north_dim),
            DimStep::One {
                sign: Sign::Minus,
                ..
            }
        )
    }
}

impl RoutingAlgorithm for NorthLast {
    fn name(&self) -> &'static str {
        "nlast"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::PartiallyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let needs_north = self.needs_north(topo, state, here);
        let mut lower_dims_done = true;
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            if matches!(step, DimStep::Done) {
                continue;
            }
            if dim != self.north_dim {
                lower_dims_done = false;
            }
            let class = self.class_for(topo, state);
            for sign in [Sign::Plus, Sign::Minus] {
                if !step.allows(sign) {
                    continue;
                }
                let is_north = dim == self.north_dim && sign == Sign::Minus;
                if is_north {
                    continue; // handled below: north hops come last
                }
                if dim == self.north_dim && needs_north {
                    continue; // north traveller: no early hops in this dim
                }
                out.push(Candidate::new(Direction::new(dim, sign), class));
            }
        }
        // North hops are allowed only once every other dimension is done,
        // and are then the only option (non-adaptive tail of the route).
        if needs_north && lower_dims_done {
            out.push(Candidate::new(
                Direction::new(self.north_dim, Sign::Minus),
                self.class_for(topo, state),
            ));
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // Like e-cube: the particular first-hop virtual channel it intends
        // to use. Partially adaptive messages may have several options; the
        // class of the first (deterministic) candidate identifies the
        // congestion-control bucket.
        let mut out = Vec::with_capacity(4);
        self.candidates(topo, state, state.src(), &mut out);
        match out.first() {
            Some(c) => (c.direction().index() * self.classes) as u32 + c.vc_class() as u32,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates_at(
        topo: &Topology,
        algo: &NorthLast,
        here: &[u16],
        dest: &[u16],
    ) -> Vec<Candidate> {
        // Synthesize a state as if the message had been injected at `here`.
        let state = MessageRouteState::new(topo.node_at(here), topo.node_at(dest));
        let mut out = Vec::new();
        algo.candidates(topo, &state, topo.node_at(here), &mut out);
        out
    }

    #[test]
    fn paper_example_path_is_forced() {
        // (3,3) -> (1,1) on a 10x10 mesh: the message must correct
        // dimension 0 (to 1) before any dimension-1 hops.
        let topo = Topology::mesh(&[10, 10]);
        let algo = NorthLast::new(&topo).unwrap();
        let c = candidates_at(&topo, &algo, &[3, 3], &[1, 1]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(0, Sign::Minus));
        // After dimension 0 is corrected, north hops are forced.
        let c = candidates_at(&topo, &algo, &[1, 3], &[1, 1]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(1, Sign::Minus));
    }

    #[test]
    fn southbound_messages_are_fully_adaptive() {
        let topo = Topology::mesh(&[10, 10]);
        let algo = NorthLast::new(&topo).unwrap();
        let c = candidates_at(&topo, &algo, &[3, 3], &[5, 5]);
        assert_eq!(c.len(), 2);
        let dirs: Vec<Direction> = c.iter().map(|c| c.direction()).collect();
        assert!(dirs.contains(&Direction::new(0, Sign::Plus)));
        assert!(dirs.contains(&Direction::new(1, Sign::Plus)));
    }

    #[test]
    fn north_tie_on_torus_resolves_south() {
        let topo = Topology::torus(&[8, 8]);
        let algo = NorthLast::new(&topo).unwrap();
        // Dimension 1 offset of exactly 4 = 8/2: both minimal; nlast must
        // only offer the + (south) choice.
        let c = candidates_at(&topo, &algo, &[0, 0], &[0, 4]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].direction(), Direction::new(1, Sign::Plus));
    }

    #[test]
    fn never_turns_out_of_north() {
        // Exhaustively: whenever a north candidate is offered, it is the
        // only candidate (so a message in the north phase stays there).
        let topo = Topology::torus(&[6, 6]);
        let algo = NorthLast::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let c = candidates_at(&topo, &algo, &topo.coords(s), &topo.coords(d));
                assert!(!c.is_empty(), "must always offer a hop");
                let norths = c
                    .iter()
                    .filter(|c| c.direction() == Direction::new(1, Sign::Minus))
                    .count();
                if norths > 0 {
                    assert_eq!(c.len(), 1, "north hops must be exclusive: {c:?}");
                }
            }
        }
    }

    #[test]
    fn all_candidates_minimal() {
        let topo = Topology::torus(&[6, 6]);
        let algo = NorthLast::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                for c in candidates_at(&topo, &algo, &topo.coords(s), &topo.coords(d)) {
                    let next = topo.neighbor(s, c.direction()).unwrap();
                    assert_eq!(topo.distance(next, d), topo.distance(s, d) - 1);
                }
            }
        }
    }

    #[test]
    fn rejects_one_dimensional_networks() {
        let ring = Topology::torus(&[8]);
        assert!(matches!(
            NorthLast::new(&ring),
            Err(RoutingError::NeedsDimensions { .. })
        ));
    }
}

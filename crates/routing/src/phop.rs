//! The fully adaptive positive-hop (phop) algorithm.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{Direction, NodeId, Sign, Topology};

/// Positive-hop routing, derived from Gopal's store-and-forward scheme via
/// the paper's SAF→wormhole construction.
///
/// A message that has completed `i` hops reserves a virtual channel of
/// class `i` for its next hop; since classes strictly increase along every
/// path, the derived wormhole algorithm is deadlock-free by the paper's
/// Lemma 1. It is fully adaptive and needs `diameter + 1` VC classes per
/// physical channel — 17 on the 16×16 torus, the most of any algorithm in
/// the study.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{PositiveHop, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let phop = PositiveHop::new(&topo)?;
/// assert_eq!(phop.num_vc_classes(), 17);
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PositiveHop {
    classes: usize,
}

impl PositiveHop {
    /// Builds phop for `topo`.
    ///
    /// # Errors
    ///
    /// Never fails for supported topologies; returns a `Result` for
    /// signature uniformity with the other algorithms.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        Ok(PositiveHop {
            classes: topo.diameter() as usize + 1,
        })
    }
}

impl RoutingAlgorithm for PositiveHop {
    fn name(&self) -> &'static str {
        "phop"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = u8::try_from(state.hops_taken()).expect("diameter fits u8");
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            for sign in [Sign::Plus, Sign::Minus] {
                if step.allows(sign) {
                    out.push(Candidate::new(Direction::new(dim, sign), class));
                }
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // "Based on the virtual channel number it can use": a message
        // travelling d hops uses exactly classes 0..d, so its hop count
        // identifies the bucket.
        topo.distance(state.src(), state.dest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_equal_diameter_plus_one() {
        assert_eq!(
            PositiveHop::new(&Topology::torus(&[16, 16]))
                .unwrap()
                .num_vc_classes(),
            17
        );
        assert_eq!(
            PositiveHop::new(&Topology::mesh(&[8, 8]))
                .unwrap()
                .num_vc_classes(),
            15
        );
    }

    #[test]
    fn class_tracks_hops_taken() {
        let topo = Topology::torus(&[8, 8]);
        let phop = PositiveHop::new(&topo).unwrap();
        let src = topo.node_at(&[0, 0]);
        let dest = topo.node_at(&[2, 2]);
        let mut state = MessageRouteState::new(src, dest);
        phop.init_message(&topo, &mut state);
        let mut here = src;
        let mut expected = 0u8;
        while here != dest {
            let mut out = Vec::new();
            phop.candidates(&topo, &state, here, &mut out);
            assert!(out.iter().all(|c| c.vc_class() == expected));
            let taken = out[0];
            state.advance(&topo, here, taken);
            here = topo.neighbor(here, taken.direction()).unwrap();
            expected += 1;
        }
        assert_eq!(expected as u32, topo.distance(src, dest));
    }

    #[test]
    fn offers_every_minimal_direction() {
        let topo = Topology::torus(&[8, 8]);
        let phop = PositiveHop::new(&topo).unwrap();
        // (0,0) -> (4,4): both dimensions tied at half the radix, so all
        // four directions are minimal.
        let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[4, 4]));
        let mut out = Vec::new();
        phop.candidates(&topo, &state, state.src(), &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn injection_buckets_by_distance() {
        let topo = Topology::torus(&[8, 8]);
        let phop = PositiveHop::new(&topo).unwrap();
        let near = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[1, 0]));
        let far = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[4, 4]));
        assert_eq!(phop.injection_class(&topo, &near), 1);
        assert_eq!(phop.injection_class(&topo, &far), 8);
    }
}

//! A deliberately deadlock-prone baseline: minimal adaptive routing with a
//! single virtual channel class.

use crate::{
    Adaptivity, Candidate, FaultTolerance, MessageRouteState, RoutingAlgorithm, RoutingError,
};
use wormsim_topology::{Direction, NodeId, Sign, Topology};

/// Fully adaptive minimal routing with **no** deadlock-avoidance structure:
/// one VC class, every minimal direction always allowed.
///
/// This is *not* one of the paper's algorithms — it is the strawman the
/// paper's entire topic exists to fix. On a torus (or any network whose
/// channel-dependency graph has cycles under unrestricted minimal routing)
/// it **will deadlock** under load. It exists so that
///
/// * the deadlock checker has a known-cyclic specimen,
/// * the simulator's watchdog can be validated against a real deadlock, and
/// * examples can demonstrate *why* the six studied algorithms spend
///   virtual channels on deadlock freedom.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{NaiveMinimal, RoutingAlgorithm, deadlock};
///
/// let topo = Topology::torus(&[4, 4]);
/// let naive = NaiveMinimal::new(&topo)?;
/// assert!(!deadlock::analyze(&topo, &naive).is_acyclic());
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NaiveMinimal;

impl NaiveMinimal {
    /// Builds the naive router (always succeeds; the `Result` mirrors the
    /// other constructors).
    pub fn new(_topo: &Topology) -> Result<Self, RoutingError> {
        Ok(NaiveMinimal)
    }
}

impl RoutingAlgorithm for NaiveMinimal {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::FullyAdaptive
    }

    fn fault_tolerance(
        &self,
        topo: &Topology,
        mask: &wormsim_topology::ChannelMask,
    ) -> FaultTolerance {
        FaultTolerance::best_effort_if_connected(topo, mask)
    }

    fn num_vc_classes(&self) -> usize {
        1
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            for sign in [Sign::Plus, Sign::Minus] {
                if step.allows(sign) {
                    out.push(Candidate::new(Direction::new(dim, sign), 0));
                }
            }
        }
    }

    fn injection_class(&self, _topo: &Topology, _state: &MessageRouteState) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;

    #[test]
    fn cyclic_on_torus() {
        let topo = Topology::torus(&[4, 4]);
        let naive = NaiveMinimal::new(&topo).unwrap();
        assert!(!deadlock::analyze(&topo, &naive).is_acyclic());
    }

    #[test]
    fn single_class_everywhere() {
        let topo = Topology::torus(&[6, 6]);
        let naive = NaiveMinimal::new(&topo).unwrap();
        let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[2, 2]));
        let mut out = Vec::new();
        naive.candidates(&topo, &state, state.src(), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.vc_class() == 0));
    }
}

//! The [`RoutingAlgorithm`] trait.

use crate::{Candidate, MessageRouteState};
use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_topology::{ChannelMask, NodeId, Topology};

/// How much freedom an algorithm has in choosing among minimal paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Adaptivity {
    /// Exactly one path per source/destination pair (e-cube).
    NonAdaptive,
    /// Some, but not all, minimal paths are allowed (north-last).
    PartiallyAdaptive,
    /// Every minimal path is allowed (2pn and the hop schemes).
    FullyAdaptive,
}

impl fmt::Display for Adaptivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Adaptivity::NonAdaptive => write!(f, "non-adaptive"),
            Adaptivity::PartiallyAdaptive => write!(f, "partially-adaptive"),
            Adaptivity::FullyAdaptive => write!(f, "fully-adaptive"),
        }
    }
}

/// How well an algorithm copes with a set of dead channels/nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTolerance {
    /// The algorithm's normal candidate sets remain connected and acyclic
    /// under the mask (trivially true when nothing is dead).
    Guaranteed,
    /// Misrouting/fallback lets the algorithm keep delivering wherever the
    /// surviving graph allows, but deadlock-freedom of the fallback paths
    /// is not proven — the simulator's livelock guard is the backstop.
    BestEffort,
    /// The algorithm has no answer for this mask: some source/destination
    /// pairs will never be delivered (the simulator excludes them from
    /// traffic generation rather than letting them time out).
    Unsupported,
}

impl FaultTolerance {
    /// The standard answer for an adaptive algorithm that can mis-route:
    /// `Guaranteed` when nothing is dead, `BestEffort` while the surviving
    /// subgraph stays strongly connected, `Unsupported` once it partitions.
    pub fn best_effort_if_connected(topo: &Topology, mask: &ChannelMask) -> FaultTolerance {
        if mask.is_trivial() {
            FaultTolerance::Guaranteed
        } else if topo.surviving_graph_connected(mask) {
            FaultTolerance::BestEffort
        } else {
            FaultTolerance::Unsupported
        }
    }
}

impl fmt::Display for FaultTolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTolerance::Guaranteed => write!(f, "guaranteed"),
            FaultTolerance::BestEffort => write!(f, "best-effort"),
            FaultTolerance::Unsupported => write!(f, "unsupported"),
        }
    }
}

/// A minimal, deadlock-free wormhole routing algorithm.
///
/// Implementations are *pure*: they never hold network state. The simulator
/// calls [`candidates`](Self::candidates) when a head flit needs a next hop,
/// picks one of the returned options subject to resource availability, and
/// then advances the message's [`MessageRouteState`] via
/// [`MessageRouteState::advance`].
///
/// # Contract
///
/// * Every returned candidate must be a **minimal** hop (strictly decreases
///   the distance to the destination) on a physical channel that exists.
/// * `candidates` must return at least one option whenever the message is
///   not yet at its destination ("wait, never mis-route").
/// * VC classes must stay below [`num_vc_classes`](Self::num_vc_classes).
///
/// These invariants are exercised by this crate's property tests and by the
/// [`deadlock`](crate::deadlock) analysis.
pub trait RoutingAlgorithm: Send + Sync + fmt::Debug {
    /// Short lower-case name as used in the paper (e.g. `"phop"`).
    fn name(&self) -> &'static str;

    /// The adaptivity class of this algorithm.
    fn adaptivity(&self) -> Adaptivity;

    /// Number of virtual-channel *classes* this algorithm needs on every
    /// physical channel of the topology it was built for.
    fn num_vc_classes(&self) -> usize;

    /// Populates algorithm-specific fields of a fresh message's state
    /// (e.g. the 2pn tag). The default does nothing.
    fn init_message(&self, topo: &Topology, state: &mut MessageRouteState) {
        let _ = (topo, state);
    }

    /// Appends to `out` every `(direction, vc_class)` the message may use
    /// for its next hop from `here`. `out` is *not* cleared first.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `here` equals the destination (the
    /// caller must eject instead of routing) or if `here` is not reachable
    /// for this message state.
    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    );

    /// Whether the algorithm remains connected and deadlock-free when the
    /// channels/nodes dead under `mask` are removed.
    ///
    /// The conservative default claims [`FaultTolerance::Guaranteed`] only
    /// for a trivial (all-alive) mask and [`FaultTolerance::Unsupported`]
    /// otherwise; adaptive algorithms override this with
    /// [`FaultTolerance::best_effort_if_connected`]. The answer is
    /// advisory — the simulator still runs `Unsupported` configurations
    /// (demonstrating *why* adaptivity pays off under faults), it just
    /// cannot promise delivery for them.
    fn fault_tolerance(&self, topo: &Topology, mask: &ChannelMask) -> FaultTolerance {
        let _ = topo;
        if mask.is_trivial() {
            FaultTolerance::Guaranteed
        } else {
            FaultTolerance::Unsupported
        }
    }

    /// The congestion-control class of a freshly injected message.
    ///
    /// The paper's input-buffer-limit scheme counts in-node messages per
    /// class: hop schemes and 2pn use the virtual-channel number the message
    /// can use; e-cube and north-last use the particular first-hop virtual
    /// channel the message intends to use.
    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptivity_display() {
        assert_eq!(Adaptivity::NonAdaptive.to_string(), "non-adaptive");
        assert_eq!(
            Adaptivity::PartiallyAdaptive.to_string(),
            "partially-adaptive"
        );
        assert_eq!(Adaptivity::FullyAdaptive.to_string(), "fully-adaptive");
    }
}

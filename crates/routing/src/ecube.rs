//! The non-adaptive e-cube (dimension-order) algorithm.

use crate::{Adaptivity, Candidate, MessageRouteState, RoutingAlgorithm, RoutingError};
use wormsim_topology::{DimStep, Direction, NodeId, Sign, Topology};

/// Dimension-order routing: correct dimension 0 completely, then dimension 1,
/// and so on. Non-adaptive — every source/destination pair has exactly one
/// path.
///
/// On a torus, deadlock freedom over the wrap-around rings uses the classic
/// Dally–Seitz two-channel scheme (the paper's reference \[14\]): within the
/// ring being corrected, a message whose remaining path still crosses the
/// wrap-around link travels on class 0, and on class 1 once no crossing
/// remains (equivalently, the original "compare current address with
/// destination address" rule). Ranking class-0 channels by position and
/// class-1 channels above them increases strictly along every path, so the
/// dependency graph is acyclic — and unlike a plain dateline scheme, *both*
/// channels carry first-class traffic (all non-wrapping messages ride
/// class 1), which matters for throughput. On a mesh a single class
/// suffices.
///
/// When the remaining offset in a dimension is exactly half the radix (both
/// directions minimal), e-cube deterministically picks the `+` direction.
///
/// # Example
///
/// ```
/// use wormsim_topology::Topology;
/// use wormsim_routing::{Ecube, MessageRouteState, RoutingAlgorithm};
///
/// let topo = Topology::torus(&[16, 16]);
/// let ecube = Ecube::new(&topo)?;
/// assert_eq!(ecube.num_vc_classes(), 2);
///
/// let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[3, 5]));
/// let mut out = Vec::new();
/// ecube.candidates(&topo, &state, state.src(), &mut out);
/// assert_eq!(out.len(), 1); // never a choice
/// assert_eq!(out[0].direction().dim(), 0); // dimension 0 first
/// # Ok::<(), wormsim_routing::RoutingError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Ecube {
    classes: usize,
}

impl Ecube {
    /// Builds e-cube for `topo`.
    ///
    /// # Errors
    ///
    /// Never fails for supported topologies; returns a `Result` for
    /// signature uniformity with the other algorithms.
    pub fn new(topo: &Topology) -> Result<Self, RoutingError> {
        Ok(Ecube {
            classes: if topo.wraps() { 2 } else { 1 },
        })
    }

    /// The single hop e-cube prescribes from `here` (direction and class),
    /// or `None` if `here` is the destination.
    pub fn next_hop(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
    ) -> Option<Candidate> {
        for dim in 0..topo.num_dims() {
            let sign = match topo.dim_step(here, state.dest(), dim) {
                DimStep::Done => continue,
                DimStep::One { sign, .. } => sign,
                // Tie: fixed deterministic choice keeps e-cube non-adaptive.
                DimStep::Both { .. } => Sign::Plus,
            };
            let class = if topo.wraps() && Self::wraps_ahead(topo, state.dest(), here, dim, sign) {
                0
            } else {
                1.min(self.classes as u8 - 1)
            };
            return Some(Candidate::new(Direction::new(dim, sign), class));
        }
        None
    }

    /// Whether the remaining travel in `dim` (moving `sign`) still crosses
    /// the wrap-around link — the Dally–Seitz low-channel condition.
    fn wraps_ahead(topo: &Topology, dest: NodeId, here: NodeId, dim: usize, sign: Sign) -> bool {
        let c = topo.coord(here, dim);
        let d = topo.coord(dest, dim);
        match sign {
            Sign::Plus => d < c,
            Sign::Minus => d > c,
        }
    }
}

impl RoutingAlgorithm for Ecube {
    fn name(&self) -> &'static str {
        "ecube"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::NonAdaptive
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        out.extend(self.next_hop(topo, state, here));
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        // "based on the particular virtual channel it intends to use":
        // the first-hop physical direction and VC class.
        match self.next_hop(topo, state, state.src()) {
            Some(c) => (c.direction().index() * self.classes) as u32 + c.vc_class() as u32,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(topo: &Topology, algo: &Ecube, src: &[u16], dest: &[u16]) -> Vec<(Vec<u16>, u8)> {
        let src = topo.node_at(src);
        let dest = topo.node_at(dest);
        let mut state = MessageRouteState::new(src, dest);
        algo.init_message(topo, &mut state);
        let mut here = src;
        let mut path = Vec::new();
        while here != dest {
            let c = algo.next_hop(topo, &state, here).expect("not at dest");
            state.advance(topo, here, c);
            here = topo.neighbor(here, c.direction()).expect("channel exists");
            path.push((topo.coords(here), c.vc_class()));
        }
        path
    }

    #[test]
    fn routes_dimension_zero_first() {
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        let path = walk(&topo, &algo, &[0, 0], &[2, 2]);
        let nodes: Vec<Vec<u16>> = path.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(nodes, vec![vec![1, 0], vec![2, 0], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn uses_wraparound_when_shorter_and_switches_class() {
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        // 7 -> 1 in dim 0: wrap through 0 (2 hops instead of 6).
        let path = walk(&topo, &algo, &[7, 0], &[1, 0]);
        assert_eq!(path.len(), 2);
        // Wraparound hop itself is still on class 0; afterwards class 1.
        assert_eq!(path[0], (vec![0, 0], 0));
        assert_eq!(path[1], (vec![1, 0], 1));
    }

    #[test]
    fn class_is_per_dimension_and_per_segment() {
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        // Wraps in dim 0, then travels dim 1 without wrapping: the dim 1
        // hops ride the high channel like any non-wrapping traffic.
        let path = walk(&topo, &algo, &[7, 0], &[0, 2]);
        assert_eq!(path[0], (vec![0, 0], 0)); // wrap hop, low channel
        assert_eq!(path[1], (vec![0, 1], 1)); // non-wrapping, high channel
        assert_eq!(path[2], (vec![0, 2], 1));
    }

    #[test]
    fn both_classes_carry_traffic() {
        // The Dally-Seitz split: non-wrapping messages use class 1, so
        // neither class is starved under uniform traffic. Count class use
        // over all pairs.
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        let mut counts = [0u64; 2];
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                for (_, class) in walk(&topo, &algo, &topo.coords(s), &topo.coords(d)) {
                    counts[class as usize] += 1;
                }
            }
        }
        assert!(counts[0] > 0 && counts[1] > 0);
        // Class 1 dominates (all non-wrap traffic), class 0 still carries
        // a substantial share (pre-wrap segments).
        let frac0 = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((0.1..0.5).contains(&frac0), "class-0 share {frac0}");
    }

    #[test]
    fn tie_breaks_plus() {
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        let state = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[4, 0]));
        let c = algo.next_hop(&topo, &state, state.src()).unwrap();
        assert_eq!(c.direction(), Direction::new(0, Sign::Plus));
    }

    #[test]
    fn mesh_uses_single_class() {
        let topo = Topology::mesh(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        assert_eq!(algo.num_vc_classes(), 1);
        let path = walk(&topo, &algo, &[7, 7], &[0, 0]);
        assert_eq!(path.len(), 14);
        assert!(path.iter().all(|(_, class)| *class == 0));
    }

    #[test]
    fn path_length_is_always_minimal() {
        let topo = Topology::torus(&[6, 6]);
        let algo = Ecube::new(&topo).unwrap();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s == d {
                    continue;
                }
                let path = walk(&topo, &algo, &topo.coords(s), &topo.coords(d));
                assert_eq!(path.len() as u32, topo.distance(s, d));
            }
        }
    }

    #[test]
    fn injection_class_distinguishes_first_hops() {
        let topo = Topology::torus(&[8, 8]);
        let algo = Ecube::new(&topo).unwrap();
        let east = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[2, 0]));
        let west = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[6, 0]));
        assert_ne!(
            algo.injection_class(&topo, &east),
            algo.injection_class(&topo, &west)
        );
    }
}

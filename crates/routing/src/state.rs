//! Per-message routing state carried by a message's head flit.

use crate::Candidate;
use serde::{Deserialize, Serialize};
use wormsim_topology::{NodeId, Parity, Topology};

/// The routing metadata a message carries through the network.
///
/// All six algorithms read from (subsets of) this state and it is advanced
/// uniformly by [`MessageRouteState::advance`] after every hop:
///
/// * `hops_taken` — positive-hop (phop) class,
/// * `negative_hops` — negative-hop (nhop/nbc) class component,
/// * `base_class` — the class the first hop actually used (nbc bonus cards),
/// * `tag` — the 2pn direction tag, set once by `init_message`,
/// * `crossed_datelines` — per-dimension wrap-around crossing bits
///   (e-cube / north-last torus classes).
///
/// The struct is `Hash`/`Eq` so that the deadlock checker can enumerate
/// reachable states exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MessageRouteState {
    src: NodeId,
    dest: NodeId,
    hops_taken: u16,
    negative_hops: u16,
    base_class: u8,
    tag: u8,
    crossed_datelines: u8,
}

impl MessageRouteState {
    /// Creates the state of a freshly generated message from `src` to `dest`.
    ///
    /// Call [`RoutingAlgorithm::init_message`] before routing so
    /// algorithm-specific fields (the 2pn tag) are populated.
    ///
    /// [`RoutingAlgorithm::init_message`]: crate::RoutingAlgorithm::init_message
    pub fn new(src: NodeId, dest: NodeId) -> Self {
        MessageRouteState {
            src,
            dest,
            hops_taken: 0,
            negative_hops: 0,
            base_class: 0,
            tag: 0,
            crossed_datelines: 0,
        }
    }

    /// The source node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Hops completed so far.
    pub fn hops_taken(&self) -> u32 {
        self.hops_taken as u32
    }

    /// Negative hops (hops leaving an odd-parity node) completed so far.
    pub fn negative_hops(&self) -> u32 {
        self.negative_hops as u32
    }

    /// The VC class used by the first hop (nbc's bonus-card head start).
    ///
    /// Zero until the first hop is taken.
    pub fn base_class(&self) -> u8 {
        self.base_class
    }

    /// The 2pn direction tag (bit `i` describes dimension `i`).
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Sets the 2pn direction tag; called by `TwoPowerN::init_message`.
    pub fn set_tag(&mut self, tag: u8) {
        self.tag = tag;
    }

    /// Whether this message has crossed the wrap-around dateline of `dim`.
    pub fn crossed_dateline(&self, dim: usize) -> bool {
        self.crossed_datelines & (1 << dim) != 0
    }

    /// Total number of distinct dimension datelines crossed so far.
    ///
    /// Minimal routing crosses each dimension's dateline at most once, so
    /// this is at most `n`. North-last uses it as its VC class: it is
    /// non-decreasing along every path, and within one class the usable
    /// channels form a mesh, where the turn-model proof applies.
    pub fn datelines_crossed(&self) -> u32 {
        self.crossed_datelines.count_ones()
    }

    /// Whether the message is still at its source (no hops taken yet).
    pub fn at_source(&self) -> bool {
        self.hops_taken == 0
    }

    /// Advances the state after the message takes the hop described by
    /// `taken` out of node `from`.
    ///
    /// Updates the hop count, the negative-hop count (a hop leaving an
    /// odd-parity node is negative), the per-dimension dateline-crossing
    /// bits, and records the first hop's class as the `base_class`.
    pub fn advance(&mut self, topo: &Topology, from: NodeId, taken: Candidate) {
        if self.hops_taken == 0 {
            self.base_class = taken.vc_class();
        }
        if topo.parity(from) == Parity::Odd {
            self.negative_hops += 1;
        }
        if topo.is_wraparound(from, taken.direction()) {
            self.crossed_datelines |= 1 << taken.direction().dim();
        }
        self.hops_taken += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::{Direction, Sign};

    #[test]
    fn advance_counts_hops_and_negative_hops() {
        let topo = Topology::torus(&[6, 6]);
        // The paper's Figure 2 walk: (4,4) -> (3,4) -> (3,3) -> (2,3) -> (2,2).
        let mut st = MessageRouteState::new(topo.node_at(&[4, 4]), topo.node_at(&[2, 2]));
        let minus0 = Candidate::new(Direction::new(0, Sign::Minus), 0);
        let minus1 = Candidate::new(Direction::new(1, Sign::Minus), 0);

        // (4,4) is even: positive hop.
        st.advance(&topo, topo.node_at(&[4, 4]), minus0);
        assert_eq!((st.hops_taken(), st.negative_hops()), (1, 0));
        // (3,4) is odd: negative hop.
        st.advance(&topo, topo.node_at(&[3, 4]), minus1);
        assert_eq!((st.hops_taken(), st.negative_hops()), (2, 1));
        // (3,3) is even.
        st.advance(&topo, topo.node_at(&[3, 3]), minus0);
        assert_eq!((st.hops_taken(), st.negative_hops()), (3, 1));
        // (2,3) is odd.
        st.advance(&topo, topo.node_at(&[2, 3]), minus1);
        assert_eq!((st.hops_taken(), st.negative_hops()), (4, 2));
    }

    #[test]
    fn advance_records_base_class_and_datelines() {
        let topo = Topology::torus(&[4, 4]);
        let mut st = MessageRouteState::new(topo.node_at(&[3, 0]), topo.node_at(&[1, 0]));
        assert!(st.at_source());
        let wrap = Candidate::new(Direction::new(0, Sign::Plus), 5);
        st.advance(&topo, topo.node_at(&[3, 0]), wrap);
        assert_eq!(st.base_class(), 5);
        assert!(st.crossed_dateline(0));
        assert!(!st.crossed_dateline(1));
        assert!(!st.at_source());
        // base_class is only set on the first hop.
        let second = Candidate::new(Direction::new(0, Sign::Plus), 7);
        st.advance(&topo, topo.node_at(&[0, 0]), second);
        assert_eq!(st.base_class(), 5);
    }

    #[test]
    fn tag_roundtrip() {
        let topo = Topology::torus(&[4, 4]);
        let mut st = MessageRouteState::new(topo.node_at(&[0, 0]), topo.node_at(&[1, 1]));
        st.set_tag(0b10);
        assert_eq!(st.tag(), 0b10);
    }
}

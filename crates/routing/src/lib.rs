//! Deadlock-free wormhole routing algorithms for tori and meshes.
//!
//! This crate implements the six routing algorithms compared in
//! Boppana & Chalasani, *A Comparison of Adaptive Wormhole Routing
//! Algorithms* (ISCA 1993):
//!
//! | Algorithm | Adaptivity | VC classes on a 16×16 torus |
//! |-----------|------------|------------------------------|
//! | [`Ecube`] | non-adaptive | 2 (dateline) |
//! | [`NorthLast`] | partially adaptive | 2 (dateline) |
//! | [`TwoPowerN`] (2pn) | fully adaptive | 2ⁿ = 4 (direction tag) |
//! | [`PositiveHop`] (phop) | fully adaptive | diameter + 1 = 17 |
//! | [`NegativeHop`] (nhop) | fully adaptive | ⌈diameter/2⌉ + 1 = 9 |
//! | [`NegativeHopBonusCards`] (nbc) | fully adaptive | 9, load-balanced |
//!
//! An algorithm is a *pure routing function*: given the immutable
//! [`MessageRouteState`] carried by a message's head flit and the current
//! node, [`RoutingAlgorithm::candidates`] produces the set of
//! `(direction, virtual-channel class)` pairs the message may use for its
//! next hop. The simulator owns all resource allocation; this crate owns
//! none, which keeps every algorithm unit-testable in isolation.
//!
//! The [`deadlock`] module builds the channel-dependency graph of an
//! algorithm on a concrete topology by exhaustive reachability analysis and
//! checks it for cycles — an executable version of the paper's Lemma 1
//! arguments.
//!
//! # Example
//!
//! ```
//! use wormsim_topology::Topology;
//! use wormsim_routing::{AlgorithmKind, MessageRouteState, RoutingAlgorithm};
//!
//! let topo = Topology::torus(&[16, 16]);
//! let phop = AlgorithmKind::PositiveHop.build(&topo)?;
//! assert_eq!(phop.num_vc_classes(), 17);
//!
//! let mut state = MessageRouteState::new(topo.node_at(&[4, 4]), topo.node_at(&[2, 2]));
//! phop.init_message(&topo, &mut state);
//!
//! let mut candidates = Vec::new();
//! phop.candidates(&topo, &state, state.src(), &mut candidates);
//! // Fully adaptive: both minimal directions offered, all in class 0.
//! assert_eq!(candidates.len(), 2);
//! assert!(candidates.iter().all(|c| c.vc_class() == 0));
//! # Ok::<(), wormsim_routing::RoutingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod candidate;
pub mod deadlock;
mod ecube;
mod error;
mod naive;
mod nbc;
mod nhop;
mod nlast;
mod phop;
mod registry;
mod state;
mod two_power_n;
mod wfirst;

pub use algorithm::{Adaptivity, FaultTolerance, RoutingAlgorithm};
pub use candidate::Candidate;
pub use ecube::Ecube;
pub use error::RoutingError;
pub use naive::NaiveMinimal;
pub use nbc::NegativeHopBonusCards;
pub use nhop::NegativeHop;
pub use nlast::NorthLast;
pub use phop::PositiveHop;
pub use registry::AlgorithmKind;
pub use state::MessageRouteState;
pub use two_power_n::TwoPowerN;
pub use wfirst::WestFirst;

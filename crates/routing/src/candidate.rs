//! Routing candidates: the output of a routing function.

use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_topology::Direction;

/// One option for a message's next hop: a physical-channel [`Direction`] and
/// the virtual-channel *class* the message must reserve on it.
///
/// A class is an index into the algorithm's virtual-channel numbering
/// (`0..num_vc_classes`). The simulator may provision several physical VCs
/// per class (virtual-channel flow control in Dally's sense); a candidate
/// permits any of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    direction: Direction,
    vc_class: u8,
}

impl Candidate {
    /// Creates a candidate hop in `direction` on VC class `vc_class`.
    pub const fn new(direction: Direction, vc_class: u8) -> Self {
        Candidate {
            direction,
            vc_class,
        }
    }

    /// The physical-channel direction of this candidate.
    pub const fn direction(self) -> Direction {
        self.direction
    }

    /// The virtual-channel class the message must use.
    pub const fn vc_class(self) -> u8 {
        self.vc_class
    }
}

impl fmt::Debug for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@c{}", self.direction, self.vc_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::Sign;

    #[test]
    fn accessors_and_debug() {
        let c = Candidate::new(Direction::new(1, Sign::Minus), 3);
        assert_eq!(c.direction(), Direction::new(1, Sign::Minus));
        assert_eq!(c.vc_class(), 3);
        assert_eq!(format!("{c:?}"), "-1@c3");
    }
}

//! Cross-algorithm property tests: minimality, progress, class bounds.

use proptest::prelude::*;
use wormsim_routing::{AlgorithmKind, MessageRouteState, RoutingAlgorithm};
use wormsim_topology::{NodeId, Topology};

fn arb_setup() -> impl Strategy<Value = (Topology, AlgorithmKind, NodeId, NodeId, u64)> {
    let topo = prop_oneof![
        Just(Topology::torus(&[4, 4])),
        Just(Topology::torus(&[6, 6])),
        Just(Topology::torus(&[8, 8])),
        Just(Topology::torus(&[16, 16])),
        Just(Topology::mesh(&[8, 8])),
        Just(Topology::torus(&[4, 4, 4])),
    ];
    let kind = prop_oneof![
        Just(AlgorithmKind::Ecube),
        Just(AlgorithmKind::NorthLast),
        Just(AlgorithmKind::TwoPowerN),
        Just(AlgorithmKind::PositiveHop),
        Just(AlgorithmKind::NegativeHop),
        Just(AlgorithmKind::NegativeHopBonusCards),
    ];
    (topo, kind, any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(t, k, a, b, seed)| {
        let n = t.num_nodes();
        (t, k, NodeId::new(a % n), NodeId::new(b % n), seed)
    })
}

/// Walks a message along candidates chosen pseudo-randomly by `seed`,
/// returning the classes used per hop.
fn walk(
    topo: &Topology,
    algo: &dyn RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
    mut seed: u64,
) -> Vec<u8> {
    let mut state = MessageRouteState::new(src, dest);
    algo.init_message(topo, &mut state);
    let mut here = src;
    let mut classes = Vec::new();
    let mut out = Vec::new();
    while here != dest {
        out.clear();
        algo.candidates(topo, &state, here, &mut out);
        assert!(!out.is_empty(), "no candidates before destination");
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let taken = out[(seed >> 33) as usize % out.len()];
        classes.push(taken.vc_class());
        state.advance(topo, here, taken);
        here = topo
            .neighbor(here, taken.direction())
            .expect("valid channel");
    }
    classes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every algorithm delivers every message in exactly `distance` hops
    /// along any candidate choice sequence (minimality + livelock freedom).
    #[test]
    fn all_walks_are_minimal((topo, kind, src, dest, seed) in arb_setup()) {
        prop_assume!(src != dest);
        let algo = match kind.build(&topo) {
            Ok(a) => a,
            Err(_) => return Ok(()), // e.g. nhop on a non-bipartite torus
        };
        let classes = walk(&topo, algo.as_ref(), src, dest, seed);
        prop_assert_eq!(classes.len() as u32, topo.distance(src, dest));
    }

    /// VC classes stay within the algorithm's declared bound on every walk.
    #[test]
    fn classes_stay_in_bounds((topo, kind, src, dest, seed) in arb_setup()) {
        prop_assume!(src != dest);
        let algo = match kind.build(&topo) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let bound = algo.num_vc_classes() as u8;
        let classes = walk(&topo, algo.as_ref(), src, dest, seed);
        prop_assert!(classes.iter().all(|&c| c < bound),
            "classes {:?} exceed bound {}", classes, bound);
    }

    /// Hop-scheme classes never decrease along a path (the paper's Lemma 1
    /// monotone-rank condition).
    #[test]
    fn hop_scheme_classes_are_monotone((topo, kind, src, dest, seed) in arb_setup()) {
        prop_assume!(src != dest);
        prop_assume!(matches!(kind,
            AlgorithmKind::PositiveHop
            | AlgorithmKind::NegativeHop
            | AlgorithmKind::NegativeHopBonusCards));
        let algo = match kind.build(&topo) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let classes = walk(&topo, algo.as_ref(), src, dest, seed);
        prop_assert!(classes.windows(2).all(|w| w[0] <= w[1]),
            "classes must be monotone: {:?}", classes);
    }

    /// phop's class on hop `i` is exactly `i`; nhop's class increments
    /// exactly on hops leaving odd nodes.
    #[test]
    fn phop_class_equals_hop_index((topo, _, src, dest, seed) in arb_setup()) {
        prop_assume!(src != dest);
        let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
        let classes = walk(&topo, algo.as_ref(), src, dest, seed);
        for (i, &c) in classes.iter().enumerate() {
            prop_assert_eq!(c as usize, i);
        }
    }

    /// The injection class is always defined and stable for a given message.
    #[test]
    fn injection_class_is_deterministic((topo, kind, src, dest, _) in arb_setup()) {
        prop_assume!(src != dest);
        let algo = match kind.build(&topo) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let mut state = MessageRouteState::new(src, dest);
        algo.init_message(&topo, &mut state);
        let a = algo.injection_class(&topo, &state);
        let b = algo.injection_class(&topo, &state);
        prop_assert_eq!(a, b);
    }
}

//! Regenerates the paper's in-text saturation readings: "phop and nbc
//! begin to saturate after 0.6, and nhop shows signs of saturation at
//! about 0.55"; e-cube/2pn/nlast "saturate much earlier". Uses bisection
//! over offered load with a throughput-tracking criterion (saturated when
//! achieved utilization falls below 90% of offered load).

use wormsim::{AlgorithmKind, Experiment, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    println!("Saturation offered load (achieved < 90% of offered), uniform traffic:\n");
    println!(
        "{:>7} {:>12} {:>14} {:>16}",
        "algo", "saturates", "paper", "util at point"
    );
    let paper_notes = [
        ("nbc", "after 0.6"),
        ("phop", "after 0.6"),
        ("nhop", "about 0.55"),
        ("2pn", "early"),
        ("ecube", "early (~0.4)"),
        ("nlast", "early"),
    ];
    for kind in AlgorithmKind::all() {
        let point = Experiment::new(topo.clone(), kind)
            .traffic(TrafficConfig::Uniform)
            .schedule(options.schedule)
            .seed(options.seed)
            .find_saturation(0.9, 4)
            .expect("search runs");
        let note = paper_notes
            .iter()
            .find(|(n, _)| *n == kind.name())
            .map_or("", |(_, p)| *p);
        println!(
            "{:>7} {:>12.2} {:>14} {:>16.3}",
            kind.name(),
            point.estimate(),
            note,
            point.at_below.achieved_utilization
        );
    }
}

//! Extension: the paper's future work — "We are conducting further
//! simulations of these routing algorithms for multidimensional tori and
//! meshes." Compares all six algorithms on an 8×8×8 torus and an
//! 8×8 mesh under uniform traffic.

use wormsim::{AlgorithmKind, Experiment, Topology, TrafficConfig};
use wormsim_bench::SweepOptions;

fn sweep(topo: &Topology, options: &SweepOptions) {
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    println!("\n== {topo} ==");
    println!(
        "{:>7} {:>9} {:>11} {:>14}",
        "algo", "vcs", "peak util", "latency @0.2"
    );
    for kind in AlgorithmKind::all() {
        let Ok(algo) = kind.build(topo) else {
            println!("{:>7} {:>9}", kind.name(), "n/a");
            continue;
        };
        let base = Experiment::new(topo.clone(), kind)
            .traffic(TrafficConfig::Uniform)
            .schedule(options.schedule)
            .seed(options.seed);
        let low = base
            .clone()
            .offered_load(0.2)
            .run()
            .expect("low point runs");
        let mut peak = 0.0f64;
        for &load in &loads {
            let r = base
                .clone()
                .offered_load(load)
                .run()
                .expect("sweep point runs");
            if r.deadlock.is_some() {
                println!("{:>7}: DEADLOCK at load {load}", kind.name());
            }
            peak = peak.max(r.achieved_utilization);
        }
        println!(
            "{:>7} {:>9} {:>11.3} {:>11.1} cy",
            kind.name(),
            algo.num_vc_classes(),
            peak,
            low.latency.mean()
        );
    }
}

fn main() {
    let options = SweepOptions::from_args();
    // 3-D torus: phop needs 13 classes (diameter 12), nhop/nbc 7.
    sweep(&Topology::torus(&[8, 8, 8]), &options);
    // 2-D mesh (the Glass & Ni setting): single-class e-cube, 2-class 2pn.
    sweep(&Topology::mesh(&[16, 16]), &options);
}

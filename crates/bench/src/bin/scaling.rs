//! Network-size scaling curve: engine throughput (steps/sec and flits/sec)
//! at a fixed offered load as the topology grows from the paper's 16×16
//! torus to 64×64 and into three dimensions (8³, 16³). Records
//! `BENCH_scaling.json` so the large-network perf trajectory is tracked PR
//! over PR, alongside `BENCH_engine.json` for the 16×16 hot path.
//!
//! ```text
//! scaling [--load F] [--cycles N] [--warmup N] [--seed N] [--out FILE] [--smoke] [--metrics]
//! ```
//!
//! `--smoke` shrinks the sweep to one small 3D cube and one 32×32 point
//! with short runs — the CI-budget variant. `--metrics` installs the
//! deep-telemetry registry during the timed run and folds latency
//! percentiles plus the engine-phase breakdown into the printed lines and
//! the JSON report (at the cost of the instrumented hot path).

use std::time::Instant;
use wormsim::observe::{MetricsRegistry, PHASE_NAMES};
use wormsim::routing::AlgorithmKind;
use wormsim::topology::Topology;
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, TrafficConfig};
use wormsim_bench::cli;

const USAGE: &str = "usage: scaling [--load F] [--cycles N] [--warmup N] [--seed N] [--out FILE] \
                     [--smoke] [--metrics]";

/// One deterministic (ecube) and one adaptive (nbc) algorithm: enough to
/// see how routing cost scales without multiplying the sweep by six.
const ALGORITHMS: [AlgorithmKind; 2] = [AlgorithmKind::Ecube, AlgorithmKind::NegativeHopBonusCards];

struct Options {
    load: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    out: Option<String>,
    smoke: bool,
    metrics: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            load: 0.3,
            cycles: 10_000,
            warmup: 2_000,
            seed: 1993,
            out: None,
            smoke: false,
            metrics: false,
        }
    }
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--load" => {
                let v = value("--load")?;
                options.load = v
                    .parse::<f64>()
                    .ok()
                    .filter(|l| (0.0..=1.0).contains(l) && *l > 0.0)
                    .ok_or_else(|| format!("bad load '{v}' (expected 0 < load <= 1)"))?;
            }
            "--cycles" => options.cycles = cli::parse_seed(&value("--cycles")?)?,
            "--warmup" => options.warmup = cli::parse_seed(&value("--warmup")?)?,
            "--seed" => options.seed = cli::parse_seed(&value("--seed")?)?,
            "--out" => options.out = Some(value("--out")?),
            "--smoke" => options.smoke = true,
            "--metrics" => options.metrics = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.smoke {
        // CI-budget variant: tiny runs, one 3D point and one 2D point.
        options.cycles = options.cycles.min(1_500);
        options.warmup = options.warmup.min(300);
    }
    Ok(options)
}

/// The sweep: 2D tori from the paper's size up to 4096 nodes, then the
/// 3D cubes at matching node counts (8³ = 512, 16³ = 4096).
fn sweep_sizes(options: &Options) -> Vec<Topology> {
    if options.smoke {
        vec![Topology::k_ary_n_cube(4, 3), Topology::torus(&[32, 32])]
    } else {
        vec![
            Topology::torus(&[8, 8]),
            Topology::torus(&[16, 16]),
            Topology::torus(&[32, 32]),
            Topology::torus(&[64, 64]),
            Topology::k_ary_n_cube(8, 3),
            Topology::k_ary_n_cube(16, 3),
        ]
    }
}

struct Measurement {
    algorithm: &'static str,
    steps_per_sec: f64,
    flits_per_sec: f64,
    wall_seconds: f64,
    flit_hops: u64,
    delivered: u64,
    registry: Option<Box<MetricsRegistry>>,
}

fn measure(topo: &Topology, kind: AlgorithmKind, options: &Options) -> Measurement {
    let pattern = TrafficConfig::Uniform.build(topo).expect("uniform builds");
    let rate = wormsim::stats::throughput::rate_for_utilization(
        options.load,
        16.0,
        pattern.mean_distance(topo),
        topo.num_dims(),
    );
    let mut net = NetworkBuilder::new(topo.clone(), kind)
        .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
        .message_length(MessageLength::fixed(16).expect("valid length"))
        .seed(options.seed)
        .build()
        .expect("network builds");
    net.run(options.warmup);
    net.reset_metrics();
    if options.metrics {
        net.observer().metrics_on();
    }
    let start = Instant::now();
    net.run(options.cycles);
    let wall_seconds = start.elapsed().as_secs_f64();
    let flit_hops = net.metrics().flit_hops;
    Measurement {
        algorithm: kind.name(),
        steps_per_sec: options.cycles as f64 / wall_seconds,
        flits_per_sec: flit_hops as f64 / wall_seconds,
        wall_seconds,
        flit_hops,
        delivered: net.metrics().delivered,
        registry: net.observer().metrics_off(),
    }
}

fn json_report(options: &Options, sizes: &[(Topology, Vec<Measurement>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"traffic\": \"uniform\", \"offered_load\": {}, \
         \"message_flits\": 16, \"seed\": {}, \"warmup_cycles\": {}, \"timed_cycles\": {}, \
         \"smoke\": {}}},\n",
        options.load, options.seed, options.warmup, options.cycles, options.smoke
    ));
    out.push_str("  \"sizes\": [\n");
    for (i, (topo, results)) in sizes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"nodes\": {}, \"results\": [\n",
            topo.label(),
            topo.num_nodes()
        ));
        for (j, m) in results.iter().enumerate() {
            // Telemetry rides along only when --metrics installed a
            // registry, so the metrics-off JSON stays byte-compatible.
            let telemetry = m.registry.as_deref().map_or_else(String::new, |registry| {
                let latency = &registry.latency;
                let phases: Vec<String> = PHASE_NAMES
                    .iter()
                    .zip(registry.phase_nanos.iter())
                    .map(|(name, &nanos)| format!("\"{name}\": {nanos}"))
                    .collect();
                format!(
                    ", \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \
                     \"phase_nanos\": {{{}}}",
                    latency.quantile(0.50),
                    latency.quantile(0.95),
                    latency.quantile(0.99),
                    phases.join(", ")
                )
            });
            out.push_str(&format!(
                "      {{\"algorithm\": \"{}\", \"steps_per_sec\": {:.0}, \
                 \"flits_per_sec\": {:.0}, \"wall_seconds\": {:.4}, \"flit_hops\": {}, \
                 \"delivered\": {}{}}}{}\n",
                m.algorithm,
                m.steps_per_sec,
                m.flits_per_sec,
                m.wall_seconds,
                m.flit_hops,
                m.delivered,
                telemetry,
                if j + 1 == results.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == sizes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    println!(
        "scaling: uniform traffic, load {:.2}, {} timed cycles per point{}",
        options.load,
        options.cycles,
        if options.smoke { " (smoke)" } else { "" }
    );
    let mut sizes = Vec::new();
    for topo in sweep_sizes(&options) {
        println!("  {} ({} nodes):", topo, topo.num_nodes());
        let mut results = Vec::new();
        for kind in ALGORITHMS {
            let m = measure(&topo, kind, &options);
            println!(
                "    {:>6}: {:>9.0} steps/s  {:>12.0} flits/s  ({} flit-hops, {} delivered)",
                m.algorithm, m.steps_per_sec, m.flits_per_sec, m.flit_hops, m.delivered
            );
            if let Some(registry) = m.registry.as_deref() {
                println!(
                    "            latency p50/p95/p99: {}/{}/{} cycles",
                    registry.latency.quantile(0.50),
                    registry.latency.quantile(0.95),
                    registry.latency.quantile(0.99)
                );
            }
            results.push(m);
        }
        sizes.push((topo, results));
    }

    if let Some(path) = &options.out {
        let report = json_report(&options, &sizes);
        if let Err(e) = wormsim::observe::atomic_write(std::path::Path::new(path), &report) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_arguments() {
        let parse = |args: &[&str]| parse_args(args.iter().map(|s| (*s).to_owned()));
        assert!(parse(&["--load", "0"]).is_err());
        assert!(parse(&["--cycles"]).is_err());
        assert!(parse(&["--turbo"]).is_err());
        assert!(parse(&["--smoke"]).is_ok());
        assert!(parse(&["--metrics"]).unwrap().metrics);
        assert!(!parse(&[]).unwrap().metrics);
    }

    #[test]
    fn smoke_shrinks_the_sweep() {
        let parse = |args: &[&str]| parse_args(args.iter().map(|s| (*s).to_owned())).unwrap();
        let smoke = parse(&["--smoke"]);
        assert!(smoke.cycles <= 1_500 && smoke.warmup <= 300);
        let sizes = sweep_sizes(&smoke);
        assert_eq!(sizes.len(), 2);
        assert!(sizes.iter().any(|t| t.num_dims() == 3));

        let full = parse(&[]);
        let sizes = sweep_sizes(&full);
        assert!(sizes.len() >= 4);
        // The acceptance bar: at least one >= 4096-node size, in 2D and 3D.
        assert!(sizes
            .iter()
            .any(|t| t.num_nodes() >= 4096 && t.num_dims() == 2));
        assert!(sizes
            .iter()
            .any(|t| t.num_nodes() >= 4096 && t.num_dims() == 3));
    }
}

//! Regenerates Figure 4: 4% hotspot traffic, hotspot node (15,15).

use wormsim_bench::{
    apply_topology_override, print_figure, print_paper_comparison, run_figure_or_exit, write_csv,
    SweepOptions,
};

fn main() {
    let options = SweepOptions::from_args();
    let spec = wormsim::presets::fig4();
    let spec = apply_topology_override(spec, &options);
    eprintln!(
        "running {} ({} points)...",
        spec.id,
        spec.algorithms.len() * spec.loads.len()
    );
    let results = run_figure_or_exit(&spec, &options);
    print_figure(&spec, &results);
    print_paper_comparison(&spec.id, &results);
    match write_csv(&spec.id, &results, &options.out_dir) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Ablation: virtual-channel flow control (Dally 1992) — adding physical
//! VCs per routing class to e-cube and north-last.
//!
//! The paper's conclusion cites Dally's observation that "additional
//! virtual channels improve the performance of e-cube for uniform traffic";
//! this regenerates that effect inside our simulator.

use wormsim::{AlgorithmKind, Experiment, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let loads = [0.2, 0.3, 0.4, 0.5, 0.6];
    println!("Peak achieved utilization vs VCs per class (uniform, {topo}):");
    println!("{:>8} {:>8} {:>8} {:>8}", "algo", "x1", "x2", "x4");
    for algo in [
        AlgorithmKind::Ecube,
        AlgorithmKind::NorthLast,
        AlgorithmKind::TwoPowerN,
    ] {
        print!("{:>8}", algo.name());
        for replicas in [1u32, 2, 4] {
            let mut peak = 0.0f64;
            for &load in &loads {
                let r = Experiment::new(topo.clone(), algo)
                    .traffic(TrafficConfig::Uniform)
                    .vc_replicas(replicas)
                    .offered_load(load)
                    .schedule(options.schedule)
                    .seed(options.seed)
                    .run()
                    .expect("experiment runs");
                peak = peak.max(r.achieved_utilization);
            }
            print!("{peak:>8.3}");
        }
        println!();
    }
}

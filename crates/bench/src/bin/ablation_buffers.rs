//! Ablation: per-VC flit-buffer depth.
//!
//! The paper does not state its buffer depth; this documents how the choice
//! (our default is 2) moves every algorithm's peak throughput.

use wormsim::{AlgorithmKind, Experiment, Switching, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let loads = [0.3, 0.5, 0.7, 0.9];
    println!("Peak achieved utilization vs per-VC buffer depth (uniform, {topo}):");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "algo", "d=1", "d=2", "d=4", "d=8"
    );
    for algo in AlgorithmKind::all() {
        print!("{:>8}", algo.name());
        for depth in [1u32, 2, 4, 8] {
            let mut peak = 0.0f64;
            for &load in &loads {
                let r = Experiment::new(topo.clone(), algo)
                    .traffic(TrafficConfig::Uniform)
                    .switching(Switching::Wormhole {
                        buffer_depth: depth,
                    })
                    .offered_load(load)
                    .schedule(options.schedule)
                    .seed(options.seed)
                    .run()
                    .expect("experiment runs");
                peak = peak.max(r.achieved_utilization);
            }
            print!("{peak:>8.3}");
        }
        println!();
    }
}

//! Extension: quantify the two load-balance claims of the Discussion —
//! (a) "the main problem with the nlast algorithm is that it skews even
//! uniform traffic" (physical-channel imbalance), and (b) nbc balances
//! load over *virtual-channel classes* where nhop does not.

use wormsim::{AlgorithmKind, ArrivalProcess, MessageLength, NetworkBuilder, TrafficConfig};
use wormsim_bench::SweepOptions;

/// Coefficient of variation (stddev / mean) of a count vector.
fn cov(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    // Drive at a moderate 30% load so nothing is saturated; imbalance is a
    // property of the algorithm, not of congestion.
    let rate = wormsim::stats::throughput::rate_for_utilization(
        0.3,
        16.0,
        topo.uniform_avg_distance(),
        topo.num_dims(),
    );

    println!(
        "Channel- and class-load balance under uniform traffic at offered 0.3\n\
         (coefficient of variation; 0 = perfectly even):\n"
    );
    println!(
        "{:>7} {:>16} {:>16} {:>18} {:>14}",
        "algo", "channel CoV", "class CoV", "busiest/median ch", "c0/cTop"
    );
    for kind in AlgorithmKind::all() {
        let mut net = NetworkBuilder::new(topo.clone(), kind)
            .traffic(TrafficConfig::Uniform)
            .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
            .message_length(MessageLength::fixed(16).expect("valid length"))
            .track_channel_load(true)
            .seed(options.seed)
            .build()
            .expect("network builds");
        net.run(30_000);
        let m = net.metrics();
        let channels = m.channel_flits.as_ref().expect("tracking enabled");
        let mut sorted: Vec<u64> = channels.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2].max(1);
        let busiest = *sorted.last().expect("non-empty");
        let first = m.class_flits[0].max(1) as f64;
        let last = m.class_flits[m.class_flits.len() - 1].max(1) as f64;
        println!(
            "{:>7} {:>16.3} {:>16.3} {:>18.2} {:>14.1}",
            kind.name(),
            cov(channels),
            cov(&m.class_flits),
            busiest as f64 / median as f64,
            first / last
        );
    }
    println!(
        "\nExpected shape: nlast's channel CoV and busiest/median ratio stand\n\
         out (its turn restriction concentrates traffic even though demand\n\
         is uniform), and its lowest class carries almost everything\n\
         (c0/cTop). Among the hop schemes, nbc's bottom-to-top class ratio\n\
         is far flatter than nhop's — the bonus cards at work; the contrast\n\
         sharpens further at saturation loads (see the engine behavior\n\
         test nhop_class_load_is_skewed_and_nbc_flatter)."
    );
}

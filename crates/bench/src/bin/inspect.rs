//! Run inspector: renders an `--observe` output directory into a text
//! report, and diffs two such directories.
//!
//! ```text
//! inspect DIR [DIR2] [--top N]
//! ```
//!
//! For every run id found in `DIR` (by its `<run_id>.metrics.json`,
//! `<run_id>.manifest.json`, and `<run_id>.waitfor.jsonl` sidecars) the
//! report shows the outcome, latency percentiles, the hottest channels
//! (as node coordinates plus direction), the VC-class imbalance table,
//! the engine-phase breakdown, and — for deadlocked/livelocked runs —
//! the wait-for forensics: how many worms wait on what, and whether a
//! concrete channel cycle was found. With a second directory, runs
//! sharing an id are diffed (latency percentiles, utilization, outcome)
//! instead of reported in full. `--top N` bounds the hot-channel list
//! (default 5).
//!
//! Unreadable or foreign files are reported on stderr and skipped: an
//! `obs/` directory mixing several sweeps still renders.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wormsim::observe::{json, MetricsReport, PhaseRecord, RunManifest, WaitForSnapshot};

const USAGE: &str = "usage: inspect DIR [DIR2] [--top N]";

struct Options {
    dir: PathBuf,
    diff: Option<PathBuf>,
    top: usize,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut top = 5usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad count '{v}' (expected a positive integer)"))?;
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument '{other}'"));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() || dirs.len() > 2 {
        return Err("expected one observe directory (or two, to diff)".to_owned());
    }
    let mut dirs = dirs.into_iter();
    Ok(Options {
        dir: dirs.next().expect("checked non-empty"),
        diff: dirs.next(),
        top,
    })
}

/// Everything one run left behind in the observe directory.
#[derive(Default)]
struct Run {
    metrics: Option<MetricsReport>,
    manifest: Option<RunManifest>,
    waitfor: Vec<WaitForSnapshot>,
}

/// Scans `dir` for per-run sidecars, grouped by run id. Files that fail
/// to parse are reported on stderr and skipped, not fatal: forensics
/// must work on partially written or mixed directories.
fn scan(dir: &Path) -> Result<BTreeMap<String, Run>, String> {
    let mut runs: BTreeMap<String, Run> = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let path = entry.path();
        if let Some(id) = name.strip_suffix(".metrics.json") {
            match MetricsReport::read_from(&path) {
                Ok(report) => runs.entry(id.to_owned()).or_default().metrics = Some(report),
                Err(e) => eprintln!("skipping {name}: {e}"),
            }
        } else if let Some(id) = name.strip_suffix(".manifest.json") {
            match RunManifest::read_from(&path) {
                Ok(manifest) => runs.entry(id.to_owned()).or_default().manifest = Some(manifest),
                Err(e) => eprintln!("skipping {name}: {e}"),
            }
        } else if let Some(id) = name.strip_suffix(".waitfor.jsonl") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            for value in json::StreamDeserializer::new(&text) {
                let snapshot = value
                    .map_err(|e| e.to_string())
                    .and_then(|v| WaitForSnapshot::from_json(&v));
                match snapshot {
                    Ok(s) => runs.entry(id.to_owned()).or_default().waitfor.push(s),
                    Err(e) => eprintln!("skipping a record in {name}: {e}"),
                }
            }
        }
    }
    Ok(runs)
}

fn dim_name(dim: usize) -> String {
    ["x", "y", "z", "w"]
        .get(dim)
        .map_or_else(|| format!("d{dim}"), |s| (*s).to_owned())
}

/// Renders a channel id as `(coords)dir`, e.g. `(3,7)y-`: the source
/// node's coordinates (dimension 0 fastest-varying) and the direction it
/// leaves in.
fn channel_label(dims: &[u64], dirs: u64, channel: u64) -> String {
    let node = channel / dirs.max(1);
    let dir = channel % dirs.max(1);
    let mut coords = Vec::new();
    let mut rest = node;
    for &d in dims {
        coords.push((rest % d.max(1)).to_string());
        rest /= d.max(1);
    }
    let sign = if dir.is_multiple_of(2) { '+' } else { '-' };
    format!(
        "({}){}{}",
        coords.join(","),
        dim_name((dir / 2) as usize),
        sign
    )
}

fn print_phases(phases: &[PhaseRecord]) {
    let total: f64 = phases.iter().map(|p| p.wall_seconds).sum();
    println!("  phase breakdown:");
    for p in phases {
        println!(
            "    {:>10}: {:>9.4}s ({:>5.1}%)  {:>10} cycles",
            p.name,
            p.wall_seconds,
            100.0 * p.wall_seconds / total.max(f64::MIN_POSITIVE),
            p.cycles
        );
    }
}

fn print_metrics(report: &MetricsReport, top: usize) {
    let latency = &report.latency;
    let mean = latency.sum as f64 / (latency.count.max(1)) as f64;
    println!(
        "  latency: p50 {} / p95 {} / p99 {} cycles (mean {:.1}, max {}, {} messages)",
        latency.p50, latency.p95, latency.p99, mean, latency.max, latency.count
    );
    println!(
        "  channel utilization: mean {:.4}, peak {:.4} flits/cycle over {} cycles",
        report.mean_channel_utilization, report.peak_channel_utilization, report.cycles
    );

    let mut hottest: Vec<(u64, u64)> = report
        .channel_flits
        .iter()
        .enumerate()
        .map(|(ch, &flits)| (ch as u64, flits))
        .collect();
    hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("  hottest channels:");
    for &(ch, flits) in hottest.iter().take(top) {
        println!(
            "    {:>12}: {:>9} flits ({:.4} flits/cycle), {:>8} blocked, {:>6} alloc fails",
            channel_label(&report.dims, report.dirs, ch),
            flits,
            flits as f64 / report.cycles.max(1) as f64,
            report
                .channel_blocked
                .get(ch as usize)
                .copied()
                .unwrap_or(0),
            report
                .channel_alloc_fail
                .get(ch as usize)
                .copied()
                .unwrap_or(0),
        );
    }

    let total_flits: u64 = report.class_flits.iter().sum();
    println!("  VC classes:");
    println!(
        "    {:>5} {:>12} {:>7} {:>12} {:>12}",
        "class", "flits", "share", "blocked", "alloc fails"
    );
    for (class, &flits) in report.class_flits.iter().enumerate() {
        println!(
            "    {:>5} {:>12} {:>6.1}% {:>12} {:>12}",
            class,
            flits,
            100.0 * flits as f64 / total_flits.max(1) as f64,
            report.class_blocked.get(class).copied().unwrap_or(0),
            report.class_alloc_fail.get(class).copied().unwrap_or(0),
        );
    }

    if !report.phases.is_empty() {
        print_phases(&report.phases);
    }
}

fn print_waitfor(snapshot: &WaitForSnapshot, dims: &[u64], dirs: u64) {
    println!(
        "  wait-for snapshot at cycle {} ({}): {} live messages, {} flits in flight, {} edges",
        snapshot.cycle,
        snapshot.reason,
        snapshot.live_messages,
        snapshot.flits_in_flight,
        snapshot.edges.len()
    );
    // Replay the snapshot through the verification layer rather than
    // trusting its recorded cycle fields: a stale or hand-edited snapshot
    // downgrades to budget-artifact instead of reporting a false cycle.
    let report = wormsim::verify::triage(snapshot);
    if report.is_confirmed_unsafe() {
        let hops: Vec<String> = report
            .cycle_messages
            .iter()
            .zip(report.cycle_channels.iter())
            .map(|(msg, &ch)| format!("msg {msg} --[{}]->", channel_label(dims, dirs, ch)))
            .collect();
        println!(
            "    triage: CONFIRMED UNSAFE — validated channel cycle ({} worms): {} msg {}",
            report.cycle_messages.len(),
            hops.join(" "),
            report.cycle_messages.first().unwrap_or(&0)
        );
    } else {
        println!(
            "    triage: budget artifact — no validated channel cycle; the stall looks like \
             congestion or a transient fault, not deadlock"
        );
    }
}

fn print_run(id: &str, run: &Run, top: usize) {
    println!("== {id} ==");
    if let Some(m) = &run.manifest {
        println!(
            "  outcome: {} | {} on {} traffic, seed {}, {} cycles, {:.0} flits/s",
            m.outcome, m.algorithm, m.traffic, m.seed, m.cycles, m.flits_per_sec
        );
    }
    if let Some(report) = &run.metrics {
        print_metrics(report, top);
        for snapshot in &run.waitfor {
            print_waitfor(snapshot, &report.dims, report.dirs);
        }
    } else {
        if run.manifest.is_none() && run.waitfor.is_empty() {
            println!("  (no sidecars parsed)");
        }
        for snapshot in &run.waitfor {
            print_waitfor(snapshot, &[], 1);
        }
    }
    println!();
}

/// Signed relative change in percent, `None` when the base is zero.
fn pct_change(base: f64, new: f64) -> Option<f64> {
    (base != 0.0).then(|| (new / base - 1.0) * 100.0)
}

fn diff_line(what: &str, base: f64, new: f64) {
    match pct_change(base, new) {
        Some(pct) => println!("  {what}: {base:.2} -> {new:.2} ({pct:+.1}%)"),
        None => println!("  {what}: {base:.2} -> {new:.2}"),
    }
}

fn print_diff(id: &str, a: &Run, b: &Run) {
    println!("== {id} ==");
    match (&a.manifest, &b.manifest) {
        (Some(ma), Some(mb)) if ma.outcome != mb.outcome => {
            println!("  outcome: {} -> {}", ma.outcome, mb.outcome);
        }
        (Some(ma), _) => println!("  outcome: {} (unchanged)", ma.outcome),
        _ => {}
    }
    if let (Some(ra), Some(rb)) = (&a.metrics, &b.metrics) {
        diff_line("latency p50", ra.latency.p50 as f64, rb.latency.p50 as f64);
        diff_line("latency p95", ra.latency.p95 as f64, rb.latency.p95 as f64);
        diff_line("latency p99", ra.latency.p99 as f64, rb.latency.p99 as f64);
        diff_line(
            "mean channel utilization",
            ra.mean_channel_utilization,
            rb.mean_channel_utilization,
        );
        diff_line(
            "peak channel utilization",
            ra.peak_channel_utilization,
            rb.peak_channel_utilization,
        );
    } else {
        println!("  (metrics missing on one side; no telemetry diff)");
    }
    match (a.waitfor.len(), b.waitfor.len()) {
        (0, 0) => {}
        (x, y) => println!("  wait-for snapshots: {x} -> {y}"),
    }
    println!();
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) if message == "help" => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let runs = scan(&options.dir).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if runs.is_empty() {
        eprintln!(
            "no runs found in {} (expected *.metrics.json / *.manifest.json sidecars)",
            options.dir.display()
        );
        std::process::exit(1);
    }

    match &options.diff {
        None => {
            for (id, run) in &runs {
                print_run(id, run, options.top);
            }
            println!("{} run(s) in {}", runs.len(), options.dir.display());
        }
        Some(other_dir) => {
            let others = scan(other_dir).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let mut shared = 0usize;
            for (id, run) in &runs {
                match others.get(id) {
                    Some(other) => {
                        shared += 1;
                        print_diff(id, run, other);
                    }
                    None => println!("== {id} == only in {}\n", options.dir.display()),
                }
            }
            for id in others.keys() {
                if !runs.contains_key(id) {
                    println!("== {id} == only in {}\n", other_dir.display());
                }
            }
            println!(
                "{} shared run(s) diffed between {} and {}",
                shared,
                options.dir.display(),
                other_dir.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn args_parse() {
        let options = parse(&["obs"]).unwrap();
        assert_eq!(options.dir, PathBuf::from("obs"));
        assert!(options.diff.is_none());
        assert_eq!(options.top, 5);
        let options = parse(&["a", "b", "--top", "3"]).unwrap();
        assert_eq!(options.diff.as_deref(), Some(Path::new("b")));
        assert_eq!(options.top, 3);
        assert!(parse(&[]).is_err());
        assert!(parse(&["a", "b", "c"]).is_err());
        assert!(parse(&["a", "--top", "0"]).is_err());
        assert!(parse(&["a", "--hyperdrive"]).is_err());
    }

    #[test]
    fn channel_labels_decode_node_and_direction() {
        // 8x8 grid, 4 directions: channel = (node * 4) + dir, node = x + 8y.
        let dims = [8, 8];
        assert_eq!(channel_label(&dims, 4, 0), "(0,0)x+");
        assert_eq!(channel_label(&dims, 4, 1), "(0,0)x-");
        assert_eq!(channel_label(&dims, 4, (3 + 8 * 7) * 4 + 2), "(3,7)y+");
        // 3D falls back to z; higher dims get d<N> names.
        assert_eq!(channel_label(&[4, 4, 4], 6, 5), "(0,0,0)z-");
        assert_eq!(dim_name(5), "d5");
    }

    #[test]
    fn scan_tolerates_mixed_directories() {
        let dir = std::env::temp_dir().join(format!("wormsim-inspect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.metrics.json"), "not json").unwrap();
        std::fs::write(dir.join("unrelated.txt"), "ignored").unwrap();
        let runs = scan(&dir).unwrap();
        assert!(runs.is_empty(), "bad and foreign files are skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

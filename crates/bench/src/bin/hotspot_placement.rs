//! The paper's hotspot-placement note: "We have experimented with various
//! different choices for hotspot nodes and found that the nlast yields
//! best results when the hotspot node is (15,15); performances of the
//! e-cube and hop schemes are unaffected by the choice of the hotspot
//! node." This regenerates that sensitivity study, plus the multi-hotspot
//! variant the paper sketches for software-distributed locks.

use wormsim::{AlgorithmKind, Experiment, Topology, TrafficConfig};
use wormsim_bench::SweepOptions;

fn peak_for(
    topo: &Topology,
    algorithm: AlgorithmKind,
    traffic: &TrafficConfig,
    options: &SweepOptions,
) -> f64 {
    let mut peak = 0.0f64;
    for load in [0.2, 0.3, 0.4, 0.5] {
        let r = Experiment::new(topo.clone(), algorithm)
            .traffic(traffic.clone())
            .offered_load(load)
            .schedule(options.schedule)
            .seed(options.seed)
            .run()
            .expect("experiment runs");
        peak = peak.max(r.achieved_utilization);
    }
    peak
}

fn main() {
    let options = SweepOptions::from_args();
    let topo = Topology::torus(&[16, 16]);
    let placements: [(&str, Vec<Vec<u16>>); 4] = [
        ("corner (15,15)", vec![vec![15, 15]]),
        ("center (8,8)", vec![vec![8, 8]]),
        ("edge (0,8)", vec![vec![0, 8]]),
        (
            "4 spread hotspots",
            vec![vec![3, 3], vec![3, 11], vec![11, 3], vec![11, 11]],
        ),
    ];
    let algorithms = [
        AlgorithmKind::NorthLast,
        AlgorithmKind::Ecube,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::NegativeHopBonusCards,
    ];
    println!("Peak achieved utilization, 4% hotspot traffic by placement:\n");
    print!("{:>20}", "placement");
    for a in algorithms {
        print!("{:>9}", a.name());
    }
    println!();
    for (name, nodes) in placements {
        let traffic = TrafficConfig::Hotspot {
            nodes,
            fraction: 0.04,
        };
        print!("{name:>20}");
        for algorithm in algorithms {
            print!("{:>9.3}", peak_for(&topo, algorithm, &traffic, &options));
        }
        println!();
    }
    println!(
        "\nExpected shape: only nlast's column moves with placement (its turn\n\
         restriction makes the north-west region special); spreading the\n\
         hotspot over four nodes recovers throughput for everyone."
    );
}

//! `chaos_soak` — the supervision stack's end-to-end proving ground.
//!
//! Runs a reference sweep serially on the in-process pool, then replays
//! the identical sweep against real `wormsim-worker` subprocesses armed
//! with seeded `--chaos` plans (stalls, crashes, corrupted responses),
//! asserting after every scenario that the journal and CSV bytes are
//! identical to the serial run — injected faults may cost wall-clock,
//! never data. A final scenario drives a poison point into quarantine and
//! checks it is surfaced (sidecar + supervision manifest) instead of
//! silently absorbed.
//!
//! `--smoke` runs one pass of every scenario (the CI configuration);
//! without it the response-corruption scenario is repeated under extra
//! chaos seeds. Exits 0 only if every assertion held.

use std::io::BufRead as _;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use wormsim::observe::json;
use wormsim::topology::Topology;
use wormsim::{format_sweep_csv, AlgorithmKind, Experiment, RunResult};
use wormsim_bench::{run_sweep, BackendChoice, ExperimentsRun, Journal, SweepOptions, SweepPlan};

const USAGE: &str = "usage: chaos_soak [--smoke]

Proves sweep supervision end to end: serial reference run, then the same
sweep against chaos-armed wormsim-worker subprocesses (stall, crash,
corrupt), asserting byte-identical journal + CSV and a surfaced
quarantine. --smoke runs the single-pass CI configuration.
";

fn die(message: &str) -> ! {
    eprintln!("chaos_soak: FAILED: {message}");
    std::process::exit(1);
}

fn expect(condition: bool, what: &str) {
    if !condition {
        die(what);
    }
}

/// A `wormsim-worker` subprocess (the sibling binary), killed on drop.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    fn spawn(args: &[&str]) -> WorkerProc {
        let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("own path: {e}")));
        let bin = exe
            .parent()
            .unwrap_or_else(|| die("own binary has no parent directory"))
            .join("wormsim-worker");
        let mut child = Command::new(&bin)
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| die(&format!("cannot spawn {}: {e}", bin.display())));
        // The worker announces "wormsim-worker listening on ADDR" once
        // bound; everything after the last space is the address.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap_or_else(|e| die(&format!("worker never announced its address: {e}")));
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .unwrap_or_default()
            .to_owned();
        expect(
            addr.contains(':'),
            &format!("unparseable worker announcement: {line:?}"),
        );
        WorkerProc { child, addr }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The reference sweep: small enough to soak in seconds, varied enough
/// (two algorithms, two loads) that a scheduling bug would show.
fn soak_experiments(points: usize) -> Vec<Experiment> {
    let mut experiments = Vec::new();
    for algorithm in [AlgorithmKind::Ecube, AlgorithmKind::PositiveHop] {
        for load_step in 1..=points.div_ceil(2) {
            experiments.push(
                Experiment::new(Topology::torus(&[6, 6]), algorithm)
                    .offered_load(0.1 * load_step as f64)
                    .quick()
                    .seed(1993),
            );
        }
    }
    experiments.truncate(points);
    experiments
}

fn out_dir(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("wormsim-chaos-soak-{}-{name}", std::process::id()))
        .display()
        .to_string()
}

fn run(experiments: &[Experiment], out: &str, options: SweepOptions) -> ExperimentsRun {
    let plan = SweepPlan::new(experiments.to_vec()).journal_name("soak.journal.jsonl");
    let options = SweepOptions {
        out_dir: out.to_owned(),
        ..options
    };
    run_sweep(&plan, &options).unwrap_or_else(|e| die(&format!("sweep in {out} errored: {e}")))
}

fn remote_options(workers: &[&WorkerProc]) -> SweepOptions {
    SweepOptions {
        backend: BackendChoice::Remote {
            workers: workers.iter().map(|w| w.addr.clone()).collect(),
        },
        quarantine_after: 0,
        ..SweepOptions::default()
    }
}

fn results_of(run: &ExperimentsRun) -> Vec<RunResult> {
    run.outcomes
        .iter()
        .flatten()
        .map(|r| {
            r.clone()
                .unwrap_or_else(|e| die(&format!("point failed: {e}")))
        })
        .collect()
}

fn journal_bytes(out: &str) -> Vec<u8> {
    let path = Path::new(out).join("soak.journal.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| die(&format!("read {}: {e}", path.display())))
}

/// The scenario's core assertion: faults cost wall-clock, never bytes.
fn assert_identical(scenario: &str, serial_out: &str, chaos_out: &str, run: &ExperimentsRun) {
    expect(
        !run.interrupted && run.quarantined.is_empty(),
        &format!("{scenario}: sweep did not complete whole"),
    );
    expect(
        journal_bytes(serial_out) == journal_bytes(chaos_out),
        &format!("{scenario}: chaos journal diverged from the serial journal"),
    );
    let serial_csv = std::fs::read_to_string(Path::new(serial_out).join("soak.csv"))
        .unwrap_or_else(|e| die(&format!("read serial csv: {e}")));
    let chaos_csv = format_sweep_csv(&results_of(run));
    expect(
        serial_csv == chaos_csv,
        &format!("{scenario}: chaos CSV diverged from the serial CSV"),
    );
    eprintln!("chaos_soak: {scenario}: journal and CSV byte-identical to serial");
}

fn read_manifest(run: &ExperimentsRun) -> json::Value {
    let path = Journal::supervision_sidecar(&run.journal);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        die(&format!(
            "supervision manifest {} missing: {e}",
            path.display()
        ))
    });
    json::from_str(&text).unwrap_or_else(|e| die(&format!("unparseable supervision manifest: {e}")))
}

fn manifest_count(manifest: &json::Value, key: &str) -> u64 {
    manifest
        .get(key)
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| die(&format!("supervision manifest missing `{key}`")))
}

/// A stalled point hedges to spare capacity; the duplicate is discarded.
fn scenario_hedge(experiments: &[Experiment], serial_out: &str) {
    let staller = WorkerProc::spawn(&["--threads", "2", "--chaos", "stall-submit=1"]);
    let clean = WorkerProc::spawn(&["--threads", "2"]);
    let out = out_dir("hedge");
    let run = run(
        experiments,
        &out,
        SweepOptions {
            hedge_after_secs: Some(0.3),
            ..remote_options(&[&staller, &clean])
        },
    );
    assert_identical("hedge", serial_out, &out, &run);
    expect(
        run.supervision.points_hedged >= 1,
        "hedge: the stalled straggler was never hedged",
    );
    expect(
        run.supervision.duplicates_discarded >= 1,
        "hedge: the losing duplicate was not discarded",
    );
    let manifest = read_manifest(&run);
    expect(
        manifest_count(&manifest, "points_hedged") >= 1,
        "hedge: manifest does not surface the hedge",
    );
    std::fs::remove_dir_all(&out).ok();
}

/// A hung worker (frozen heartbeat) is written off; its points fail over.
fn scenario_write_off(experiments: &[Experiment], serial_out: &str) {
    let staller = WorkerProc::spawn(&["--threads", "2", "--chaos", "stall-submit=1"]);
    let clean = WorkerProc::spawn(&["--threads", "1"]);
    let out = out_dir("write-off");
    let run = run(
        experiments,
        &out,
        SweepOptions {
            point_deadline_secs: Some(0.4),
            ..remote_options(&[&staller, &clean])
        },
    );
    assert_identical("write-off", serial_out, &out, &run);
    expect(
        run.supervision.workers_written_off >= 1,
        "write-off: the hung worker was never written off",
    );
    let manifest = read_manifest(&run);
    expect(
        manifest_count(&manifest, "workers_written_off") >= 1,
        "write-off: manifest does not surface the write-off",
    );
    std::fs::remove_dir_all(&out).ok();
}

/// A worker crashes mid-sweep while another corrupts/delays responses;
/// the survivors absorb everything without perturbing a byte.
fn scenario_crash_corrupt(experiments: &[Experiment], serial_out: &str, chaos_seed: u64) {
    let crasher = WorkerProc::spawn(&["--threads", "2", "--chaos", "crash-submit=2"]);
    let garbler = WorkerProc::spawn(&[
        "--threads",
        "2",
        "--chaos",
        &format!("seed={chaos_seed},corrupt=0.2,delay-ms=20@0.4"),
    ]);
    let clean = WorkerProc::spawn(&["--threads", "2"]);
    let out = out_dir(&format!("crash-corrupt-{chaos_seed}"));
    let run = run(
        experiments,
        &out,
        remote_options(&[&crasher, &garbler, &clean]),
    );
    assert_identical(
        &format!("crash+corrupt (seed {chaos_seed})"),
        serial_out,
        &out,
        &run,
    );
    std::fs::remove_dir_all(&out).ok();
}

/// A point that hangs every worker it touches is quarantined, loudly.
fn scenario_quarantine() {
    let experiments = soak_experiments(1);
    let staller_a = WorkerProc::spawn(&["--threads", "1", "--chaos", "stall-submit=1"]);
    let staller_b = WorkerProc::spawn(&["--threads", "1", "--chaos", "stall-submit=1"]);
    let out = out_dir("quarantine");
    let run = run(
        &experiments,
        &out,
        SweepOptions {
            point_deadline_secs: Some(0.4),
            quarantine_after: 1,
            ..remote_options(&[&staller_a, &staller_b])
        },
    );
    expect(
        run.quarantined.len() == 1 && run.quarantined[0].index == 0,
        "quarantine: the poison point was not quarantined",
    );
    expect(
        !run.interrupted,
        "quarantine: a quarantined point must not read as an interruption",
    );
    expect(
        run.supervision.workers_written_off >= 1,
        "quarantine: the first hung worker was never written off",
    );
    let sidecar = Journal::quarantine_sidecar(&run.journal);
    let sidecar_text = std::fs::read_to_string(&sidecar).unwrap_or_else(|e| {
        die(&format!(
            "quarantine sidecar {} missing: {e}",
            sidecar.display()
        ))
    });
    expect(
        sidecar_text.contains(&run.quarantined[0].point_hash),
        "quarantine: sidecar does not name the poison point",
    );
    let manifest = read_manifest(&run);
    expect(
        manifest_count(&manifest, "points_quarantined") == 1,
        "quarantine: manifest does not surface the quarantine",
    );
    eprintln!("chaos_soak: quarantine: poison point surfaced in sidecar and manifest");
    std::fs::remove_dir_all(&out).ok();
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let experiments = soak_experiments(4);
    let serial_out = out_dir("serial");
    let serial = run(&experiments, &serial_out, SweepOptions::default());
    expect(
        !serial.interrupted && serial.quarantined.is_empty(),
        "serial reference run did not complete",
    );
    let serial_csv = Path::new(&serial_out).join("soak.csv");
    wormsim::observe::atomic_write(&serial_csv, format_sweep_csv(&results_of(&serial)))
        .unwrap_or_else(|e| die(&format!("write serial csv: {e}")));

    scenario_hedge(&experiments, &serial_out);
    scenario_write_off(&experiments, &serial_out);
    scenario_crash_corrupt(&experiments, &serial_out, 1993);
    if !smoke {
        for chaos_seed in [7, 11, 13] {
            scenario_crash_corrupt(&experiments, &serial_out, chaos_seed);
        }
    }
    scenario_quarantine();

    std::fs::remove_dir_all(&serial_out).ok();
    println!(
        "chaos soak passed: stall/hedge, hung-worker write-off, crash+corrupt identity{}, and quarantine all held",
        if smoke { " (smoke)" } else { " (x4 seeds)" }
    );
}

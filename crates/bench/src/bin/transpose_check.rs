//! Cross-check of the paper's caveat about north-last: "Glass and Ni
//! report that this class of algorithms perform better than e-cube for
//! other types of nonuniform traffic such as matrix transpose."
//!
//! Runs transpose, bit-reversal, and complement permutations and prints
//! whether the partially adaptive algorithms do reclaim ground there.

use wormsim::{AlgorithmKind, Experiment, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let workloads = [
        ("transpose", TrafficConfig::Transpose),
        ("bit-reversal", TrafficConfig::BitReversal),
        ("complement", TrafficConfig::Complement),
    ];
    let algorithms = [
        AlgorithmKind::Ecube,
        AlgorithmKind::NorthLast,
        AlgorithmKind::TwoPowerN,
        AlgorithmKind::PositiveHop,
    ];
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5];
    println!("Peak achieved utilization per permutation workload ({topo}):\n");
    print!("{:>14}", "workload");
    for a in algorithms {
        print!("{:>9}", a.name());
    }
    println!();
    for (name, traffic) in workloads {
        print!("{name:>14}");
        for algorithm in algorithms {
            let mut peak = 0.0f64;
            for &load in &loads {
                let r = Experiment::new(topo.clone(), algorithm)
                    .traffic(traffic.clone())
                    .offered_load(load)
                    .schedule(options.schedule)
                    .seed(options.seed)
                    .run()
                    .expect("experiment runs");
                peak = peak.max(r.achieved_utilization);
            }
            print!("{peak:>9.3}");
        }
        println!();
    }
    println!(
        "\nGlass & Ni's claim holds if nlast's column beats ecube's for the\n\
         permutations while losing under uniform traffic (Figure 3)."
    );
}

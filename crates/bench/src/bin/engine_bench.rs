//! Engine-core perf regression bench: steps/sec on the default paper
//! configuration (16×16 torus, uniform traffic, 16-flit messages) at a fixed
//! offered load, recorded to JSON so the perf trajectory is tracked PR over
//! PR (see `BENCH_engine.json` at the repository root). `--topo` retargets
//! the bench at another network (e.g. `--topo 8^3`).
//!
//! ```text
//! engine_bench [--topo T] [--load F] [--cycles N] [--warmup N] [--seed N] [--out FILE]
//!              [--metrics] [--max-overhead-pct P]
//! ```
//!
//! `--metrics` re-runs each algorithm with the deep-telemetry registry
//! installed and prints latency percentiles plus the engine-phase
//! breakdown; `--max-overhead-pct P` (implies the paired runs) fails the
//! bench (exit 1) if any algorithm's metrics-enabled throughput drops
//! more than `P` percent below its metrics-disabled run — the CI guard
//! that instrumentation stays off the disabled hot path. The JSON report
//! always records the metrics-disabled numbers, so the perf trajectory
//! in `BENCH_engine.json` is comparable across PRs.

use std::time::Instant;
use wormsim::observe::{MetricsRegistry, PHASE_NAMES};
use wormsim::routing::AlgorithmKind;
use wormsim::topology::Topology;
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, TrafficConfig};
use wormsim_bench::cli;

const USAGE: &str = "usage: engine_bench [--topo T] [--load F] [--cycles N] [--warmup N] \
                     [--seed N] [--out FILE] [--metrics] [--max-overhead-pct P]";

struct Options {
    topo: Topology,
    load: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    out: Option<String>,
    metrics: bool,
    max_overhead_pct: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topo: Topology::torus(&[16, 16]),
            load: 0.3,
            cycles: 20_000,
            warmup: 3_000,
            seed: 1993,
            out: None,
            metrics: false,
            max_overhead_pct: None,
        }
    }
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--topo" => options.topo = cli::parse_topology(&value("--topo")?)?,
            "--load" => {
                let v = value("--load")?;
                options.load = v
                    .parse::<f64>()
                    .ok()
                    .filter(|l| (0.0..=1.0).contains(l) && *l > 0.0)
                    .ok_or_else(|| format!("bad load '{v}' (expected 0 < load <= 1)"))?;
            }
            "--cycles" => options.cycles = cli::parse_seed(&value("--cycles")?)?,
            "--warmup" => options.warmup = cli::parse_seed(&value("--warmup")?)?,
            "--seed" => options.seed = cli::parse_seed(&value("--seed")?)?,
            "--out" => options.out = Some(value("--out")?),
            "--metrics" => options.metrics = true,
            "--max-overhead-pct" => {
                let v = value("--max-overhead-pct")?;
                options.max_overhead_pct = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|p| p.is_finite() && *p > 0.0)
                        .ok_or_else(|| format!("bad percentage '{v}' (expected > 0)"))?,
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(options)
}

struct Measurement {
    algorithm: &'static str,
    steps_per_sec: f64,
    flits_per_sec: f64,
    wall_seconds: f64,
    flit_hops: u64,
    delivered: u64,
    registry: Option<Box<MetricsRegistry>>,
}

fn measure(kind: AlgorithmKind, options: &Options, with_metrics: bool) -> Measurement {
    let topo = options.topo.clone();
    let pattern = TrafficConfig::Uniform.build(&topo).expect("uniform builds");
    let rate = wormsim::stats::throughput::rate_for_utilization(
        options.load,
        16.0,
        pattern.mean_distance(&topo),
        topo.num_dims(),
    );
    let mut net = NetworkBuilder::new(topo, kind)
        .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
        .message_length(MessageLength::fixed(16).expect("valid length"))
        .seed(options.seed)
        .build()
        .expect("network builds");
    net.run(options.warmup);
    net.reset_metrics();
    if with_metrics {
        net.observer().metrics_on();
    }
    let start = Instant::now();
    net.run(options.cycles);
    let wall_seconds = start.elapsed().as_secs_f64();
    let flit_hops = net.metrics().flit_hops;
    Measurement {
        algorithm: kind.name(),
        steps_per_sec: options.cycles as f64 / wall_seconds,
        flits_per_sec: flit_hops as f64 / wall_seconds,
        wall_seconds,
        flit_hops,
        delivered: net.metrics().delivered,
        registry: net.observer().metrics_off(),
    }
}

/// Best-of-N by wall clock. The simulation is deterministic — every repeat
/// counts the same flit-hops — so the minimum wall time is the least-noisy
/// throughput estimate on a shared machine, which the paired overhead
/// comparison needs (single-shot short runs swing tens of percent).
fn measure_best(kind: AlgorithmKind, options: &Options, with_metrics: bool, n: u32) -> Measurement {
    let mut best = measure(kind, options, with_metrics);
    for _ in 1..n {
        let m = measure(kind, options, with_metrics);
        if m.wall_seconds < best.wall_seconds {
            best = m;
        }
    }
    best
}

/// Prints the deep-telemetry summary of one metrics-enabled run: latency
/// percentiles and the engine-phase wall-clock split.
fn print_telemetry(registry: &MetricsRegistry) {
    let latency = registry.latency.summarize("latency");
    println!(
        "          latency p50/p95/p99: {}/{}/{} cycles ({} messages)",
        latency.p50, latency.p95, latency.p99, latency.count
    );
    let total: u64 = registry.phase_nanos.iter().sum();
    let split: Vec<String> = PHASE_NAMES
        .iter()
        .zip(registry.phase_nanos.iter())
        .map(|(name, &nanos)| format!("{name} {:.0}%", 100.0 * nanos as f64 / total.max(1) as f64))
        .collect();
    println!("          phase split: {}", split.join(", "));
}

fn json_report(options: &Options, results: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"topology\": \"{}\", \"traffic\": \"uniform\", \
         \"offered_load\": {}, \"message_flits\": 16, \"seed\": {}, \"warmup_cycles\": {}, \
         \"timed_cycles\": {}}},\n",
        options.topo.label(),
        options.load,
        options.seed,
        options.warmup,
        options.cycles
    ));
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"steps_per_sec\": {:.0}, \"flits_per_sec\": {:.0}, \
             \"wall_seconds\": {:.4}, \"flit_hops\": {}, \"delivered\": {}}}{}\n",
            m.algorithm,
            m.steps_per_sec,
            m.flits_per_sec,
            m.wall_seconds,
            m.flit_hops,
            m.delivered,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    println!(
        "engine_bench: {}, uniform traffic, load {:.2}, {} timed cycles",
        options.topo, options.load, options.cycles
    );
    let paired = options.metrics || options.max_overhead_pct.is_some();
    let mut results = Vec::new();
    let mut worst_overhead = f64::NEG_INFINITY;
    // Paired mode exists to compare the two modes, so both sides get the
    // best-of-3 noise treatment; the plain trajectory run stays single-shot
    // (matching how every committed BENCH_engine.json was produced).
    let repeats = if paired { 3 } else { 1 };
    for kind in AlgorithmKind::all() {
        let m = measure_best(kind, &options, false, repeats);
        println!(
            "  {:>6}: {:>10.0} steps/s  {:>12.0} flits/s  ({} flit-hops, {} delivered)",
            m.algorithm, m.steps_per_sec, m.flits_per_sec, m.flit_hops, m.delivered
        );
        if paired {
            let enabled = measure_best(kind, &options, true, repeats);
            let overhead = (m.flits_per_sec / enabled.flits_per_sec - 1.0) * 100.0;
            worst_overhead = worst_overhead.max(overhead);
            println!(
                "          with metrics: {:>10.0} steps/s  {:>12.0} flits/s  \
                 ({overhead:+.1}% overhead)",
                enabled.steps_per_sec, enabled.flits_per_sec
            );
            if let Some(registry) = &enabled.registry {
                print_telemetry(registry);
            }
        }
        results.push(m);
    }
    let mean: f64 = results.iter().map(|m| m.steps_per_sec).sum::<f64>() / results.len() as f64;
    let mean_flits: f64 =
        results.iter().map(|m| m.flits_per_sec).sum::<f64>() / results.len() as f64;
    println!("  mean: {mean:.0} steps/s, {mean_flits:.0} flits/s");

    if let Some(path) = &options.out {
        let report = json_report(&options, &results);
        if let Err(e) = wormsim::observe::atomic_write(std::path::Path::new(path), &report) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(limit) = options.max_overhead_pct {
        if worst_overhead > limit {
            eprintln!(
                "metrics overhead guard FAILED: worst algorithm slowed {worst_overhead:.1}% \
                 with metrics enabled (limit {limit}%)"
            );
            std::process::exit(1);
        }
        println!("metrics overhead guard passed: worst {worst_overhead:.1}% <= {limit}%");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_arguments() {
        let parse = |args: &[&str]| parse_args(args.iter().map(|s| (*s).to_owned()));
        assert!(parse(&["--load", "0"]).is_err());
        assert!(parse(&["--load", "heavy"]).is_err());
        assert!(parse(&["--cycles", "-5"]).is_err());
        assert!(parse(&["--cycles"]).is_err());
        assert!(parse(&["--turbo"]).is_err());
        assert!(parse(&["--load", "0.4", "--cycles", "100"]).is_ok());
        assert!(parse(&["--max-overhead-pct", "0"]).is_err());
        assert!(parse(&["--max-overhead-pct", "lots"]).is_err());
    }

    #[test]
    fn metrics_flags_parse() {
        let parse = |args: &[&str]| parse_args(args.iter().map(|s| (*s).to_owned()));
        let options = parse(&["--metrics", "--max-overhead-pct", "25"]).unwrap();
        assert!(options.metrics);
        assert_eq!(options.max_overhead_pct, Some(25.0));
        let defaults = parse(&[]).unwrap();
        assert!(!defaults.metrics);
        assert_eq!(defaults.max_overhead_pct, None);
    }
}

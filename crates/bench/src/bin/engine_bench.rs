//! Engine-core perf regression bench: steps/sec on the default paper
//! configuration (16×16 torus, uniform traffic, 16-flit messages) at a fixed
//! offered load, recorded to JSON so the perf trajectory is tracked PR over
//! PR (see `BENCH_engine.json` at the repository root). `--topo` retargets
//! the bench at another network (e.g. `--topo 8^3`).
//!
//! ```text
//! engine_bench [--topo T] [--load F] [--cycles N] [--warmup N] [--seed N] [--out FILE]
//! ```

use std::time::Instant;
use wormsim::routing::AlgorithmKind;
use wormsim::topology::Topology;
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, TrafficConfig};
use wormsim_bench::cli;

const USAGE: &str = "usage: engine_bench [--topo T] [--load F] [--cycles N] [--warmup N] \
                     [--seed N] [--out FILE]";

struct Options {
    topo: Topology,
    load: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topo: Topology::torus(&[16, 16]),
            load: 0.3,
            cycles: 20_000,
            warmup: 3_000,
            seed: 1993,
            out: None,
        }
    }
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--topo" => options.topo = cli::parse_topology(&value("--topo")?)?,
            "--load" => {
                let v = value("--load")?;
                options.load = v
                    .parse::<f64>()
                    .ok()
                    .filter(|l| (0.0..=1.0).contains(l) && *l > 0.0)
                    .ok_or_else(|| format!("bad load '{v}' (expected 0 < load <= 1)"))?;
            }
            "--cycles" => options.cycles = cli::parse_seed(&value("--cycles")?)?,
            "--warmup" => options.warmup = cli::parse_seed(&value("--warmup")?)?,
            "--seed" => options.seed = cli::parse_seed(&value("--seed")?)?,
            "--out" => options.out = Some(value("--out")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(options)
}

struct Measurement {
    algorithm: &'static str,
    steps_per_sec: f64,
    flits_per_sec: f64,
    wall_seconds: f64,
    flit_hops: u64,
    delivered: u64,
}

fn measure(kind: AlgorithmKind, options: &Options) -> Measurement {
    let topo = options.topo.clone();
    let pattern = TrafficConfig::Uniform.build(&topo).expect("uniform builds");
    let rate = wormsim::stats::throughput::rate_for_utilization(
        options.load,
        16.0,
        pattern.mean_distance(&topo),
        topo.num_dims(),
    );
    let mut net = NetworkBuilder::new(topo, kind)
        .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
        .message_length(MessageLength::fixed(16).expect("valid length"))
        .seed(options.seed)
        .build()
        .expect("network builds");
    net.run(options.warmup);
    net.reset_metrics();
    let start = Instant::now();
    net.run(options.cycles);
    let wall_seconds = start.elapsed().as_secs_f64();
    let flit_hops = net.metrics().flit_hops;
    Measurement {
        algorithm: kind.name(),
        steps_per_sec: options.cycles as f64 / wall_seconds,
        flits_per_sec: flit_hops as f64 / wall_seconds,
        wall_seconds,
        flit_hops,
        delivered: net.metrics().delivered,
    }
}

fn json_report(options: &Options, results: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"topology\": \"{}\", \"traffic\": \"uniform\", \
         \"offered_load\": {}, \"message_flits\": 16, \"seed\": {}, \"warmup_cycles\": {}, \
         \"timed_cycles\": {}}},\n",
        options.topo.label(),
        options.load,
        options.seed,
        options.warmup,
        options.cycles
    ));
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"steps_per_sec\": {:.0}, \"flits_per_sec\": {:.0}, \
             \"wall_seconds\": {:.4}, \"flit_hops\": {}, \"delivered\": {}}}{}\n",
            m.algorithm,
            m.steps_per_sec,
            m.flits_per_sec,
            m.wall_seconds,
            m.flit_hops,
            m.delivered,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    println!(
        "engine_bench: {}, uniform traffic, load {:.2}, {} timed cycles",
        options.topo, options.load, options.cycles
    );
    let mut results = Vec::new();
    for kind in AlgorithmKind::all() {
        let m = measure(kind, &options);
        println!(
            "  {:>6}: {:>10.0} steps/s  {:>12.0} flits/s  ({} flit-hops, {} delivered)",
            m.algorithm, m.steps_per_sec, m.flits_per_sec, m.flit_hops, m.delivered
        );
        results.push(m);
    }
    let mean: f64 = results.iter().map(|m| m.steps_per_sec).sum::<f64>() / results.len() as f64;
    let mean_flits: f64 =
        results.iter().map(|m| m.flits_per_sec).sum::<f64>() / results.len() as f64;
    println!("  mean: {mean:.0} steps/s, {mean_flits:.0} flits/s");

    if let Some(path) = &options.out {
        let report = json_report(&options, &results);
        if let Err(e) = wormsim::observe::atomic_write(std::path::Path::new(path), &report) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_arguments() {
        let parse = |args: &[&str]| parse_args(args.iter().map(|s| (*s).to_owned()));
        assert!(parse(&["--load", "0"]).is_err());
        assert!(parse(&["--load", "heavy"]).is_err());
        assert!(parse(&["--cycles", "-5"]).is_err());
        assert!(parse(&["--cycles"]).is_err());
        assert!(parse(&["--turbo"]).is_err());
        assert!(parse(&["--load", "0.4", "--cycles", "100"]).is_ok());
    }
}

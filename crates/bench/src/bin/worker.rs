//! `wormsim-worker` — a headless simulation worker for distributed
//! sweeps.
//!
//! Binds an HTTP listener, announces the bound port on stdout, and runs
//! submitted sweep points until killed. Pair with a sweep bin's
//! `--backend remote --worker HOST:PORT` flags; see `docs/DISTRIBUTION.md`
//! for the protocol and a two-terminal walkthrough.
//!
//! SIGTERM drains gracefully: in-flight runs get `--drain-secs` to
//! finish, then the process exits 0. `--chaos SPEC` arms seeded fault
//! injection for supervision testing (see `docs/DISTRIBUTION.md`,
//! "Supervision & Chaos").

use wormsim_bench::worker::{serve, WorkerConfig};
use wormsim_bench::ChaosPlan;

const USAGE: &str =
    "usage: wormsim-worker [--listen HOST:PORT] [--threads N] [--drain-secs S] [--chaos SPEC]

Runs sweep points submitted over HTTP by a sweep bin using
--backend remote. Options:

  --listen HOST:PORT  bind address (default 127.0.0.1:0, an ephemeral
                      port announced on stdout)
  --threads N         concurrent simulation slots (default: all cores)
  --drain-secs S      SIGTERM grace for in-flight runs (default 30)
  --chaos SPEC        seeded fault injection, e.g.
                      'seed=7,crash-submit=3,corrupt=0.2,delay-ms=50@0.5'
                      (keys: crash-submit, stall-submit, delay-ms=MS@P,
                      drop, truncate, corrupt, slow-handshake-ms, seed)
";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Option<WorkerConfig>, String> {
    let mut config = WorkerConfig {
        listen: "127.0.0.1:0".to_owned(),
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        chaos: ChaosPlan::default(),
        drain_secs: 30,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                config.listen = args.next().ok_or("--listen needs HOST:PORT")?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                config.threads = wormsim_bench::cli::parse_threads(&v)?;
            }
            "--drain-secs" => {
                let v = args.next().ok_or("--drain-secs needs a value")?;
                config.drain_secs = v
                    .parse()
                    .map_err(|_| format!("bad drain budget '{v}' (expected seconds)"))?;
            }
            "--chaos" => {
                let v = args.next().ok_or("--chaos needs a spec")?;
                config.chaos = ChaosPlan::parse(&v).map_err(|e| e.to_string())?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(config))
}

fn main() {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if config.chaos.is_active() {
        eprintln!("wormsim-worker: chaos plan armed: {:?}", config.chaos);
    }
    if let Err(err) = serve(&config) {
        eprintln!("wormsim-worker: {err}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<WorkerConfig>, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_listen_and_threads() {
        let config = parse(&["--listen", "0.0.0.0:7777", "--threads", "3"])
            .unwrap()
            .unwrap();
        assert_eq!(config.listen, "0.0.0.0:7777");
        assert_eq!(config.threads, 3);
        assert!(!config.chaos.is_active());
        assert_eq!(config.drain_secs, 30);
    }

    #[test]
    fn defaults_to_ephemeral_loopback() {
        let config = parse(&[]).unwrap().unwrap();
        assert_eq!(config.listen, "127.0.0.1:0");
        assert!(config.threads >= 1);
    }

    #[test]
    fn parses_chaos_and_drain() {
        let config = parse(&["--chaos", "crash-submit=2,drop=0.1", "--drain-secs", "5"])
            .unwrap()
            .unwrap();
        assert_eq!(config.chaos.crash_submit, Some(2));
        assert_eq!(config.chaos.drop_p, 0.1);
        assert_eq!(config.drain_secs, 5);
        assert!(config.chaos.is_active());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["--listen"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--port", "1"]).is_err());
        assert!(parse(&["--chaos", "warp=1"]).is_err());
        assert!(parse(&["--chaos", "drop=2"]).is_err());
        assert!(parse(&["--drain-secs", "soon"]).is_err());
        assert!(parse(&["--help"]).unwrap().is_none());
    }
}

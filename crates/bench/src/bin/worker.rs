//! `wormsim-worker` — a headless simulation worker for distributed
//! sweeps.
//!
//! Binds an HTTP listener, announces the bound port on stdout, and runs
//! submitted sweep points until killed. Pair with a sweep bin's
//! `--backend remote --worker HOST:PORT` flags; see `docs/DISTRIBUTION.md`
//! for the protocol and a two-terminal walkthrough.

use wormsim_bench::worker::{serve, WorkerConfig};

const USAGE: &str = "usage: wormsim-worker [--listen HOST:PORT] [--threads N]

Runs sweep points submitted over HTTP by a sweep bin using
--backend remote. Options:

  --listen HOST:PORT  bind address (default 127.0.0.1:0, an ephemeral
                      port announced on stdout)
  --threads N         concurrent simulation slots (default: all cores)
";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Option<WorkerConfig>, String> {
    let mut config = WorkerConfig {
        listen: "127.0.0.1:0".to_owned(),
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                config.listen = args.next().ok_or("--listen needs HOST:PORT")?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                config.threads = wormsim_bench::cli::parse_threads(&v)?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(config))
}

fn main() {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(err) = serve(&config) {
        eprintln!("wormsim-worker: {err}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<WorkerConfig>, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_listen_and_threads() {
        let config = parse(&["--listen", "0.0.0.0:7777", "--threads", "3"])
            .unwrap()
            .unwrap();
        assert_eq!(config.listen, "0.0.0.0:7777");
        assert_eq!(config.threads, 3);
    }

    #[test]
    fn defaults_to_ephemeral_loopback() {
        let config = parse(&[]).unwrap().unwrap();
        assert_eq!(config.listen, "127.0.0.1:0");
        assert!(config.threads >= 1);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["--listen"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--port", "1"]).is_err());
        assert!(parse(&["--help"]).unwrap().is_none());
    }
}

//! Ablation: the input-buffer-limit congestion control (Lam & Reiser).
//!
//! The paper notes the e-cube curve stays near peak after saturation
//! thanks to congestion control, while nlast's plateau shows the control
//! being "less effective for certain traffic loads". This sweeps the limit.

use wormsim::{AlgorithmKind, Experiment, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let limits: [(&str, Option<u32>); 4] = [
        ("1", Some(1)),
        ("2", Some(2)),
        ("8", Some(8)),
        ("none", None),
    ];
    println!("Achieved utilization at offered 0.8 (uniform, {topo}):");
    print!("{:>8}", "algo");
    for (name, _) in limits {
        print!("{name:>9}");
    }
    println!("   (and saturation latency in cycles)");
    for algo in [
        AlgorithmKind::Ecube,
        AlgorithmKind::NorthLast,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::NegativeHopBonusCards,
    ] {
        print!("{:>8}", algo.name());
        let mut latencies = Vec::new();
        for (_, limit) in limits {
            let r = Experiment::new(topo.clone(), algo)
                .traffic(TrafficConfig::Uniform)
                .congestion_limit(limit)
                .offered_load(0.8)
                .schedule(options.schedule)
                .seed(options.seed)
                .run()
                .expect("experiment runs");
            print!("{:>9.3}", r.achieved_utilization);
            latencies.push(r.latency.mean());
        }
        print!("   lat:");
        for l in latencies {
            print!(" {l:>8.0}");
        }
        println!();
    }
    println!("\n(Unlimited injection lets source queues grow without bound, so its");
    println!("latency column is dominated by queueing and keeps growing with run length.)");
}

//! Sensitivity probe: how buffer depth, congestion limit, and selection
//! policy move each algorithm's peak throughput under uniform traffic.
//!
//! Used to pick the repository's defaults (the paper leaves these
//! parameters unspecified); results are discussed in EXPERIMENTS.md.

use wormsim::{
    AlgorithmKind, Experiment, MeasurementSchedule, SelectionPolicy, Switching, Topology,
    TrafficConfig,
};

fn main() {
    let loads = [0.4, 0.6, 0.8, 1.0];
    let algorithms = [
        AlgorithmKind::Ecube,
        AlgorithmKind::TwoPowerN,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::NegativeHopBonusCards,
    ];
    println!(
        "{:>6} {:>6} {:>12} | {:>7} {:>7} {:>7} {:>7}",
        "depth", "limit", "selection", "ecube", "2pn", "phop", "nbc"
    );
    for depth in [1u32, 2, 4] {
        for limit in [1u32, 4, 8] {
            for selection in [SelectionPolicy::MostCredits, SelectionPolicy::FirstFree] {
                let mut peaks = Vec::new();
                for algo in algorithms {
                    let mut peak = 0.0f64;
                    for &load in &loads {
                        let r = Experiment::new(Topology::torus(&[16, 16]), algo)
                            .traffic(TrafficConfig::Uniform)
                            .switching(Switching::Wormhole {
                                buffer_depth: depth,
                            })
                            .congestion_limit(Some(limit))
                            .selection(selection)
                            .offered_load(load)
                            .schedule(MeasurementSchedule::quick())
                            .seed(42)
                            .run()
                            .expect("experiment runs");
                        peak = peak.max(r.achieved_utilization);
                    }
                    peaks.push(peak);
                }
                println!(
                    "{:>6} {:>6} {:>12} | {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                    depth,
                    limit,
                    format!("{selection:?}"),
                    peaks[0],
                    peaks[1],
                    peaks[2],
                    peaks[3]
                );
            }
        }
    }
}

//! Ablation: how the adaptive candidate-selection policy (least-congested
//! vs first-free vs random) moves the fully adaptive algorithms.
//!
//! The paper assumes nbc "is likely to choose the least congested" first-hop
//! channel; this quantifies how much that choice matters.

use wormsim::{AlgorithmKind, Experiment, SelectionPolicy, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let loads = [0.3, 0.5, 0.7, 0.9];
    let algorithms = [
        AlgorithmKind::NegativeHopBonusCards,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::TwoPowerN,
    ];
    let policies = [
        SelectionPolicy::MostCredits,
        SelectionPolicy::FirstFree,
        SelectionPolicy::Random,
    ];
    println!("Peak achieved utilization by selection policy (uniform, {topo}):");
    println!(
        "{:>8} {:>13} {:>13} {:>13}",
        "algo", "MostCredits", "FirstFree", "Random"
    );
    for algo in algorithms {
        print!("{:>8}", algo.name());
        for policy in policies {
            let mut peak = 0.0f64;
            for &load in &loads {
                let r = Experiment::new(topo.clone(), algo)
                    .traffic(TrafficConfig::Uniform)
                    .selection(policy)
                    .offered_load(load)
                    .schedule(options.schedule)
                    .seed(options.seed)
                    .run()
                    .expect("experiment runs");
                peak = peak.max(r.achieved_utilization);
            }
            print!("{peak:>13.3}");
        }
        println!();
    }
}

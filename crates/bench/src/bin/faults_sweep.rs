//! Latency/throughput vs fault count: the adaptivity payoff under damage.
//!
//! Sweeps the number of randomly killed links from 0 to `--max-faults`,
//! running every selected algorithm at a fixed offered load against each
//! fault plan. E-cube has exactly one path per pair, so a single dead link
//! on it strands traffic; the adaptive algorithms route around the damage.
//! The sweep degrades gracefully point-by-point: a point that deadlocks,
//! livelocks, exhausts its budget, or disconnects the network records its
//! [`RunOutcome`] and the sweep continues.
//!
//! ```text
//! faults_sweep [--topo torus:8x8] [--algos all|ecube,phop,...] [--load L]
//!              [--max-faults N] [--quick|--saturation] [--seed N]
//!              [--threads N] [--cycle-budget N] [--wall-budget SECS]
//!              [--out DIR] [--observe DIR] [--trace-out DIR]
//!              [--sample-every N] [--metrics]
//!              [--resume JOURNAL] [--retries N] [--smoke]
//! ```
//!
//! `--observe DIR` writes per-run manifests and sample streams under
//! `DIR`, with the fault count folded into each run id
//! (`faults<N>-<algo>-...`); `--metrics` adds deep telemetry
//! (`metrics.json`, `heatmap.csv`, and — for deadlocked or livelocked
//! points — a `waitfor.jsonl` wait-for forensic snapshot).
//!
//! `--smoke` is the CI preset: a small torus, two algorithms, three fault
//! counts, and a tight cycle budget so the whole sweep finishes in seconds.
//!
//! Completed points are journaled to `DIR/faults_sweep.journal.jsonl`;
//! after a crash or Ctrl-C, `--resume <journal>` continues where the sweep
//! stopped and reproduces the uninterrupted CSV byte for byte.

use wormsim::faults::{FaultPlan, FaultRegion};
use wormsim::topology::Topology;
use wormsim::{
    AlgorithmKind, Experiment, ExperimentError, MeasurementSchedule, ObserveConfig, RunOutcome,
    RunResult,
};
use wormsim_bench::{
    cli, install_sigint_handler, resume_command, BackendChoice, SweepOptions, SweepPlan,
};

const USAGE: &str = "usage: faults_sweep [--topo T] [--algos A] [--load L] [--max-faults N] \
                     [--quick|--saturation] [--seed N] [--threads N] [--cycle-budget N] \
                     [--wall-budget SECS] [--out DIR] [--observe DIR] [--trace-out DIR] \
                     [--sample-every N] [--metrics] [--resume JOURNAL] [--salvage] [--retries N] \
                     [--point-deadline SECS] [--hedge-after SECS] [--quarantine-after N] \
                     [--backend local|remote] [--worker HOST:PORT] [--smoke]";

/// Everything one parsed command line asks for.
struct SweepSpec {
    topology: Topology,
    algorithms: Vec<AlgorithmKind>,
    load: f64,
    max_faults: usize,
    schedule: MeasurementSchedule,
    seed: u64,
    threads: usize,
    cycle_budget: Option<u64>,
    wall_budget_secs: Option<f64>,
    out_dir: String,
    observe_dir: Option<String>,
    trace_dir: Option<String>,
    sample_every: u64,
    metrics: bool,
    resume: Option<String>,
    salvage: bool,
    retries: u32,
    fail_after_points: Option<usize>,
    point_deadline_secs: Option<f64>,
    hedge_after_secs: Option<f64>,
    quarantine_after: Option<u64>,
    backend: BackendChoice,
}

enum Invocation {
    Run(Box<SweepSpec>),
    Help,
}

/// One sweep point: an algorithm against a fault count. `Err` means the
/// configuration itself was rejected (e.g. the plan disconnected every
/// node); runtime failures land in `Ok(result)` with a non-`Completed`
/// outcome.
struct Point {
    algorithm: String,
    fault_count: usize,
    result: Result<RunResult, ExperimentError>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Invocation, String> {
    let mut spec = SweepSpec {
        topology: Topology::torus(&[8, 8]),
        algorithms: cli::parse_algorithms("all")?,
        load: 0.2,
        max_faults: 8,
        schedule: MeasurementSchedule::default(),
        seed: 1993,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cycle_budget: None,
        wall_budget_secs: None,
        out_dir: "results".to_owned(),
        observe_dir: None,
        trace_dir: None,
        sample_every: 0,
        metrics: false,
        resume: None,
        salvage: false,
        retries: 1,
        fail_after_points: None,
        point_deadline_secs: None,
        hedge_after_secs: None,
        quarantine_after: None,
        backend: BackendChoice::Local,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--topo" => spec.topology = cli::parse_topology(&value("--topo")?)?,
            "--algos" => spec.algorithms = cli::parse_algorithms(&value("--algos")?)?,
            "--load" => {
                let loads = cli::parse_loads(&value("--load")?)?;
                if loads.len() != 1 {
                    return Err(
                        "--load takes a single load; the sweep axis is fault count".to_owned()
                    );
                }
                spec.load = loads[0];
            }
            "--max-faults" => {
                spec.max_faults = cli::parse_cycle_budget(&value("--max-faults")?)? as usize;
            }
            "--quick" => spec.schedule = MeasurementSchedule::quick(),
            "--saturation" => spec.schedule = MeasurementSchedule::saturation(),
            "--seed" => spec.seed = cli::parse_seed(&value("--seed")?)?,
            "--threads" => spec.threads = cli::parse_threads(&value("--threads")?)?,
            "--cycle-budget" => {
                spec.cycle_budget = Some(cli::parse_cycle_budget(&value("--cycle-budget")?)?);
            }
            "--wall-budget" => {
                spec.wall_budget_secs = Some(cli::parse_wall_budget(&value("--wall-budget")?)?);
            }
            "--out" => spec.out_dir = value("--out")?,
            "--observe" => spec.observe_dir = Some(value("--observe")?),
            "--trace-out" => spec.trace_dir = Some(value("--trace-out")?),
            "--sample-every" => {
                spec.sample_every = cli::parse_sample_every(&value("--sample-every")?)?;
            }
            "--metrics" => spec.metrics = true,
            "--resume" => spec.resume = Some(value("--resume")?),
            "--salvage" => spec.salvage = true,
            "--retries" => spec.retries = cli::parse_retries(&value("--retries")?)?,
            "--point-deadline" => {
                spec.point_deadline_secs = Some(cli::parse_supervise_secs(
                    "--point-deadline",
                    &value("--point-deadline")?,
                )?);
            }
            "--hedge-after" => {
                spec.hedge_after_secs = Some(cli::parse_supervise_secs(
                    "--hedge-after",
                    &value("--hedge-after")?,
                )?);
            }
            "--quarantine-after" => {
                spec.quarantine_after =
                    Some(cli::parse_quarantine_after(&value("--quarantine-after")?)?);
            }
            "--fail-after-points" => {
                spec.fail_after_points =
                    Some(cli::parse_fail_after(&value("--fail-after-points")?)?);
            }
            "--backend" => match value("--backend")?.as_str() {
                "local" => match &spec.backend {
                    BackendChoice::Remote { workers } if !workers.is_empty() => {
                        return Err("--backend local conflicts with --worker".to_owned());
                    }
                    _ => spec.backend = BackendChoice::Local,
                },
                "remote" => {
                    if spec.backend == BackendChoice::Local {
                        spec.backend = BackendChoice::Remote {
                            workers: Vec::new(),
                        };
                    }
                }
                other => {
                    return Err(format!(
                        "--backend must be 'local' or 'remote', got '{other}'"
                    ))
                }
            },
            "--worker" => {
                let addr = value("--worker")?;
                match &mut spec.backend {
                    BackendChoice::Remote { workers } => workers.push(addr),
                    BackendChoice::Local => {
                        spec.backend = BackendChoice::Remote {
                            workers: vec![addr],
                        }
                    }
                }
            }
            "--smoke" => {
                spec.topology = Topology::torus(&[6, 6]);
                spec.algorithms = cli::parse_algorithms("ecube,phop")?;
                spec.max_faults = 2;
                spec.schedule = MeasurementSchedule::quick();
                spec.cycle_budget = Some(30_000);
            }
            "--help" | "-h" => return Ok(Invocation::Help),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if spec.metrics && spec.observe_dir.is_none() {
        return Err("--metrics needs --observe DIR (metrics export to the observe dir)".to_owned());
    }
    if spec.salvage && spec.resume.is_none() {
        return Err(
            "--salvage needs --resume JOURNAL (it relaxes how that journal is loaded)".to_owned(),
        );
    }
    harness_options(&spec).validate_backend()?;
    Ok(Invocation::Run(Box::new(spec)))
}

/// The fault plan for one sweep point: `count` seeded-random link kills.
/// Each count perturbs the seed so plans differ, but the whole curve is
/// reproducible from the base seed alone. Zero faults means *no* plan at
/// all, keeping that point on the fault-free fast path as the baseline.
fn plan_for(spec: &SweepSpec, count: usize) -> Option<FaultPlan> {
    (count > 0).then(|| {
        FaultPlan::random_links(
            &spec.topology,
            count,
            spec.seed ^ (count as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            &FaultRegion::Anywhere,
        )
    })
}

/// Maps the spec's robustness knobs onto the shared harness options so
/// [`wormsim_bench::run_sweep`] can drive the sweep.
fn harness_options(spec: &SweepSpec) -> SweepOptions {
    SweepOptions {
        schedule: spec.schedule,
        seed: spec.seed,
        threads: spec.threads,
        out_dir: spec.out_dir.clone(),
        observe_dir: spec.observe_dir.clone(),
        trace_dir: spec.trace_dir.clone(),
        sample_every: spec.sample_every,
        metrics: spec.metrics,
        cycle_budget: spec.cycle_budget,
        wall_budget_secs: spec.wall_budget_secs,
        resume: spec.resume.clone(),
        salvage: spec.salvage,
        retries: spec.retries,
        fail_after_points: spec.fail_after_points,
        point_deadline_secs: spec.point_deadline_secs,
        hedge_after_secs: spec.hedge_after_secs,
        quarantine_after: spec
            .quarantine_after
            .unwrap_or(SweepOptions::default().quarantine_after),
        backend: spec.backend.clone(),
        ..SweepOptions::default()
    }
}

/// Runs every `(fault count, algorithm)` point, fault-count-major so the
/// printed table reads top to bottom as damage accumulates. Points run
/// through the shared journaled orchestrator — panic-isolated, retried on
/// transients, resumable — and never cancel each other: a bad point
/// records its error and the sweep continues. Returns the completed
/// points plus whether shutdown interrupted the sweep before the end.
fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> (Vec<Point>, bool) {
    let mut labels = Vec::new();
    let mut experiments = Vec::new();
    for count in 0..=spec.max_faults {
        for &algorithm in &spec.algorithms {
            let mut e = Experiment::new(spec.topology.clone(), algorithm)
                .offered_load(spec.load)
                .schedule(spec.schedule)
                .seed(spec.seed)
                .cycle_budget(spec.cycle_budget)
                .wall_budget_secs(spec.wall_budget_secs)
                .cancel_token(options.shutdown.clone());
            if let Some(plan) = plan_for(spec, count) {
                e = e.faults(plan);
            }
            if spec.observe_dir.is_some() || spec.trace_dir.is_some() {
                // The fault count rides in the prefix: every (count, algo)
                // point keeps a distinct run id and output file set.
                e = e.observe(ObserveConfig {
                    out_dir: spec.observe_dir.as_deref().map(Into::into),
                    trace_dir: spec.trace_dir.as_deref().map(Into::into),
                    sample_every: spec.sample_every,
                    prefix: format!("faults{count}"),
                    metrics: spec.metrics,
                });
            }
            labels.push((count, algorithm.name().to_owned()));
            experiments.push(e);
        }
    }
    let plan = SweepPlan::new(experiments).journal_name("faults_sweep.journal.jsonl");
    let run = wormsim_bench::run_sweep(&plan, options).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let interrupted = run.interrupted;
    if interrupted {
        eprintln!(
            "interrupted: {}/{} points completed and journaled",
            run.outcomes.iter().filter(|o| o.is_some()).count(),
            run.outcomes.len()
        );
        eprintln!("resume with: {}", resume_command(&run.journal));
    }
    let points = labels
        .into_iter()
        .zip(run.outcomes)
        .filter_map(|((fault_count, algorithm), outcome)| {
            outcome.map(|result| Point {
                algorithm,
                fault_count,
                result,
            })
        })
        .collect();
    (points, interrupted)
}

/// One table cell: mean latency when the run produced statistics, the
/// outcome tag in upper case when it did not.
fn cell(point: &Point) -> String {
    match &point.result {
        Ok(r) if r.outcome.has_statistics() => format!("{:.1}", r.latency.mean()),
        Ok(r) => r.outcome.tag().to_uppercase(),
        Err(_) => "INVALID".to_owned(),
    }
}

fn print_table(spec: &SweepSpec, points: &[Point]) {
    println!(
        "== Latency vs fault count on {} at load {:.2} (seed {}) ==",
        spec.topology, spec.load, spec.seed
    );
    println!("\nMean latency (cycles); non-numeric cells name the run outcome:");
    print!("{:>7}", "faults");
    for algo in &spec.algorithms {
        print!("{:>12}", algo.name());
    }
    println!();
    for count in 0..=spec.max_faults {
        print!("{count:>7}");
        for algo in &spec.algorithms {
            let point = points
                .iter()
                .find(|p| p.fault_count == count && p.algorithm == algo.name())
                .expect("every point was run");
            print!("{:>12}", cell(point));
        }
        println!();
    }
    println!("\nDelivered messages per node per cycle:");
    print!("{:>7}", "faults");
    for algo in &spec.algorithms {
        print!("{:>12}", algo.name());
    }
    println!();
    for count in 0..=spec.max_faults {
        print!("{count:>7}");
        for algo in &spec.algorithms {
            let point = points
                .iter()
                .find(|p| p.fault_count == count && p.algorithm == algo.name())
                .expect("every point was run");
            match &point.result {
                Ok(r) => print!("{:>12.3}", r.delivery_rate),
                Err(_) => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

fn write_csv(spec: &SweepSpec, points: &[Point], name: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(&spec.out_dir)?;
    let path = format!("{}/{name}.csv", spec.out_dir);
    let mut out = String::from(
        "algorithm,fault_count,offered_load,outcome,latency_mean,achieved_utilization,\
         delivery_rate,messages_measured,cycles_simulated,dropped_events\n",
    );
    for p in points {
        match &p.result {
            Ok(r) => {
                out.push_str(&format!(
                    "{},{},{},{},{:.4},{:.6},{:.6},{},{},{}\n",
                    p.algorithm,
                    p.fault_count,
                    spec.load,
                    r.outcome,
                    r.latency.mean(),
                    r.achieved_utilization,
                    r.delivery_rate,
                    r.messages_measured,
                    r.cycles_simulated,
                    r.dropped_events,
                ));
            }
            Err(e) => {
                eprintln!(
                    "point {} @ {} faults invalid: {e}",
                    p.algorithm, p.fault_count
                );
            }
        }
    }
    wormsim::observe::atomic_write(std::path::Path::new(&path), &out)?;
    Ok(path)
}

fn main() {
    let mut spec = match parse_args(std::env::args().skip(1)) {
        Ok(Invocation::Run(spec)) => *spec,
        Ok(Invocation::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    spec.algorithms
        .retain(|kind| match kind.build(&spec.topology) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("skipping {kind}: {e}");
                false
            }
        });
    assert!(
        !spec.algorithms.is_empty(),
        "no runnable algorithms selected"
    );
    eprintln!(
        "running {} points ({} fault counts x {} algorithms) on {} threads...",
        (spec.max_faults + 1) * spec.algorithms.len(),
        spec.max_faults + 1,
        spec.algorithms.len(),
        spec.threads
    );
    let options = harness_options(&spec);
    install_sigint_handler(&options.shutdown);
    let (points, interrupted) = run_sweep(&spec, &options);
    if interrupted {
        // Partial results are still worth keeping — flush them under a
        // name that cannot be mistaken for the full sweep.
        match write_csv(&spec, &points, "faults_sweep.partial") {
            Ok(path) => eprintln!("wrote partial results to {path}"),
            Err(e) => eprintln!("could not write partial CSV: {e}"),
        }
        std::process::exit(130);
    }
    print_table(&spec, &points);
    // A smoke run must fail loudly if the graceful-degradation contract
    // breaks: every point must produce *some* outcome, and the zero-fault
    // baseline must actually complete.
    for p in &points {
        if p.fault_count == 0 {
            match &p.result {
                Ok(r) => assert!(
                    r.outcome == RunOutcome::Completed || r.outcome == RunOutcome::Saturated,
                    "zero-fault baseline for {} ended {}",
                    p.algorithm,
                    r.outcome
                ),
                Err(e) => panic!("zero-fault baseline for {} invalid: {e}", p.algorithm),
            }
        }
    }
    match write_csv(&spec, &points, "faults_sweep") {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn well_formed_args_parse() {
        let Ok(Invocation::Run(spec)) = parse(&[
            "--topo",
            "mesh:8x8",
            "--load",
            "0.3",
            "--max-faults",
            "4",
            "--seed",
            "7",
            "--cycle-budget",
            "50000",
            "--wall-budget",
            "2.5",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.topology, Topology::mesh(&[8, 8]));
        assert!((spec.load - 0.3).abs() < 1e-12);
        assert_eq!(spec.max_faults, 4);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.cycle_budget, Some(50_000));
        assert_eq!(spec.wall_budget_secs, Some(2.5));
    }

    #[test]
    fn smoke_preset_is_small_and_budgeted() {
        let Ok(Invocation::Run(spec)) = parse(&["--smoke"]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.topology, Topology::torus(&[6, 6]));
        assert_eq!(spec.algorithms.len(), 2);
        assert_eq!(spec.max_faults, 2);
        assert!(spec.cycle_budget.is_some());
    }

    #[test]
    fn load_must_be_single_valued() {
        assert!(parse(&["--load", "0.1,0.5"]).is_err());
        assert!(parse(&["--load", "0"]).is_err());
    }

    #[test]
    fn malformed_budgets_are_usage_errors() {
        assert!(parse(&["--cycle-budget", "0"]).is_err());
        assert!(parse(&["--wall-budget", "-3"]).is_err());
        assert!(parse(&["--max-faults", "lots"]).is_err());
        assert!(parse(&["--hyperdrive"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(parse(&["--help"]), Ok(Invocation::Help)));
    }

    #[test]
    fn robustness_flags_parse() {
        let Ok(Invocation::Run(spec)) =
            parse(&["--resume", "r/faults_sweep.journal.jsonl", "--retries", "2"])
        else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.resume.as_deref(), Some("r/faults_sweep.journal.jsonl"));
        assert_eq!(spec.retries, 2);
        assert!(parse(&["--retries", "2.5"]).is_err());
        assert!(parse(&["--fail-after-points", "0"]).is_err());
        let options = harness_options(&spec);
        assert_eq!(options.resume, spec.resume);
        assert_eq!(options.retries, 2);
        assert!(!options.shutdown.is_cancelled());
    }

    #[test]
    fn supervision_flags_parse() {
        let Ok(Invocation::Run(spec)) = parse(&[
            "--point-deadline",
            "20",
            "--hedge-after",
            "4",
            "--quarantine-after",
            "1",
            "--resume",
            "r/faults_sweep.journal.jsonl",
            "--salvage",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.point_deadline_secs, Some(20.0));
        assert_eq!(spec.hedge_after_secs, Some(4.0));
        assert_eq!(spec.quarantine_after, Some(1));
        assert!(spec.salvage);
        let options = harness_options(&spec);
        assert_eq!(options.point_deadline_secs, Some(20.0));
        assert_eq!(options.hedge_after_secs, Some(4.0));
        assert_eq!(options.quarantine_after, 1);
        assert!(options.salvage);
        // Unset quarantine count falls back to the harness default.
        let Ok(Invocation::Run(plain)) = parse(&[]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(
            harness_options(&plain).quarantine_after,
            SweepOptions::default().quarantine_after
        );
        assert!(parse(&["--point-deadline", "0"]).is_err());
        assert!(parse(&["--salvage"]).is_err(), "--salvage needs --resume");
    }

    #[test]
    fn observability_flags_parse() {
        let Ok(Invocation::Run(spec)) = parse(&[
            "--observe",
            "obs",
            "--trace-out",
            "tr",
            "--sample-every",
            "250",
            "--metrics",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.observe_dir.as_deref(), Some("obs"));
        assert_eq!(spec.trace_dir.as_deref(), Some("tr"));
        assert_eq!(spec.sample_every, 250);
        assert!(spec.metrics);
        let options = harness_options(&spec);
        assert_eq!(options.observe_dir, spec.observe_dir);
        assert!(options.metrics);
        assert!(parse(&["--metrics"]).is_err(), "--metrics needs --observe");
        assert!(parse(&["--sample-every", "0"]).is_err());
    }

    #[test]
    fn plans_differ_by_count_and_reproduce_by_seed() {
        let Ok(Invocation::Run(spec)) = parse(&[]) else {
            panic!("expected a run invocation");
        };
        assert!(plan_for(&spec, 0).is_none(), "baseline stays fault-free");
        let a = plan_for(&spec, 3).expect("plan exists");
        let b = plan_for(&spec, 3).expect("plan exists");
        assert_eq!(a.faults(), b.faults(), "same seed, same plan");
        assert_eq!(a.faults().len(), 3);
    }
}

//! Extension: the same algorithms under all three switching techniques
//! the paper discusses — wormhole, virtual cut-through (Section 3.4), and
//! the store-and-forward ancestry of the hop schemes (Gopal 1985).

use wormsim::{AlgorithmKind, Experiment, Switching, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let modes = [
        ("wormhole", Switching::wormhole()),
        ("cut-through", Switching::VirtualCutThrough),
        ("store&fwd", Switching::StoreAndForward),
    ];
    let algorithms = [
        AlgorithmKind::NegativeHopBonusCards,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::TwoPowerN,
        AlgorithmKind::Ecube,
    ];
    println!("Peak achieved utilization / latency@0.2 by switching technique:\n");
    print!("{:>7}", "algo");
    for (name, _) in modes {
        print!("{name:>22}");
    }
    println!();
    for algorithm in algorithms {
        print!("{:>7}", algorithm.name());
        for (_, switching) in modes {
            let base = Experiment::new(topo.clone(), algorithm)
                .traffic(TrafficConfig::Uniform)
                .switching(switching)
                .schedule(options.schedule)
                .seed(options.seed);
            let low = base.clone().offered_load(0.2).run().expect("low point");
            let mut peak = 0.0f64;
            for load in [0.4, 0.6, 0.8, 1.0] {
                let r = base.clone().offered_load(load).run().expect("sweep point");
                peak = peak.max(r.achieved_utilization);
            }
            print!("{:>11.3} {:>7.0} cy", peak, low.latency.mean());
        }
        println!();
    }
    println!(
        "\nThe paper's Section 3.4 story in one table: adaptivity-without-\n\
         priority (2pn) is only penalized under wormhole switching, where\n\
         channels are held while blocked; with message buffering (VCT/SAF)\n\
         it pulls close to the hop schemes. Store-and-forward pays ~d x m_l\n\
         latency at low load."
    );
}

//! General-purpose sweep CLI: compare any set of algorithms on any
//! topology/traffic/switching combination, with the same reporting
//! pipeline the figure regenerators use.
//!
//! ```text
//! sweep [--topo torus:16x16] [--algos all|phop,ecube,...]
//!       [--traffic uniform|hotspot:15,15@0.04|local:3|transpose|bitrev|complement]
//!       [--loads 0.1:1.0:0.1 | 0.1,0.5,0.9] [--switching wh|wh:4|vct|saf]
//!       [--quick|--saturation] [--seed N] [--threads N] [--out DIR]
//! ```
//!
//! Examples:
//!
//! ```text
//! sweep --topo mesh:16x16 --algos ecube,2pn --loads 0.1:0.6:0.1 --quick
//! sweep --traffic hotspot:8,8@0.1 --algos extended --switching vct
//! ```

use wormsim::presets::FigureSpec;
use wormsim::MeasurementSchedule;
use wormsim_bench::{cli, print_figure, run_figure, write_csv, HarnessOptions};

fn main() {
    let mut spec = FigureSpec {
        id: "sweep".to_owned(),
        title: "Custom sweep".to_owned(),
        topology: wormsim::presets::paper_topology(),
        traffic: wormsim::TrafficConfig::Uniform,
        switching: wormsim::Switching::wormhole(),
        loads: wormsim::presets::paper_loads(),
        algorithms: wormsim::presets::paper_algorithms().to_vec(),
    };
    let mut options = HarnessOptions::default();

    let mut args = std::env::args().skip(1);
    let usage = "usage: sweep [--topo T] [--algos A] [--traffic W] [--loads L] \
                 [--switching S] [--quick|--saturation] [--seed N] [--threads N] [--out DIR]";
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value\n{usage}"))
        };
        match arg.as_str() {
            "--topo" => {
                spec.topology = cli::parse_topology(&value("--topo"))
                    .unwrap_or_else(|e| panic!("{e}\n{usage}"));
            }
            "--algos" => {
                spec.algorithms = cli::parse_algorithms(&value("--algos"))
                    .unwrap_or_else(|e| panic!("{e}\n{usage}"));
            }
            "--traffic" => {
                spec.traffic = cli::parse_traffic(&value("--traffic"))
                    .unwrap_or_else(|e| panic!("{e}\n{usage}"));
            }
            "--loads" => {
                spec.loads = cli::parse_loads(&value("--loads"))
                    .unwrap_or_else(|e| panic!("{e}\n{usage}"));
            }
            "--switching" => {
                spec.switching = cli::parse_switching(&value("--switching"))
                    .unwrap_or_else(|e| panic!("{e}\n{usage}"));
            }
            "--quick" => options.schedule = MeasurementSchedule::quick(),
            "--saturation" => options.schedule = MeasurementSchedule::saturation(),
            "--seed" => {
                options.seed = value("--seed").parse().expect("--seed needs an integer");
            }
            "--threads" => {
                options.threads = value("--threads").parse().expect("--threads needs an integer");
            }
            "--out" => options.out_dir = value("--out"),
            "--help" | "-h" => {
                println!("{usage}");
                return;
            }
            other => panic!("unknown argument '{other}'\n{usage}"),
        }
    }

    // Drop algorithms the chosen topology rejects (e.g. nhop on odd tori),
    // reporting what was skipped rather than dying.
    spec.algorithms.retain(|kind| match kind.build(&spec.topology) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping {kind}: {e}");
            false
        }
    });
    assert!(!spec.algorithms.is_empty(), "no runnable algorithms selected");

    spec.title = format!(
        "{} on {} under {} ({:?})",
        spec.algorithms
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join("/"),
        spec.topology,
        spec.traffic,
        spec.switching,
    );

    eprintln!(
        "running {} points on {} threads...",
        spec.algorithms.len() * spec.loads.len(),
        options.threads
    );
    let results = run_figure(&spec, &options);
    print_figure(&spec, &results);
    match write_csv(&spec.id, &results, &options.out_dir) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

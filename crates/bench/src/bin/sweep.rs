//! General-purpose sweep CLI: compare any set of algorithms on any
//! topology/traffic/switching combination, with the same reporting
//! pipeline the figure regenerators use.
//!
//! ```text
//! sweep [--topo torus:16x16] [--algos all|phop,ecube,...]
//!       [--traffic uniform|hotspot:15,15@0.04|local:3|transpose|bitrev|complement]
//!       [--loads 0.1:1.0:0.1 | 0.1,0.5,0.9] [--switching wh|wh:4|vct|saf]
//!       [--quick|--saturation] [--seed N] [--threads N] [--out DIR]
//!       [--observe DIR] [--trace-out DIR] [--sample-every N]
//!       [--cycle-budget N] [--wall-budget SECS]
//! ```
//!
//! With `--observe DIR`, every run writes a `RunManifest` JSON and a JSONL
//! time-series sample stream under `DIR`; `--trace-out DIR` additionally
//! streams per-message trace events; `--sample-every N` sets the sampling
//! stride in cycles.
//!
//! Every sweep journals completed points to `DIR/sweep.journal.jsonl`
//! (atomic JSONL, one record per point). After a crash or Ctrl-C, rerun
//! with `--resume <journal>` to skip the journaled points — the merged
//! CSV is byte-identical to an uninterrupted run. `--retries N` bounds
//! retry attempts for transient outcomes (budget trips, harness panics);
//! `--resume --salvage` additionally recovers every valid record from a
//! corrupted journal, quarantining bad lines to a `.corrupt.jsonl` sidecar.
//!
//! With the remote backend, `--point-deadline SECS` writes off workers
//! whose heartbeat freezes mid-point, `--hedge-after SECS` re-dispatches
//! stragglers to idle capacity (first commit wins, duplicates discarded),
//! and `--quarantine-after N` gives up on a point after N failed
//! dispatches, parking it in a `.quarantine.jsonl` sidecar and exiting
//! with code 4.
//!
//! Examples:
//!
//! ```text
//! sweep --topo mesh:16x16 --algos ecube,2pn --loads 0.1:0.6:0.1 --quick
//! sweep --traffic hotspot:8,8@0.1 --algos extended --switching vct
//! ```

use wormsim::presets::FigureSpec;
use wormsim::MeasurementSchedule;
use wormsim_bench::{cli, print_figure, run_figure_or_exit, write_csv, SweepOptions};

const USAGE: &str = "usage: sweep [--topo T] [--algos A] [--traffic W] [--loads L] \
                     [--switching S] [--quick|--saturation] [--seed N] [--threads N] [--out DIR] \
                     [--observe DIR] [--trace-out DIR] [--sample-every N] [--metrics] \
                     [--cycle-budget N] [--wall-budget SECS] \
                     [--resume JOURNAL] [--salvage] [--retries N] \
                     [--point-deadline SECS] [--hedge-after SECS] [--quarantine-after N] \
                     [--backend local|remote] [--worker HOST:PORT]";

/// What one parsed command line asks for.
enum Invocation {
    Run(Box<FigureSpec>, Box<SweepOptions>),
    Help,
}

/// Parses the sweep command line (program name already stripped).
fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Invocation, String> {
    let mut spec = FigureSpec {
        id: "sweep".to_owned(),
        title: "Custom sweep".to_owned(),
        topology: wormsim::presets::paper_topology(),
        traffic: wormsim::TrafficConfig::Uniform,
        switching: wormsim::Switching::wormhole(),
        loads: wormsim::presets::paper_loads(),
        algorithms: wormsim::presets::paper_algorithms().to_vec(),
    };
    let mut options = SweepOptions::default();

    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--topo" => spec.topology = cli::parse_topology(&value("--topo")?)?,
            "--algos" => spec.algorithms = cli::parse_algorithms(&value("--algos")?)?,
            "--traffic" => spec.traffic = cli::parse_traffic(&value("--traffic")?)?,
            "--loads" => spec.loads = cli::parse_loads(&value("--loads")?)?,
            "--switching" => spec.switching = cli::parse_switching(&value("--switching")?)?,
            "--quick" => options.schedule = MeasurementSchedule::quick(),
            "--saturation" => options.schedule = MeasurementSchedule::saturation(),
            "--seed" => options.seed = cli::parse_seed(&value("--seed")?)?,
            "--threads" => options.threads = cli::parse_threads(&value("--threads")?)?,
            "--out" => options.out_dir = value("--out")?,
            "--observe" => options.observe_dir = Some(value("--observe")?),
            "--trace-out" => options.trace_dir = Some(value("--trace-out")?),
            "--sample-every" => {
                options.sample_every = cli::parse_sample_every(&value("--sample-every")?)?;
            }
            "--metrics" => options.metrics = true,
            "--cycle-budget" => {
                options.cycle_budget = Some(cli::parse_cycle_budget(&value("--cycle-budget")?)?);
            }
            "--wall-budget" => {
                options.wall_budget_secs = Some(cli::parse_wall_budget(&value("--wall-budget")?)?);
            }
            "--resume" => options.resume = Some(value("--resume")?),
            "--salvage" => options.salvage = true,
            "--retries" => options.retries = cli::parse_retries(&value("--retries")?)?,
            "--point-deadline" => {
                options.point_deadline_secs = Some(cli::parse_supervise_secs(
                    "--point-deadline",
                    &value("--point-deadline")?,
                )?);
            }
            "--hedge-after" => {
                options.hedge_after_secs = Some(cli::parse_supervise_secs(
                    "--hedge-after",
                    &value("--hedge-after")?,
                )?);
            }
            "--quarantine-after" => {
                options.quarantine_after =
                    cli::parse_quarantine_after(&value("--quarantine-after")?)?;
            }
            "--fail-after-points" => {
                options.fail_after_points =
                    Some(cli::parse_fail_after(&value("--fail-after-points")?)?);
            }
            "--backend" => options.set_backend(&value("--backend")?)?,
            "--worker" => options.add_worker(value("--worker")?),
            "--help" | "-h" => return Ok(Invocation::Help),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.metrics && options.observe_dir.is_none() {
        return Err("--metrics needs --observe DIR (metrics export to the observe dir)".into());
    }
    if options.salvage && options.resume.is_none() {
        return Err(
            "--salvage needs --resume JOURNAL (it relaxes how that journal is loaded)".into(),
        );
    }
    options.validate_backend()?;
    Ok(Invocation::Run(Box::new(spec), Box::new(options)))
}

fn main() {
    let (mut spec, options) = match parse_args(std::env::args().skip(1)) {
        Ok(Invocation::Run(spec, options)) => (*spec, *options),
        Ok(Invocation::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Drop algorithms the chosen topology rejects (e.g. nhop on odd tori),
    // reporting what was skipped rather than dying.
    spec.algorithms
        .retain(|kind| match kind.build(&spec.topology) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("skipping {kind}: {e}");
                false
            }
        });
    assert!(
        !spec.algorithms.is_empty(),
        "no runnable algorithms selected"
    );

    spec.title = format!(
        "{} on {} under {} ({:?})",
        spec.algorithms
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join("/"),
        spec.topology,
        spec.traffic,
        spec.switching,
    );

    let points = spec.algorithms.len() * spec.loads.len();
    match &options.backend {
        wormsim_bench::BackendChoice::Local => {
            eprintln!("running {points} points on {} threads...", options.threads);
        }
        wormsim_bench::BackendChoice::Remote { workers } => {
            eprintln!(
                "running {points} points on {} remote worker(s)...",
                workers.len()
            );
        }
    }
    let results = run_figure_or_exit(&spec, &options);
    print_figure(&spec, &results);
    match write_csv(&spec.id, &results, &options.out_dir) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn well_formed_args_parse() {
        let Ok(Invocation::Run(spec, options)) =
            parse(&["--topo", "mesh:8x8", "--seed", "11", "--threads", "2"])
        else {
            panic!("expected a run invocation");
        };
        assert_eq!(spec.topology, wormsim::topology::Topology::mesh(&[8, 8]));
        assert_eq!(options.seed, 11);
        assert_eq!(options.threads, 2);
    }

    #[test]
    fn observability_flags_parse() {
        let Ok(Invocation::Run(_, options)) = parse(&[
            "--observe",
            "obs",
            "--trace-out",
            "tr",
            "--sample-every",
            "500",
            "--metrics",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(options.observe_dir.as_deref(), Some("obs"));
        assert_eq!(options.trace_dir.as_deref(), Some("tr"));
        assert_eq!(options.sample_every, 500);
        assert!(options.metrics);
        assert!(parse(&["--metrics"]).is_err(), "--metrics needs --observe");
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--sample-every", "0"]).is_err());
    }

    #[test]
    fn budget_flags_parse() {
        let Ok(Invocation::Run(_, options)) =
            parse(&["--cycle-budget", "5000", "--wall-budget", "1.5"])
        else {
            panic!("expected a run invocation");
        };
        assert_eq!(options.cycle_budget, Some(5_000));
        assert_eq!(options.wall_budget_secs, Some(1.5));
        assert!(parse(&["--cycle-budget", "0"]).is_err());
        assert!(parse(&["--wall-budget", "-2"]).is_err());
    }

    #[test]
    fn malformed_integers_are_usage_errors() {
        assert!(parse(&["--threads", "two"]).is_err());
        assert!(parse(&["--threads", "1.0"]).is_err());
        assert!(parse(&["--seed", "12three"]).is_err());
        assert!(parse(&["--seed", "-4"]).is_err());
    }

    #[test]
    fn missing_values_and_unknown_flags_are_usage_errors() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--loads"]).is_err());
        assert!(parse(&["--hyperdrive"]).is_err());
    }

    #[test]
    fn robustness_flags_parse() {
        let Ok(Invocation::Run(_, options)) = parse(&[
            "--resume",
            "results/sweep.journal.jsonl",
            "--retries",
            "0",
            "--fail-after-points",
            "3",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(
            options.resume.as_deref(),
            Some("results/sweep.journal.jsonl")
        );
        assert_eq!(options.retries, 0);
        assert_eq!(options.fail_after_points, Some(3));
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--retries", "-1"]).is_err());
        assert!(parse(&["--fail-after-points", "0"]).is_err());
    }

    #[test]
    fn supervision_flags_parse() {
        let Ok(Invocation::Run(_, options)) = parse(&[
            "--point-deadline",
            "30",
            "--hedge-after",
            "5.5",
            "--quarantine-after",
            "2",
            "--resume",
            "results/sweep.journal.jsonl",
            "--salvage",
        ]) else {
            panic!("expected a run invocation");
        };
        assert_eq!(options.point_deadline_secs, Some(30.0));
        assert_eq!(options.hedge_after_secs, Some(5.5));
        assert_eq!(options.quarantine_after, 2);
        assert!(options.salvage);
        assert!(parse(&["--point-deadline", "0"]).is_err());
        assert!(parse(&["--hedge-after", "-1"]).is_err());
        assert!(parse(&["--quarantine-after", "many"]).is_err());
        assert!(parse(&["--salvage"]).is_err(), "--salvage needs --resume");
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(parse(&["--help"]), Ok(Invocation::Help)));
    }
}

//! Adversarial safety verification driver: proves, refutes, and triages
//! deadlock-freedom claims on small networks.
//!
//! For every selected algorithm the driver runs the `wormsim-verify`
//! bounded checker on the healthy network (turning the CDG's
//! cyclic-but-inconclusive verdicts into definitive proofs or concrete
//! witnesses), then plays the fault adversary: every fault plan of up to
//! `--max-faults` dead links (plus optional seeded-random plans) that the
//! simulator's reachability analysis admits is re-checked on the surviving
//! subgraph, and every refuted `fault_tolerance()` claim is minimized to a
//! locally minimal counterexample.
//!
//! ```text
//! verify [--smoke] [--topo torus:4x4] [--algos all|ecube,phop,...]
//!        [--max-faults K] [--node-faults]
//!        [--random-plans N] [--random-faults K]
//!        [--transient-plans N] [--transient-faults K]
//!        [--seed N] [--out DIR]
//! ```
//!
//! `--node-faults` adds whole-node faults to the exhaustive pool;
//! `--transient-plans` adds seeded fail/repair schedules whose masks are
//! checked at every transition epoch (a refutation names the epoch).
//!
//! `--smoke` is the CI preset: the 4x4 torus, the paper's six algorithms,
//! exhaustive single-fault plans. `--out DIR` writes one
//! `verify-<algo>-<k>.counterexample.json` artifact per stored refutation
//! (atomic, replayable: the fault plan plus the full witness).
//!
//! Exit status: 0 when every *guaranteed* claim survived (best-effort
//! refutations are reported as data — a minimal adaptive algorithm that
//! strands under faults is the expected failure mode, not a bug), 1 when
//! the adversary refuted a `Guaranteed` claim, 2 for usage errors.

use std::path::PathBuf;
use wormsim::faults::FaultTarget;
use wormsim::observe::{atomic_write, JsonObject};
use wormsim::routing::{FaultTolerance, RoutingAlgorithm};
use wormsim::topology::Topology;
use wormsim::verify::{
    check, search_faults, AdversaryConfig, AdversaryReport, CheckReport, Refutation, SafetyVerdict,
};
use wormsim::AlgorithmKind;
use wormsim_bench::cli;

const USAGE: &str = "usage: verify [--smoke] [--topo T] [--algos A] [--max-faults K] \
                     [--node-faults] [--random-plans N] [--random-faults K] \
                     [--transient-plans N] [--transient-faults K] [--seed N] [--out DIR]";

struct Spec {
    topology: Topology,
    algorithms: Vec<AlgorithmKind>,
    config: AdversaryConfig,
    out: Option<PathBuf>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Spec, String> {
    let mut topology: Option<Topology> = None;
    let mut algorithms: Option<Vec<AlgorithmKind>> = None;
    let mut config = AdversaryConfig {
        max_faults: 1,
        ..AdversaryConfig::default()
    };
    let mut out = None;
    let mut smoke = false;
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--topo" => topology = Some(cli::parse_topology(&next_value(&mut args, "--topo")?)?),
            "--algos" => {
                algorithms = Some(cli::parse_algorithms(&next_value(&mut args, "--algos")?)?);
            }
            "--max-faults" => {
                config.max_faults = parse_count(&next_value(&mut args, "--max-faults")?)?;
            }
            "--node-faults" => config.node_faults = true,
            "--transient-plans" => {
                config.transient_plans = parse_count(&next_value(&mut args, "--transient-plans")?)?;
            }
            "--transient-faults" => {
                config.transient_faults =
                    parse_count(&next_value(&mut args, "--transient-faults")?)?;
            }
            "--random-plans" => {
                config.random_plans = parse_count(&next_value(&mut args, "--random-plans")?)?;
            }
            "--random-faults" => {
                config.random_faults = parse_count(&next_value(&mut args, "--random-faults")?)?;
            }
            "--seed" => config.seed = cli::parse_seed(&next_value(&mut args, "--seed")?)?,
            "--out" => out = Some(PathBuf::from(next_value(&mut args, "--out")?)),
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    // The CI preset: small enough to be exhaustive, big enough to exhibit
    // every verdict (five proofs, the 2pn refutation, fault strandings).
    if smoke {
        topology.get_or_insert_with(|| Topology::torus(&[4, 4]));
        algorithms.get_or_insert_with(|| AlgorithmKind::all().to_vec());
        config.max_faults = config.max_faults.min(1);
    }
    Ok(Spec {
        topology: topology.unwrap_or_else(|| Topology::torus(&[4, 4])),
        algorithms: algorithms.unwrap_or_else(|| AlgorithmKind::all().to_vec()),
        config,
        out,
    })
}

fn parse_count(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("bad count '{s}' (expected a non-negative integer)"))
}

/// Renders a node as `(x,y,...)` coordinates (dimension 0 fastest).
fn node_label(topo: &Topology, node: wormsim::NodeId) -> String {
    let mut coords = Vec::new();
    let mut rest = node.index();
    for &d in topo.dims() {
        coords.push((rest % u32::from(d)).to_string());
        rest /= u32::from(d);
    }
    format!("({})", coords.join(","))
}

fn plan_label(topo: &Topology, refutation: &Refutation) -> String {
    let links: Vec<String> = refutation
        .plan
        .faults()
        .iter()
        .map(|f| {
            let target = match f.target {
                FaultTarget::Link { node, direction } => {
                    let sign = if direction.sign() == wormsim::topology::Sign::Plus {
                        '+'
                    } else {
                        '-'
                    };
                    format!("{}d{}{}", node_label(topo, node), direction.dim(), sign)
                }
                FaultTarget::Node { node } => format!("node {}", node_label(topo, node)),
            };
            match (f.fail_at, f.repair_at) {
                (0, None) => target,
                (fail, None) => format!("{target}@[{fail}..)"),
                (fail, Some(repair)) => format!("{target}@[{fail}..{repair})"),
            }
        })
        .collect();
    if links.is_empty() {
        "(empty plan — the healthy network)".to_owned()
    } else {
        links.join(", ")
    }
}

/// One counterexample artifact: the minimized plan plus the full witness,
/// enough to replay the refutation without re-running the search.
fn counterexample_json(topo: &Topology, algorithm: &str, refutation: &Refutation) -> String {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("type", "counterexample")
        .field_str("algorithm", algorithm)
        .field_str("topology", &topo.label())
        .field_str("claim", &refutation.claim.to_string())
        .field_u64("original_len", refutation.original_len as u64)
        .field_u64("epoch", refutation.epoch)
        .field_bool("masked_cyclic", refutation.masked_cyclic)
        .field_u64("stranded", refutation.stranded as u64)
        .field_u64("survivors", refutation.survivors as u64);
    let mut plan = String::from("[");
    for (i, fault) in refutation.plan.faults().iter().enumerate() {
        if i > 0 {
            plan.push(',');
        }
        let mut entry = JsonObject::begin(&mut plan);
        match fault.target {
            FaultTarget::Link { node, direction } => {
                entry
                    .field_str("target", "link")
                    .field_u64("node", u64::from(node.index()))
                    .field_u64("dim", direction.dim() as u64)
                    .field_str(
                        "sign",
                        if direction.sign() == wormsim::topology::Sign::Plus {
                            "+"
                        } else {
                            "-"
                        },
                    );
            }
            FaultTarget::Node { node } => {
                entry
                    .field_str("target", "node")
                    .field_u64("node", u64::from(node.index()));
            }
        }
        entry.field_u64("fail_at", fault.fail_at);
        if let Some(repair_at) = fault.repair_at {
            entry.field_u64("repair_at", repair_at);
        }
        entry.finish();
    }
    plan.push(']');
    obj.field_raw("plan", &plan);
    let mut worms = String::from("[");
    for (i, worm) in refutation.witness.worms.iter().enumerate() {
        if i > 0 {
            worms.push(',');
        }
        let waits: Vec<u64> = worm
            .waits
            .iter()
            .map(|w| u64::from(w.channel.index()))
            .collect();
        let mut entry = JsonObject::begin(&mut worms);
        entry
            .field_u64("src", u64::from(worm.src.index()))
            .field_u64("dest", u64::from(worm.dest.index()))
            .field_u64("held_channel", u64::from(worm.held.channel.index()))
            .field_u64("held_class", u64::from(worm.held.class))
            .field_u64("stall_node", u64::from(worm.node.index()))
            .field_u64_array("waits_channels", &waits)
            .field_bool("stranded", worm.is_stranded());
        entry.finish();
    }
    worms.push(']');
    obj.field_raw("witness", &worms);
    let schedule: Vec<u64> = refutation
        .witness
        .schedule
        .iter()
        .map(|&i| i as u64)
        .collect();
    obj.field_u64_array("schedule", &schedule);
    obj.finish();
    out.push('\n');
    out
}

fn print_healthy(report: &CheckReport) {
    match &report.verdict {
        SafetyVerdict::ProvenFree => println!(
            "  healthy network: PROVEN FREE ({} reachable configurations, none self-supporting)",
            report.configs
        ),
        SafetyVerdict::Deadlock(witness) => println!(
            "  healthy network: REFUTED — {}/{} configurations self-supporting; witness: {} \
             worms ({} stranded)",
            report.survivors,
            report.configs,
            witness.worms.len(),
            witness.stranded()
        ),
    }
}

fn print_adversary(topo: &Topology, report: &AdversaryReport) {
    println!(
        "  adversary: {} plans tried, {} admitted, {} unsupported, {} proven free, {} refuted",
        report.plans_tried,
        report.plans_admitted,
        report.plans_unsupported,
        report.plans_proven_free,
        report.plans_refuted
    );
    for refutation in &report.refutations {
        let when = if refutation.plan.is_static() {
            String::new()
        } else {
            format!(" at cycle {}", refutation.epoch)
        };
        println!(
            "    refuted {} claim{} with {} fault(s) (minimized from {}): {} — {} stranded, {} \
             survivors, CDG {}",
            refutation.claim,
            when,
            refutation.plan.len(),
            refutation.original_len,
            plan_label(topo, refutation),
            refutation.stranded,
            refutation.survivors,
            if refutation.masked_cyclic {
                "cyclic too"
            } else {
                "blind to it"
            }
        );
    }
}

fn main() {
    let spec = match parse_args(std::env::args().skip(1)) {
        Ok(spec) => spec,
        Err(message) if message == "help" => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &spec.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let mut guaranteed_refuted = false;
    for kind in &spec.algorithms {
        let algo: Box<dyn RoutingAlgorithm> = match kind.build(&spec.topology) {
            Ok(algo) => algo,
            Err(e) => {
                eprintln!("skipping {kind}: {e:?}");
                continue;
            }
        };
        println!("== {} on {} ==", algo.name(), spec.topology.label());
        let healthy = match check(&spec.topology, algo.as_ref()) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        print_healthy(&healthy);
        let adversary = match search_faults(&spec.topology, algo.as_ref(), &spec.config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        print_adversary(&spec.topology, &adversary);
        for (k, refutation) in adversary.refutations.iter().enumerate() {
            if refutation.claim == FaultTolerance::Guaranteed {
                guaranteed_refuted = true;
            }
            if let Some(dir) = &spec.out {
                let path = dir.join(format!("verify-{}-{k}.counterexample.json", algo.name()));
                let text = counterexample_json(&spec.topology, algo.name(), refutation);
                if let Err(e) = atomic_write(&path, text) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("    counterexample written to {}", path.display());
            }
        }
        println!();
    }
    if guaranteed_refuted {
        eprintln!("SAFETY VIOLATION: a guaranteed deadlock-freedom claim was refuted");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Spec, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn args_parse() {
        let spec = parse(&["--smoke"]).unwrap();
        assert_eq!(spec.topology.label(), "torus:4x4");
        assert_eq!(spec.algorithms.len(), 6);
        assert_eq!(spec.config.max_faults, 1);
        let spec = parse(&["--topo", "mesh:4x4", "--algos", "phop", "--max-faults", "2"]).unwrap();
        assert_eq!(spec.topology.label(), "mesh:4x4");
        assert_eq!(spec.algorithms, vec![AlgorithmKind::PositiveHop]);
        assert_eq!(spec.config.max_faults, 2);
        assert!(!spec.config.node_faults);
        let spec = parse(&[
            "--node-faults",
            "--transient-plans",
            "3",
            "--transient-faults",
            "2",
        ])
        .unwrap();
        assert!(spec.config.node_faults);
        assert_eq!(spec.config.transient_plans, 3);
        assert_eq!(spec.config.transient_faults, 2);
        assert!(parse(&["--transient-plans", "x"]).is_err());
        assert!(parse(&["--max-faults"]).is_err());
        assert!(parse(&["--max-faults", "x"]).is_err());
        assert!(parse(&["--warp"]).is_err());
    }

    #[test]
    fn smoke_caps_fault_horizon_but_keeps_explicit_topo() {
        let spec = parse(&["--topo", "torus:3x3", "--smoke", "--max-faults", "4"]).unwrap();
        assert_eq!(spec.topology.label(), "torus:3x3");
        assert_eq!(spec.config.max_faults, 1, "--smoke caps the horizon");
    }

    #[test]
    fn counterexample_artifact_is_valid_json() {
        let topo = Topology::torus(&[4, 4]);
        let algo = AlgorithmKind::NaiveMinimal.build(&topo).unwrap();
        let config = AdversaryConfig {
            max_faults: 0,
            ..AdversaryConfig::default()
        };
        let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
        let text = counterexample_json(&topo, "naive", &report.refutations[0]);
        let value = wormsim::observe::json::from_str(&text).expect("artifact parses");
        assert_eq!(
            value.get("type").and_then(|v| v.as_str()),
            Some("counterexample")
        );
        assert_eq!(
            value.get("claim").and_then(|v| v.as_str()),
            Some("guaranteed")
        );
        assert!(value
            .get("witness")
            .and_then(|v| v.as_array())
            .is_some_and(|w| !w.is_empty()));
    }
}

//! Ablation: message length. The paper fixes 16-flit messages but cites
//! studies with 20- and 24-flit messages and Berman et al.'s 15/31-flit
//! mix; this sweeps those choices.

use wormsim::{AlgorithmKind, Experiment, MessageLength, TrafficConfig};
use wormsim_bench::SweepOptions;

fn main() {
    let options = SweepOptions::from_args();
    let topo = options.topology_or_paper();
    let lengths: Vec<(&str, MessageLength)> = vec![
        ("16", MessageLength::fixed(16).expect("valid")),
        ("20", MessageLength::fixed(20).expect("valid")),
        ("24", MessageLength::fixed(24).expect("valid")),
        (
            "15/31 mix",
            MessageLength::bimodal(15, 31, 0.5).expect("valid"),
        ),
    ];
    let algorithms = [AlgorithmKind::PositiveHop, AlgorithmKind::Ecube];
    println!("Effect of message length (uniform traffic, {topo}):\n");
    println!(
        "{:>10} {:>7} {:>14} {:>11}",
        "length", "algo", "latency @0.2", "peak util"
    );
    for (name, length) in &lengths {
        for algorithm in algorithms {
            let base = Experiment::new(topo.clone(), algorithm)
                .traffic(TrafficConfig::Uniform)
                .message_length(*length)
                .schedule(options.schedule)
                .seed(options.seed);
            let low = base.clone().offered_load(0.2).run().expect("low point");
            let mut peak = 0.0f64;
            for load in [0.3, 0.5, 0.7, 0.9] {
                let r = base.clone().offered_load(load).run().expect("sweep point");
                peak = peak.max(r.achieved_utilization);
            }
            println!(
                "{:>10} {:>7} {:>11.1} cy {:>11.3}",
                name,
                algorithm.name(),
                low.latency.mean(),
                peak
            );
        }
    }
    println!(
        "\nLonger worms raise zero-load latency linearly (Eq. 2) and hold\n\
         channels longer when blocked; normalized peak throughput moves only\n\
         mildly because Eq. 4 already normalizes by message length."
    );
}

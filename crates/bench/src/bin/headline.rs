//! Runs every experiment family of the paper (Figures 3–5 and the
//! Section 3.4 virtual-cut-through study) and prints the headline
//! paper-vs-measured table that EXPERIMENTS.md records.

use wormsim_bench::{
    apply_topology_override, print_paper_comparison, run_figure_or_exit, write_csv, SweepOptions,
};

fn main() {
    let options = SweepOptions::from_args();
    for spec in wormsim::presets::all_figures() {
        let spec = apply_topology_override(spec, &options);
        eprintln!(
            "running {} ({} points)...",
            spec.id,
            spec.algorithms.len() * spec.loads.len()
        );
        let results = run_figure_or_exit(&spec, &options);
        println!("== {} ({}) ==", spec.title, spec.id);
        println!("Peak achieved utilization:");
        for algo in &spec.algorithms {
            println!(
                "  {:>6}: {:.3}",
                algo.name(),
                wormsim_bench::peak_utilization(&results, algo.name())
            );
        }
        println!();
        print_paper_comparison(&spec.id, &results);
        match write_csv(&spec.id, &results, &options.out_dir) {
            Ok(path) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}

//! A deliberately tiny HTTP/1.1 subset for the worker protocol.
//!
//! The workspace vendors no network crates, so both sides of the
//! orchestrator ↔ `wormsim-worker` link are hand-rolled over
//! [`std::net::TcpStream`]: one request per connection, `Content-Length`
//! framing, `Connection: close`. That subset is all the protocol needs —
//! four endpoints exchanging small JSON bodies — and keeps the wire
//! debuggable with `curl`.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest header block we accept (per request/response).
const MAX_HEAD: usize = 64 * 1024;
/// Largest body we accept; experiments and results are a few KB.
const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed incoming request: method, target (path plus optional query),
/// and the body.
pub(crate) struct Request {
    pub method: String,
    pub target: String,
    pub body: String,
}

/// Reads bytes until the blank line ending the header block, then returns
/// (head, leftover-bytes-already-read-past-it). `deadline` bounds the
/// whole read, not just each chunk: a peer dribbling one byte per read
/// timeout (a slow loris) would otherwise hold the exchange open forever.
fn read_head(
    stream: &mut TcpStream,
    deadline: Option<std::time::Instant>,
) -> std::io::Result<(String, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_blank_line(&buf) {
            let head = String::from_utf8_lossy(&buf[..end]).into_owned();
            return Ok((head, buf[end + 4..].to_vec()));
        }
        if buf.len() > MAX_HEAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "http header block too large",
            ));
        }
        check_deadline(deadline)?;
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before end of http headers",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn check_deadline(deadline: Option<std::time::Instant>) -> std::io::Result<()> {
    if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "exchange deadline exceeded (peer is dribbling bytes)",
        ));
    }
    Ok(())
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length(head: &str) -> std::io::Result<usize> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let len: usize = value.trim().parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unparseable Content-Length",
                    )
                })?;
                if len > MAX_BODY {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "http body too large",
                    ));
                }
                return Ok(len);
            }
        }
    }
    Ok(0)
}

fn read_body(
    stream: &mut TcpStream,
    mut already: Vec<u8>,
    length: usize,
    deadline: Option<std::time::Instant>,
) -> std::io::Result<String> {
    let mut chunk = [0u8; 4096];
    while already.len() < length {
        check_deadline(deadline)?;
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        already.extend_from_slice(&chunk[..n]);
    }
    already.truncate(length);
    String::from_utf8(already)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "http body is not utf-8"))
}

/// Server side: reads one request off an accepted connection.
pub(crate) fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let (head, leftover) = read_head(stream, None)?;
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || target.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed http request line",
        ));
    }
    let body = read_body(stream, leftover, content_length(&head)?, None)?;
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Renders a full response (status line, headers, body) without writing
/// it, for callers that need byte-level control — the worker's chaos
/// truncation/dribble injections.
pub(crate) fn render_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Writes raw pre-rendered bytes (possibly a deliberate fragment).
pub(crate) fn write_raw(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

/// Server side: writes a JSON response and closes the exchange.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
) -> std::io::Result<()> {
    write_raw(stream, render_response(status, body).as_bytes())
}

/// Strips an optional `http://` scheme and trailing slash so `--worker`
/// accepts both `127.0.0.1:9000` and `http://127.0.0.1:9000/`.
pub(crate) fn normalize_addr(addr: &str) -> String {
    addr.trim()
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_owned()
}

/// Client side: one request/response exchange against `addr`, with
/// `timeout` applied to connect, each read, and each write, plus an
/// overall exchange deadline of 4× `timeout` — a server dribbling one
/// byte per read timeout (slow loris, half-frozen host) cannot hold the
/// caller past that. Returns `(status, body)`; transport failures come
/// back as rendered strings so the caller can wrap them in its own retry
/// machinery.
pub(crate) fn call(
    addr: &str,
    method: &str,
    target: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let addr = normalize_addr(addr);
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect to {addr} failed: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("cannot set socket timeouts: {e}"))?;
    let deadline = Some(std::time::Instant::now() + timeout * 4);
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send to {addr} failed: {e}"))?;
    let (head, leftover) =
        read_head(&mut stream, deadline).map_err(|e| format!("read from {addr} failed: {e}"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}: {status_line:?}"))?;
    let length = content_length(&head).map_err(|e| format!("bad response from {addr}: {e}"))?;
    let body = read_body(&mut stream, leftover, length, deadline)
        .map_err(|e| format!("read from {addr} failed: {e}"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trip_request_and_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.target, "/submit?x=1");
            assert_eq!(request.body, "{\"hello\":42}");
            write_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = call(
            &format!("http://{addr}/"),
            "POST",
            "/submit?x=1",
            "{\"hello\":42}",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn connect_failure_is_a_rendered_error() {
        // Port 1 on loopback is essentially never listening.
        let err = call(
            "127.0.0.1:1",
            "GET",
            "/handshake",
            "",
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "got: {err}");
    }

    #[test]
    fn normalize_strips_scheme_and_slash() {
        assert_eq!(normalize_addr("http://10.0.0.2:9000/"), "10.0.0.2:9000");
        assert_eq!(normalize_addr(" 10.0.0.2:9000"), "10.0.0.2:9000");
    }
}

//! Seeded chaos injection for `wormsim-worker` — the fault plan for the
//! *orchestration* layer.
//!
//! The simulator proves its routing algorithms against a validated
//! [`FaultPlan`](wormsim::FaultPlan); the distribution layer deserves the
//! same discipline. A [`ChaosPlan`] is parsed from `--chaos <spec>`,
//! validated up front (bad specs are rejected before the worker ever
//! listens), and entirely seeded: every probabilistic decision comes off a
//! counter-indexed hash of the plan seed, so a chaos soak replays
//! identically and a failure found under chaos can be pinned in CI.
//!
//! Supported injections (all composable in one spec):
//!
//! | key                  | effect                                              |
//! |----------------------|-----------------------------------------------------|
//! | `crash-submit=N`     | the process exits hard on the Nth accepted submit   |
//! | `stall-submit=N`     | the Nth submitted job hangs forever (HTTP stays up) |
//! | `delay-ms=D@P`       | delay responses by `D` ms with probability `P`      |
//! | `drop=P`             | close the connection without responding, prob. `P`  |
//! | `truncate=P`         | send a truncated response body, probability `P`     |
//! | `corrupt=P`          | flip bytes in the response body, probability `P`    |
//! | `slow-handshake-ms=D`| dribble `/handshake` responses over `D` ms          |
//! | `seed=S`             | the decision stream seed (default 1993)             |
//!
//! Example: `--chaos "seed=7,crash-submit=3,corrupt=0.2,delay-ms=50@0.5"`.
//!
//! `crash-submit` and `stall-submit` model the two worker pathologies the
//! sweep supervisor distinguishes: a *dead* worker (socket gone, RPCs
//! fail) and a *hung* one (socket healthy, simulation heartbeat frozen).
//! The body corruptions exercise the orchestrator's garbled-response
//! strikes, and `slow-handshake-ms` the HTTP client's overall exchange
//! deadline (a slow-loris server must not hang a sweep forever).

use std::fmt;
use wormsim::observe::fnv1a_hex;

/// Default seed for the chaos decision stream (matches the repo's
/// reference sweep seed).
pub const DEFAULT_CHAOS_SEED: u64 = 1993;

/// A validated, seeded chaos-injection schedule for one worker process.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Exit the process (status 42) on this 1-based accepted submit.
    pub crash_submit: Option<u64>,
    /// Hang this 1-based submitted job forever: it is accepted, reported
    /// `pending`, but its simulation never starts, so its heartbeat stays
    /// frozen at zero.
    pub stall_submit: Option<u64>,
    /// Delay responses by this many milliseconds...
    pub delay_ms: u64,
    /// ...with this probability (0 disables).
    pub delay_p: f64,
    /// Probability of closing a connection without any response.
    pub drop_p: f64,
    /// Probability of truncating a response body halfway.
    pub truncate_p: f64,
    /// Probability of corrupting bytes in a response body.
    pub corrupt_p: f64,
    /// Dribble `/handshake` response bytes over this many milliseconds.
    pub slow_handshake_ms: u64,
}

/// A rejected chaos spec: which key, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlanError {
    /// The offending `key=value` fragment.
    pub fragment: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos spec '{}': {}", self.fragment, self.message)
    }
}

impl std::error::Error for ChaosPlanError {}

impl ChaosPlan {
    /// Parses and validates a comma-separated `key=value` spec. The empty
    /// spec is valid (a plan that injects nothing).
    ///
    /// # Errors
    ///
    /// [`ChaosPlanError`] naming the first bad fragment: unknown keys,
    /// unparseable numbers, probabilities outside `[0, 1]`, or zero
    /// crash/stall indices (they are 1-based).
    pub fn parse(spec: &str) -> Result<ChaosPlan, ChaosPlanError> {
        let mut plan = ChaosPlan {
            seed: DEFAULT_CHAOS_SEED,
            ..ChaosPlan::default()
        };
        for fragment in spec.split(',') {
            let fragment = fragment.trim();
            if fragment.is_empty() {
                continue;
            }
            let bad = |message: &str| ChaosPlanError {
                fragment: fragment.to_owned(),
                message: message.to_owned(),
            };
            let (key, value) = fragment
                .split_once('=')
                .ok_or_else(|| bad("expected key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value.trim().parse().map_err(|_| bad("bad seed"))?;
                }
                "crash-submit" => {
                    plan.crash_submit = Some(parse_index(value).map_err(|m| bad(&m))?);
                }
                "stall-submit" => {
                    plan.stall_submit = Some(parse_index(value).map_err(|m| bad(&m))?);
                }
                "delay-ms" => {
                    let (ms, p) = value
                        .split_once('@')
                        .ok_or_else(|| bad("expected delay-ms=MS@PROB"))?;
                    plan.delay_ms = ms.trim().parse().map_err(|_| bad("bad delay"))?;
                    plan.delay_p = parse_probability(p).map_err(|m| bad(&m))?;
                }
                "drop" => plan.drop_p = parse_probability(value).map_err(|m| bad(&m))?,
                "truncate" => plan.truncate_p = parse_probability(value).map_err(|m| bad(&m))?,
                "corrupt" => plan.corrupt_p = parse_probability(value).map_err(|m| bad(&m))?,
                "slow-handshake-ms" => {
                    plan.slow_handshake_ms =
                        value.trim().parse().map_err(|_| bad("bad duration"))?;
                }
                _ => return Err(bad("unknown chaos key")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.crash_submit.is_some()
            || self.stall_submit.is_some()
            || (self.delay_ms > 0 && self.delay_p > 0.0)
            || self.drop_p > 0.0
            || self.truncate_p > 0.0
            || self.corrupt_p > 0.0
            || self.slow_handshake_ms > 0
    }

    /// One seeded coin flip: deterministic in `(seed, salt, counter)`,
    /// uniform enough in `[0, 1)` for fault injection. `salt` separates
    /// the decision streams (drop vs corrupt vs ...) so enabling one
    /// injection never reshuffles another's schedule.
    pub fn coin(&self, salt: u64, counter: u64) -> f64 {
        let digest = fnv1a_hex(&format!("chaos:{}:{salt}:{counter}", self.seed));
        let bits = u64::from_str_radix(&digest[..13.min(digest.len())], 16).unwrap_or(0);
        // 13 hex digits = 52 bits, the mantissa width of an f64.
        (bits as f64) / (1u64 << 52) as f64
    }
}

fn parse_index(s: &str) -> Result<u64, String> {
    let n: u64 = s
        .trim()
        .parse()
        .map_err(|_| "bad index (expected a positive integer)".to_owned())?;
    if n == 0 {
        return Err("indices are 1-based; 0 never fires".to_owned());
    }
    Ok(n)
}

fn parse_probability(s: &str) -> Result<f64, String> {
    let p: f64 = s.trim().parse().map_err(|_| "bad probability".to_owned())?;
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// Decision-stream salts, one per injection kind (see
/// [`ChaosPlan::coin`]).
pub(crate) mod salt {
    pub const DELAY: u64 = 1;
    pub const DROP: u64 = 2;
    pub const TRUNCATE: u64 = 3;
    pub const CORRUPT: u64 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_parses() {
        let plan = ChaosPlan::parse(
            "seed=7, crash-submit=3, stall-submit=1, delay-ms=50@0.5, drop=0.1, \
             truncate=0.2, corrupt=0.3, slow-handshake-ms=200",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crash_submit, Some(3));
        assert_eq!(plan.stall_submit, Some(1));
        assert_eq!((plan.delay_ms, plan.delay_p), (50, 0.5));
        assert_eq!(plan.drop_p, 0.1);
        assert_eq!(plan.truncate_p, 0.2);
        assert_eq!(plan.corrupt_p, 0.3);
        assert_eq!(plan.slow_handshake_ms, 200);
        assert!(plan.is_active());
    }

    #[test]
    fn empty_spec_is_a_valid_inactive_plan() {
        let plan = ChaosPlan::parse("").unwrap();
        assert_eq!(plan.seed, DEFAULT_CHAOS_SEED);
        assert!(!plan.is_active());
    }

    #[test]
    fn bad_specs_name_the_fragment() {
        for (spec, needle) in [
            ("warp=1", "unknown chaos key"),
            ("drop=1.5", "outside [0, 1]"),
            ("drop=x", "bad probability"),
            ("crash-submit=0", "1-based"),
            ("delay-ms=50", "MS@PROB"),
            ("justakey", "key=value"),
        ] {
            let error = ChaosPlan::parse(spec).expect_err(spec);
            assert!(error.to_string().contains(needle), "{spec}: {error}");
        }
    }

    #[test]
    fn coins_are_deterministic_uniform_ish_and_stream_isolated() {
        let plan = ChaosPlan::parse("seed=42").unwrap();
        assert_eq!(plan.coin(1, 9), plan.coin(1, 9));
        assert_ne!(plan.coin(1, 9), plan.coin(2, 9), "salts isolate streams");
        let mean: f64 = (0..1000).map(|i| plan.coin(1, i)).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "suspicious coin mean {mean}");
        assert!((0..1000).all(|i| (0.0..1.0).contains(&plan.coin(3, i))));
    }
}

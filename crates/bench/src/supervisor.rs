//! Sweep supervision: deadlines, hedging, and poison-point quarantine on
//! top of any [`WorkerBackend`].
//!
//! The backend trait answers "is this point done yet?"; the supervisor
//! answers the uglier operational questions a long distributed sweep
//! actually hits:
//!
//! * **Hung workers.** A dead socket already fails over, but a worker
//!   whose simulation thread is stuck (livelocked host, SIGSTOP, a chaos
//!   stall) keeps answering `pending` forever. The supervisor watches each
//!   dispatch's simulation heartbeat ([`WorkerBackend::heartbeat`]); a
//!   heartbeat frozen past the point deadline gets the worker written off
//!   ([`WorkerBackend::write_off`]), which routes the point through the
//!   backend's normal failover re-dispatch.
//! * **Stragglers.** With `hedge_after` set, the oldest in-flight point
//!   is re-dispatched to spare capacity once it has been pending that
//!   long. First completion wins; the loser is forgotten
//!   ([`WorkerBackend::forget`]) before it can reach the committer, so
//!   hedging never perturbs the journal bytes (results are
//!   bit-deterministic in the experiment anyway — the hedge only buys
//!   wall-clock).
//! * **Poison points.** A point that keeps *killing* its workers (crash
//!   on submit, OOM) would otherwise chew through the whole pool. Once a
//!   point's dispatch count ([`WorkerBackend::dispatch_history`]) exceeds
//!   `quarantine_after`, the supervisor stops re-dispatching it and emits
//!   a [`QuarantineRecord`] with the last infrastructure error; the sweep
//!   completes without it and reports a distinct exit code.
//!
//! The supervisor owns the set of in-flight points; [`run_sweep`] feeds
//! it jobs and consumes [`Event`]s. All policy is off by default — a
//! sweep with no deadline, no hedging, and quarantine disabled behaves
//! exactly like the pre-supervisor orchestrator.
//!
//! [`run_sweep`]: crate::run_sweep

use crate::backend::{BackendError, PointJob, PointStatus, WorkHandle, WorkerBackend};
use std::time::{Duration, Instant};
use wormsim::{ExperimentError, RunResult};

/// Knobs for one sweep's supervision. Everything optional; the default is
/// a transparent pass-through.
#[derive(Clone, Debug, Default)]
pub(crate) struct SupervisePolicy {
    /// Write a worker off once a dispatch's simulation heartbeat has been
    /// frozen this long. Only applies to backends that report heartbeats;
    /// a backend returning `None` is never written off on this path.
    pub point_deadline: Option<Duration>,
    /// Re-dispatch the oldest pending point to idle capacity once it has
    /// been in flight this long (at most one hedge per point).
    pub hedge_after: Option<Duration>,
    /// Quarantine a point once its dispatch count exceeds this many
    /// attempts across workers. `0` disables quarantine.
    pub quarantine_after: u64,
}

/// What the supervisor did during a sweep — surfaced in the run manifest
/// so injected faults are visible, not silently absorbed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Workers written off for a frozen simulation heartbeat.
    pub workers_written_off: u64,
    /// Points re-dispatched to idle capacity as straggler hedges.
    pub points_hedged: u64,
    /// Hedged duplicate dispatches discarded after another copy won.
    pub duplicates_discarded: u64,
}

impl SupervisionReport {
    /// Whether anything noteworthy happened.
    pub fn is_empty(&self) -> bool {
        *self == SupervisionReport::default()
    }
}

/// One quarantined point: why the sweep completed without it.
#[derive(Clone, Debug)]
pub struct QuarantineRecord {
    /// Position in the sweep's deterministic schedule.
    pub index: usize,
    /// The point's configuration digest (journal key).
    pub point_hash: String,
    /// Dispatches the point burned before quarantine.
    pub dispatches: u64,
    /// The last infrastructure error its dispatches caused.
    pub last_error: String,
}

/// A supervised point's outcome, consumed by the sweep loop.
pub(crate) enum Event {
    /// The point finished (possibly after failover or a winning hedge).
    Done {
        index: usize,
        result: Result<RunResult, ExperimentError>,
        attempts: u64,
        retry_decision: Option<String>,
    },
    /// The point exceeded its dispatch budget and was written off.
    Quarantined(QuarantineRecord),
}

struct Dispatch {
    handle: WorkHandle,
    /// Last simulation heartbeat observed from this dispatch.
    beat: Option<u64>,
    /// When the heartbeat last advanced (or the dispatch started).
    advanced: Instant,
    /// Whether this dispatch already triggered a write-off; cleared when
    /// the heartbeat moves again (the point failed over somewhere live).
    written_off: bool,
}

struct Flight {
    index: usize,
    job: PointJob,
    dispatches: Vec<Dispatch>,
    started: Instant,
    hedged: bool,
}

/// Tracks every in-flight point and applies the [`SupervisePolicy`].
pub(crate) struct Supervisor {
    policy: SupervisePolicy,
    flights: Vec<Flight>,
    pub(crate) report: SupervisionReport,
}

impl Supervisor {
    pub(crate) fn new(policy: SupervisePolicy) -> Supervisor {
        Supervisor {
            policy,
            flights: Vec::new(),
            report: SupervisionReport::default(),
        }
    }

    /// In-flight dispatch count (hedged points count twice): the number
    /// of backend slots this supervisor is occupying.
    pub(crate) fn dispatched(&self) -> usize {
        self.flights.iter().map(|f| f.dispatches.len()).sum()
    }

    /// Whether any point is still in flight.
    pub(crate) fn is_idle(&self) -> bool {
        self.flights.is_empty()
    }

    /// Dispatches a fresh point.
    pub(crate) fn submit(
        &mut self,
        backend: &mut dyn WorkerBackend,
        job: PointJob,
    ) -> Result<(), BackendError> {
        let handle = backend.submit(job.clone())?;
        self.flights.push(Flight {
            index: job.index,
            job,
            dispatches: vec![Dispatch {
                handle,
                beat: None,
                advanced: Instant::now(),
                written_off: false,
            }],
            started: Instant::now(),
            hedged: false,
        });
        Ok(())
    }

    /// One supervision round: poll every dispatch, apply heartbeat
    /// deadlines, quarantine dispatch-budget busts, and hedge the oldest
    /// straggler. Returns the points that resolved this round.
    ///
    /// # Errors
    ///
    /// Only unrecoverable backend failures (e.g. every worker dead); a
    /// single worker's death is absorbed by the backend's failover.
    pub(crate) fn tick(
        &mut self,
        backend: &mut dyn WorkerBackend,
    ) -> Result<Vec<Event>, BackendError> {
        let mut events = Vec::new();
        let now = Instant::now();
        let mut f = 0;
        while f < self.flights.len() {
            // Quarantine check first, so a poison point is written off
            // *before* another poll re-dispatches it at a fresh worker.
            if self.policy.quarantine_after > 0 {
                let (dispatches, last_error) = self.flights[f]
                    .dispatches
                    .iter()
                    .map(|d| backend.dispatch_history(d.handle))
                    .max_by_key(|(count, _)| *count)
                    .unwrap_or((1, None));
                if dispatches > self.policy.quarantine_after {
                    let flight = self.flights.swap_remove(f);
                    for dispatch in &flight.dispatches {
                        backend.forget(dispatch.handle);
                    }
                    events.push(Event::Quarantined(QuarantineRecord {
                        index: flight.index,
                        point_hash: flight.job.point_hash.clone(),
                        dispatches,
                        last_error: last_error.unwrap_or_else(|| "no error recorded".to_owned()),
                    }));
                    continue;
                }
            }
            let mut finished = None;
            for d in 0..self.flights[f].dispatches.len() {
                let handle = self.flights[f].dispatches[d].handle;
                match backend.poll(handle)? {
                    PointStatus::Pending => {
                        let beat = backend.heartbeat(handle);
                        let dispatch = &mut self.flights[f].dispatches[d];
                        if beat != dispatch.beat {
                            dispatch.beat = beat;
                            dispatch.advanced = now;
                            dispatch.written_off = false;
                        } else if let (Some(deadline), Some(_)) =
                            (self.policy.point_deadline, dispatch.beat)
                        {
                            if !dispatch.written_off
                                && now.duration_since(dispatch.advanced) > deadline
                            {
                                // The socket answers but the simulation
                                // has not advanced: a hung worker. Write
                                // it off; the next poll fails over.
                                dispatch.written_off = true;
                                backend.write_off(handle);
                                self.report.workers_written_off += 1;
                            }
                        }
                    }
                    PointStatus::Done {
                        result,
                        attempts,
                        retry_decision,
                    } => {
                        finished = Some((d, result, attempts, retry_decision));
                        break;
                    }
                }
            }
            if let Some((winner, result, attempts, retry_decision)) = finished {
                let flight = self.flights.swap_remove(f);
                for (d, dispatch) in flight.dispatches.iter().enumerate() {
                    if d != winner {
                        // First commit wins: the losing copy's (identical)
                        // result is discarded before the committer ever
                        // sees it.
                        backend.forget(dispatch.handle);
                        self.report.duplicates_discarded += 1;
                    }
                }
                events.push(Event::Done {
                    index: flight.index,
                    result,
                    attempts,
                    retry_decision,
                });
                continue;
            }
            f += 1;
        }
        self.maybe_hedge(backend, now)?;
        Ok(events)
    }

    /// Re-dispatches the oldest straggler to idle capacity, at most one
    /// hedge per point per sweep.
    fn maybe_hedge(
        &mut self,
        backend: &mut dyn WorkerBackend,
        now: Instant,
    ) -> Result<(), BackendError> {
        let Some(hedge_after) = self.policy.hedge_after else {
            return Ok(());
        };
        if backend.capacity() <= self.dispatched() {
            return Ok(());
        }
        let Some(flight) = self
            .flights
            .iter_mut()
            .filter(|flight| !flight.hedged)
            .min_by_key(|flight| flight.started)
        else {
            return Ok(());
        };
        if now.duration_since(flight.started) <= hedge_after {
            return Ok(());
        }
        // A submit failure here means the spare capacity evaporated
        // between the check and the dispatch (a worker died). The original
        // dispatch is still live, so a failed hedge is not an error.
        if let Ok(handle) = backend.submit(flight.job.clone()) {
            flight.hedged = true;
            flight.dispatches.push(Dispatch {
                handle,
                beat: None,
                advanced: now,
                written_off: false,
            });
            self.report.points_hedged += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wormsim::topology::Topology;
    use wormsim::{AlgorithmKind, Experiment};

    /// A scriptable backend: each job is resolved by poking the mock, so
    /// the tests control completion order, heartbeats, and dispatch
    /// counts exactly.
    #[derive(Default)]
    struct MockBackend {
        next: u64,
        capacity: usize,
        submitted: Vec<u64>,
        done: HashMap<u64, (Result<RunResult, ExperimentError>, u64, Option<String>)>,
        beats: HashMap<u64, u64>,
        dispatches: HashMap<u64, (u64, Option<String>)>,
        written_off: Vec<u64>,
        forgotten: Vec<u64>,
    }

    impl WorkerBackend for MockBackend {
        fn submit(&mut self, _job: PointJob) -> Result<WorkHandle, BackendError> {
            let id = self.next;
            self.next += 1;
            self.submitted.push(id);
            Ok(WorkHandle(id))
        }
        fn poll(&mut self, handle: WorkHandle) -> Result<PointStatus, BackendError> {
            match self.done.remove(&handle.0) {
                Some((result, attempts, retry_decision)) => Ok(PointStatus::Done {
                    result,
                    attempts,
                    retry_decision,
                }),
                None => Ok(PointStatus::Pending),
            }
        }
        fn capacity(&self) -> usize {
            self.capacity
        }
        fn cancel(&mut self) {}
        fn heartbeat(&mut self, handle: WorkHandle) -> Option<u64> {
            self.beats.get(&handle.0).copied()
        }
        fn dispatch_history(&self, handle: WorkHandle) -> (u64, Option<String>) {
            self.dispatches.get(&handle.0).cloned().unwrap_or((1, None))
        }
        fn write_off(&mut self, handle: WorkHandle) {
            self.written_off.push(handle.0);
        }
        fn forget(&mut self, handle: WorkHandle) {
            self.forgotten.push(handle.0);
        }
    }

    fn job(index: usize) -> PointJob {
        let experiment = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
            .offered_load(0.05)
            .quick()
            .seed(index as u64 + 1);
        PointJob {
            point_hash: experiment.point_hash(),
            experiment,
            index,
            retries: 0,
            inject_panic: false,
            resumed_from: None,
        }
    }

    fn result() -> RunResult {
        Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
            .offered_load(0.05)
            .quick()
            .run()
            .expect("tiny run")
    }

    #[test]
    fn quarantine_trips_once_dispatches_exceed_the_budget() {
        let mut backend = MockBackend {
            capacity: 4,
            ..MockBackend::default()
        };
        let mut supervisor = Supervisor::new(SupervisePolicy {
            quarantine_after: 3,
            ..SupervisePolicy::default()
        });
        supervisor.submit(&mut backend, job(0)).unwrap();
        // At the budget: still re-dispatching.
        backend
            .dispatches
            .insert(0, (3, Some("worker a lost".into())));
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert!(backend.forgotten.is_empty());
        // Over the budget: quarantined with the last error, handle freed.
        backend
            .dispatches
            .insert(0, (4, Some("worker b lost".into())));
        let events = supervisor.tick(&mut backend).unwrap();
        let [Event::Quarantined(record)] = events.as_slice() else {
            panic!("expected exactly one quarantine event");
        };
        assert_eq!(record.index, 0);
        assert_eq!(record.dispatches, 4);
        assert_eq!(record.last_error, "worker b lost");
        assert_eq!(backend.forgotten, vec![0]);
        assert!(supervisor.is_idle());
    }

    #[test]
    fn quarantine_disabled_never_trips() {
        let mut backend = MockBackend {
            capacity: 4,
            ..MockBackend::default()
        };
        let mut supervisor = Supervisor::new(SupervisePolicy::default());
        supervisor.submit(&mut backend, job(0)).unwrap();
        backend.dispatches.insert(0, (99, Some("carnage".into())));
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert_eq!(supervisor.dispatched(), 1);
    }

    #[test]
    fn hedged_duplicate_is_discarded_when_the_original_wins() {
        let mut backend = MockBackend {
            capacity: 2,
            ..MockBackend::default()
        };
        let mut supervisor = Supervisor::new(SupervisePolicy {
            hedge_after: Some(Duration::from_millis(0)),
            ..SupervisePolicy::default()
        });
        supervisor.submit(&mut backend, job(0)).unwrap();
        // The point is instantly a straggler; a tick hedges it into the
        // spare slot.
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert_eq!(backend.submitted, vec![0, 1]);
        assert_eq!(supervisor.dispatched(), 2);
        assert_eq!(supervisor.report.points_hedged, 1);
        // No third copy: one hedge per point.
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert_eq!(backend.submitted, vec![0, 1]);
        // The original finishes first; the hedge must be forgotten, and
        // exactly one Done event reaches the committer.
        backend.done.insert(0, (Ok(result()), 1, None));
        backend.done.insert(1, (Ok(result()), 1, None));
        let events = supervisor.tick(&mut backend).unwrap();
        let [Event::Done { index, .. }] = events.as_slice() else {
            panic!("expected exactly one completion");
        };
        assert_eq!(*index, 0);
        assert_eq!(backend.forgotten, vec![1], "the losing copy is discarded");
        assert_eq!(supervisor.report.duplicates_discarded, 1);
        assert!(supervisor.is_idle());
    }

    #[test]
    fn hedging_needs_spare_capacity() {
        let mut backend = MockBackend {
            capacity: 1,
            ..MockBackend::default()
        };
        let mut supervisor = Supervisor::new(SupervisePolicy {
            hedge_after: Some(Duration::from_millis(0)),
            ..SupervisePolicy::default()
        });
        supervisor.submit(&mut backend, job(0)).unwrap();
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert_eq!(backend.submitted, vec![0], "no idle slot, no hedge");
        assert_eq!(supervisor.report.points_hedged, 0);
    }

    #[test]
    fn frozen_heartbeat_writes_the_worker_off_and_progress_resets_it() {
        let mut backend = MockBackend {
            capacity: 2,
            ..MockBackend::default()
        };
        let mut supervisor = Supervisor::new(SupervisePolicy {
            point_deadline: Some(Duration::from_millis(0)),
            ..SupervisePolicy::default()
        });
        supervisor.submit(&mut backend, job(0)).unwrap();
        // No heartbeat reported yet: the deadline must not fire (a
        // backend that cannot distinguish hung from slow stays silent).
        assert!(supervisor.tick(&mut backend).unwrap().is_empty());
        assert!(backend.written_off.is_empty());
        // A reported heartbeat that then freezes: first tick records it,
        // the next one (past the zero deadline) writes the worker off.
        backend.beats.insert(0, 7);
        supervisor.tick(&mut backend).unwrap();
        assert!(backend.written_off.is_empty(), "first observation arms it");
        std::thread::sleep(Duration::from_millis(2));
        supervisor.tick(&mut backend).unwrap();
        assert_eq!(backend.written_off, vec![0]);
        assert_eq!(supervisor.report.workers_written_off, 1);
        // No double write-off while still frozen...
        std::thread::sleep(Duration::from_millis(2));
        supervisor.tick(&mut backend).unwrap();
        assert_eq!(backend.written_off, vec![0]);
        // ...but progress re-arms the deadline for a future freeze.
        backend.beats.insert(0, 8);
        supervisor.tick(&mut backend).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        supervisor.tick(&mut backend).unwrap();
        assert_eq!(backend.written_off, vec![0, 0]);
    }
}

//! The deterministic committer: journal appends in schedule order, no
//! matter what order the backend finishes points in.
//!
//! A sweep sharded across N workers completes points in a
//! machine-dependent order; appending on completion (as the pre-backend
//! orchestrator did) makes the journal's line order — and therefore its
//! bytes — nondeterministic. The committer holds completed entries until
//! every earlier point in the schedule is *resolved* (committed or
//! skipped), then flushes the contiguous frontier. For a run that
//! completes, the journal is byte-identical whether the points ran on one
//! thread, sixteen threads, or two machines.
//!
//! Wall-clock fields (`wall_seconds`, `cycles_per_sec`) are canonicalized
//! to zero before an entry reaches the committer — they are the only
//! machine-dependent bytes in a [`RunResult`](wormsim::RunResult), and
//! the CSV never reads them.

use crate::journal::{Journal, JournalEntry, JournalError};

enum Resolution {
    /// Not finished yet — blocks everything behind it.
    Pending,
    /// Will never be journaled (resumed from a prior run, configuration
    /// error, or interrupted).
    Skip,
    /// Finished out of order; held until the frontier reaches it.
    Hold(Box<JournalEntry>),
}

/// In-order journal writer for one sweep. Indices are positions in the
/// sweep's deterministic schedule.
pub(crate) struct Committer {
    journal: Journal,
    resolutions: Vec<Resolution>,
    frontier: usize,
    committed_this_run: usize,
    fail_after: Option<usize>,
}

impl Committer {
    /// Wraps `journal` for a sweep of `total` points. `fail_after`
    /// carries the `--fail-after-points` crash-injection hook: exit(3)
    /// immediately after that many commits this run.
    pub(crate) fn new(journal: Journal, total: usize, fail_after: Option<usize>) -> Committer {
        Committer {
            journal,
            resolutions: (0..total).map(|_| Resolution::Pending).collect(),
            frontier: 0,
            committed_this_run: 0,
            fail_after,
        }
    }

    /// Marks point `index` as never-to-be-journaled and commits anything
    /// it was blocking.
    pub(crate) fn skip(&mut self, index: usize) -> Result<(), JournalError> {
        self.resolutions[index] = Resolution::Skip;
        self.advance()
    }

    /// Hands the committer point `index`'s finished entry; it is written
    /// now if the frontier has reached it, held otherwise.
    ///
    /// First-commit-wins is enforced *upstream*: the supervisor discards
    /// duplicate completions of a hedged point before they get here, so
    /// each index is resolved exactly once. A second resolution would
    /// silently overwrite the first (or re-journal a committed point),
    /// so it is a hard error in debug builds.
    pub(crate) fn complete(
        &mut self,
        index: usize,
        entry: JournalEntry,
    ) -> Result<(), JournalError> {
        debug_assert!(
            index >= self.frontier && matches!(self.resolutions[index], Resolution::Pending),
            "point {index} resolved twice — hedged duplicates must be \
             discarded before the committer"
        );
        self.resolutions[index] = Resolution::Hold(Box::new(entry));
        self.advance()
    }

    /// Commits every *resolved* entry past the frontier, in index order,
    /// skipping over unresolved gaps. Called when a sweep stops early
    /// (interrupt, fail-fast abort): completed work is persisted for
    /// resume even though the strict in-order guarantee only covers runs
    /// that finish.
    pub(crate) fn flush(&mut self) -> Result<(), JournalError> {
        for index in self.frontier..self.resolutions.len() {
            if let Resolution::Hold(_) = &self.resolutions[index] {
                let Resolution::Hold(entry) =
                    std::mem::replace(&mut self.resolutions[index], Resolution::Skip)
                else {
                    unreachable!("matched Hold above");
                };
                self.commit(*entry)?;
            }
        }
        self.frontier = self.resolutions.len();
        Ok(())
    }

    fn advance(&mut self) -> Result<(), JournalError> {
        while self.frontier < self.resolutions.len() {
            match &self.resolutions[self.frontier] {
                Resolution::Pending => break,
                Resolution::Skip => self.frontier += 1,
                Resolution::Hold(_) => {
                    let Resolution::Hold(entry) =
                        std::mem::replace(&mut self.resolutions[self.frontier], Resolution::Skip)
                    else {
                        unreachable!("matched Hold above");
                    };
                    self.commit(*entry)?;
                    self.frontier += 1;
                }
            }
        }
        Ok(())
    }

    fn commit(&mut self, entry: JournalEntry) -> Result<(), JournalError> {
        self.journal.record(entry)?;
        self.committed_this_run += 1;
        if let Some(limit) = self.fail_after {
            if self.committed_this_run >= limit {
                eprintln!(
                    "\nfail-after-points: simulating a crash after {} journaled points",
                    self.committed_this_run
                );
                std::process::exit(3);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::topology::Topology;
    use wormsim::{AlgorithmKind, Experiment};

    fn entry(index: usize) -> JournalEntry {
        // A real (cheap) result so the entry survives the journal's JSON
        // round-trip; the seed makes each entry's hash distinct.
        let experiment = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
            .offered_load(0.05)
            .quick()
            .seed(index as u64 + 1);
        let mut result = experiment.run().expect("tiny run");
        result.wall_seconds = 0.0;
        result.cycles_per_sec = 0.0;
        JournalEntry {
            point_hash: experiment.point_hash(),
            index,
            attempts: 1,
            retry_decision: None,
            result,
        }
    }

    #[test]
    fn out_of_order_completion_commits_in_schedule_order() {
        let dir = tempdir("committer_order");
        let journal = Journal::create(dir.join("j.jsonl")).unwrap();
        let mut committer = Committer::new(journal, 4, None);
        let entries: Vec<JournalEntry> = (0..4).map(entry).collect();
        // Finish 3, 1, 0, 2 — the journal must read 0, 1, 2, 3.
        committer.complete(3, entries[3].clone()).unwrap();
        committer.complete(1, entries[1].clone()).unwrap();
        committer.complete(0, entries[0].clone()).unwrap();
        committer.complete(2, entries[2].clone()).unwrap();
        let reloaded = Journal::load(dir.join("j.jsonl")).unwrap();
        let indices: Vec<usize> = reloaded.entries().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skips_unblock_the_frontier_and_flush_persists_stragglers() {
        let dir = tempdir("committer_flush");
        let journal = Journal::create(dir.join("j.jsonl")).unwrap();
        let mut committer = Committer::new(journal, 4, None);
        committer.complete(3, entry(3)).unwrap();
        committer.skip(0).unwrap();
        committer.complete(1, entry(1)).unwrap();
        // Point 2 never resolves (interrupted); 1 is committed, 3 held.
        let mid = Journal::load(dir.join("j.jsonl")).unwrap();
        assert_eq!(mid.len(), 1);
        committer.flush().unwrap();
        let reloaded = Journal::load(dir.join("j.jsonl")).unwrap();
        let indices: Vec<usize> = reloaded.entries().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![1, 3], "flush writes held entries in order");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wormsim_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

//! Terminal rendering of figure panels: a small ASCII scatter plot so the
//! regenerated figures can be eyeballed against the paper without leaving
//! the terminal.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. the algorithm name).
    pub label: String,
    /// The marker character used for this series.
    pub marker: char,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a fixed-size ASCII plot with axes and a legend.
///
/// Points from later series overwrite earlier ones on collisions (matching
/// how the paper's overlaid markers read). Returns a ready-to-print block.
///
/// # Example
///
/// ```
/// use wormsim_bench::plot::{render, Series};
///
/// let s = Series {
///     label: "ecube".into(),
///     marker: 'o',
///     points: vec![(0.1, 25.0), (0.3, 60.0), (0.5, 180.0)],
/// };
/// let chart = render("latency vs offered load", &[s], 40, 12);
/// assert!(chart.contains('o'));
/// assert!(chart.contains("ecube"));
/// ```
pub fn render(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col.min(width - 1)] = s.marker;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_max:>8.1}")
        } else if i == height - 1 {
            format!("{y_min:>8.1}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&y_label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(8));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>9}{:.2}{:>width$}{:.2}\n",
        "",
        x_min,
        "",
        x_max,
        width = width.saturating_sub(8)
    ));
    out.push_str("legend: ");
    for s in series {
        out.push_str(&format!("{}={} ", s.marker, s.label));
    }
    out.push('\n');
    out
}

/// The marker cycle used for figure series, matching the paper's o/+/x/*.
pub const MARKERS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: Vec<(f64, f64)>) -> Series {
        Series {
            label: "s".into(),
            marker: 'o',
            points,
        }
    }

    #[test]
    fn renders_corners() {
        let chart = render("t", &[series(vec![(0.0, 0.0), (1.0, 1.0)])], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Max-y row holds the top-right point, min-y row the bottom-left.
        assert!(lines[1].ends_with('o'));
        assert!(lines[8].contains('o'));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn empty_series_is_graceful() {
        let chart = render("t", &[series(vec![])], 20, 8);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let chart = render("t", &[series(vec![(0.5, 2.0), (0.5, 2.0)])], 20, 8);
        assert!(chart.contains('o'));
    }

    #[test]
    fn later_series_overwrite() {
        let a = Series {
            label: "a".into(),
            marker: 'a',
            points: vec![(0.0, 0.0)],
        };
        let b = Series {
            label: "b".into(),
            marker: 'b',
            points: vec![(0.0, 0.0)],
        };
        let chart = render("t", &[a, b], 20, 8);
        assert!(chart.contains('b'));
    }
}

//! The run journal: crash-safe checkpointing for sweeps.
//!
//! A journal is a JSONL file with one record per *completed* sweep point,
//! keyed by the point's [`Experiment::point_hash`] — a digest of everything
//! that determines the simulation (config, seed, fault plan). Every append
//! rewrites the whole file through [`atomic_write`], so a crash at any
//! instant leaves either the previous journal or the new one on disk,
//! never a torn line. Sweeps resumed with `--resume <journal>` skip the
//! journaled points and splice their recorded results back in; because the
//! record preserves every [`RunResult`] field exactly (including float bit
//! patterns), the merged CSV is byte-identical to an uninterrupted run.
//!
//! Journals are small — one line per sweep point, tens to a few hundred
//! lines — so the rewrite-on-append costs microseconds and buys atomicity
//! without platform-specific append/fsync reasoning.
//!
//! [`Experiment::point_hash`]: wormsim::Experiment::point_hash

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use wormsim::observe::json::{self, Value};
use wormsim::observe::{atomic_write, JsonObject, JsonRecord};
use wormsim::RunResult;

/// One journaled point: where it sat in the sweep, how many attempts it
/// took, and the full result.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// The point's stable configuration digest.
    pub point_hash: String,
    /// Index in the sweep's deterministic order *when recorded* (advisory:
    /// lookups go by hash, so a reordered sweep still resumes correctly).
    pub index: usize,
    /// Attempts the point took (1 = first try).
    pub attempts: u64,
    /// What the triage-aware retry policy decided, when it engaged
    /// (`confirmed_unsafe_no_retry`, `budget_artifact_retried`, ...).
    /// Absent for points the policy never touched, and absent in journals
    /// written before the policy existed.
    pub retry_decision: Option<String>,
    /// The recorded measurement.
    pub result: RunResult,
}

impl JsonRecord for JournalEntry {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field_str("point_hash", &self.point_hash)
            .field_u64("index", self.index as u64)
            .field_u64("attempts", self.attempts);
        if let Some(decision) = &self.retry_decision {
            obj.field_str("retry_decision", decision);
        }
        obj.field_raw("result", &self.result.to_json());
        obj.finish();
    }
}

impl JournalEntry {
    fn from_json(value: &Value) -> Result<JournalEntry, String> {
        Ok(JournalEntry {
            point_hash: value
                .get("point_hash")
                .and_then(Value::as_str)
                .ok_or("missing field 'point_hash'")?
                .to_owned(),
            index: value
                .get("index")
                .and_then(Value::as_u64)
                .ok_or("missing field 'index'")? as usize,
            attempts: value
                .get("attempts")
                .and_then(Value::as_u64)
                .ok_or("missing field 'attempts'")?,
            retry_decision: value
                .get("retry_decision")
                .and_then(Value::as_str)
                .map(str::to_owned),
            result: RunResult::from_json(value.get("result").ok_or("missing field 'result'")?)?,
        })
    }
}

/// Why a journal could not be opened or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem trouble, rendered.
    Io {
        /// The journal path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// A line that is not a valid journal record — the journal is from a
    /// different version, hand-edited, or not a journal at all. Refusing
    /// to resume beats silently re-running everything.
    Parse {
        /// The journal path involved.
        path: String,
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal {path}: {message}")
            }
            JournalError::Parse {
                path,
                line,
                message,
            } => write!(f, "journal {path} line {line}: {message}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// An append-only (from the caller's view) record of completed sweep
/// points, atomically persisted on every append.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    /// Serialized JSONL of every entry, in append order — rewritten to
    /// disk wholesale so the on-disk file is always internally consistent.
    text: String,
    entries: Vec<JournalEntry>,
    by_hash: HashMap<String, usize>,
    /// Whether [`Journal::load`] dropped a torn trailing line.
    recovered_truncation: bool,
}

impl Journal {
    /// Starts a fresh journal at `path`, creating parent directories and
    /// writing an empty file immediately so the path named in a resume
    /// hint exists even if no point ever completes.
    pub fn create(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        let io = |e: std::io::Error| JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io)?;
            }
        }
        atomic_write(&path, "").map_err(io)?;
        Ok(Journal {
            path,
            text: String::new(),
            entries: Vec::new(),
            by_hash: HashMap::new(),
            recovered_truncation: false,
        })
    }

    /// Opens an existing journal, parsing every record. Later records win
    /// on duplicate hashes (a retried resume may re-record a point).
    ///
    /// An unparseable *final* line is treated as a mid-append crash
    /// artifact: the valid prefix loads with a warning on stderr (and
    /// [`recovered_truncation`](Journal::recovered_truncation) set), and
    /// the torn line is dropped — the next persist rewrites the file
    /// without it. An unparseable line *followed by* valid records cannot
    /// be truncation, so it still fails the load: refusing to resume from
    /// a journal with a hole beats silently re-running points. For a
    /// deliberate rescue of such a journal, see
    /// [`load_salvaging`](Journal::load_salvaging).
    pub fn load(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        Self::load_inner(path.into(), false).map(|(journal, _)| journal)
    }

    /// Opens a journal the strict [`load`](Journal::load) would refuse:
    /// every parseable line — prefix *and* suffix around corrupted
    /// mid-file records — is recovered, and every bad line is returned so
    /// the caller can quarantine it to a sidecar. The in-memory journal
    /// contains only the valid records, so the next persist rewrites the
    /// file clean; the points on the bad lines simply re-run.
    ///
    /// This is deliberate-action API (`--resume --salvage`), not default
    /// behavior: silently accepting a journal with holes would hide real
    /// corruption.
    ///
    /// # Errors
    ///
    /// Filesystem errors only — in salvage mode no line is fatal.
    pub fn load_salvaging(
        path: impl Into<PathBuf>,
    ) -> Result<(Journal, Vec<SalvagedLine>), JournalError> {
        Self::load_inner(path.into(), true)
    }

    fn load_inner(
        path: PathBuf,
        salvage: bool,
    ) -> Result<(Journal, Vec<SalvagedLine>), JournalError> {
        let text = std::fs::read_to_string(&path).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let mut journal = Journal {
            path: path.clone(),
            text: String::new(),
            entries: Vec::new(),
            by_hash: HashMap::new(),
            recovered_truncation: false,
        };
        let mut salvaged = Vec::new();
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        for (position, &(number, line)) in lines.iter().enumerate() {
            let parse = |message: String| JournalError::Parse {
                path: path.display().to_string(),
                line: number + 1,
                message,
            };
            let parsed = json::from_str(line)
                .map_err(|e| parse(e.to_string()))
                .and_then(|value| JournalEntry::from_json(&value).map_err(parse));
            match parsed {
                Ok(entry) => journal.push(entry),
                Err(error) if salvage => salvaged.push(SalvagedLine {
                    line: number + 1,
                    text: line.to_owned(),
                    error: error.to_string(),
                }),
                Err(error) if position + 1 == lines.len() => {
                    eprintln!(
                        "warning: {error}; treating it as a torn append and resuming from the {} valid point(s) before it",
                        journal.entries.len()
                    );
                    journal.recovered_truncation = true;
                }
                Err(error) => return Err(error),
            }
        }
        Ok((journal, salvaged))
    }

    /// Where salvage quarantines bad lines: the journal path with a
    /// `.corrupt.jsonl` suffix (`sweep.journal.jsonl` →
    /// `sweep.journal.corrupt.jsonl`).
    pub fn salvage_sidecar(path: &Path) -> PathBuf {
        sidecar_path(path, "corrupt.jsonl")
    }

    /// Where the supervisor quarantines poison points: the journal path
    /// with a `.quarantine.jsonl` suffix (`sweep.journal.jsonl` →
    /// `sweep.journal.quarantine.jsonl`).
    pub fn quarantine_sidecar(path: &Path) -> PathBuf {
        sidecar_path(path, "quarantine.jsonl")
    }

    /// Where the sweep writes its supervision manifest — counters for
    /// written-off workers, hedges, quarantines, salvaged lines, and
    /// retry decisions (`sweep.journal.jsonl` →
    /// `sweep.journal.supervision.json`). Only written when at least one
    /// of those is nonzero, so a healthy sweep leaves no manifest.
    pub fn supervision_sidecar(path: &Path) -> PathBuf {
        sidecar_path(path, "supervision.json")
    }

    fn push(&mut self, entry: JournalEntry) {
        entry.write_json(&mut self.text);
        self.text.push('\n');
        self.by_hash
            .insert(entry.point_hash.clone(), self.entries.len());
        self.entries.push(entry);
    }

    /// Records a completed point and atomically persists the journal.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the atomic rewrite.
    pub fn record(&mut self, entry: JournalEntry) -> Result<(), JournalError> {
        self.push(entry);
        atomic_write(&self.path, &self.text).map_err(|e| JournalError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Looks up a completed point by its configuration digest.
    pub fn get(&self, point_hash: &str) -> Option<&JournalEntry> {
        self.by_hash.get(point_hash).map(|&i| &self.entries[i])
    }

    /// Number of journaled points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every journaled point, in file (append) order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Whether [`Journal::load`] dropped an unparseable trailing line
    /// (mid-append crash recovery).
    pub fn recovered_truncation(&self) -> bool {
        self.recovered_truncation
    }

    /// Where the journal lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Swaps a journal path's trailing `jsonl` extension for `suffix`
/// (appending when the extension is something else entirely).
fn sidecar_path(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if let Some(stem) = name.strip_suffix(".jsonl") {
        name = format!("{stem}.{suffix}");
    } else {
        name = format!("{name}.{suffix}");
    }
    path.with_file_name(name)
}

/// One journal line the salvage loader could not parse, handed back so
/// the caller can quarantine it.
#[derive(Clone, Debug)]
pub struct SalvagedLine {
    /// 1-based line number in the original journal.
    pub line: usize,
    /// The raw line, verbatim.
    pub text: String,
    /// Why it failed to parse.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::stats::{ConfidenceInterval, ConvergenceStatus};
    use wormsim::{RunOutcome, RunResult};

    fn result(load: f64) -> RunResult {
        RunResult {
            algorithm: "phop".into(),
            traffic: "uniform".into(),
            offered_load: load,
            injection_rate: 0.0123456789012345,
            latency: ConfidenceInterval::new(31.25, 0.75),
            latency_percentiles: [28, 40, 55],
            latency_max: 90,
            class_latencies: Vec::new(),
            achieved_utilization: 0.1 + 0.2,
            delivery_rate: 0.01,
            acceptance_rate: 0.01,
            refused_fraction: 0.0,
            messages_measured: 1000,
            convergence: ConvergenceStatus::Converged,
            samples: 3,
            cycles_simulated: 30_000,
            wall_seconds: 0.5,
            cycles_per_sec: 60_000.0,
            outcome: RunOutcome::Completed,
            dropped_events: 0,
            deadlock: None,
            livelock: None,
            triage: None,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("wormsim-journal-{}-{name}", std::process::id()))
            .join("sweep.journal.jsonl")
    }

    #[test]
    fn create_record_load_roundtrip() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        assert!(journal.is_empty());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        for (i, load) in [0.1, 0.2, 0.3].iter().enumerate() {
            journal
                .record(JournalEntry {
                    point_hash: format!("hash{i}"),
                    index: i,
                    attempts: 1 + i as u64,
                    retry_decision: None,
                    result: result(*load),
                })
                .unwrap();
        }
        assert_eq!(journal.len(), 3);

        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        let entry = loaded.get("hash1").expect("hash1 journaled");
        assert_eq!(entry.index, 1);
        assert_eq!(entry.attempts, 2);
        assert_eq!(entry.result.offered_load.to_bits(), 0.2f64.to_bits());
        assert_eq!(
            entry.result.injection_rate.to_bits(),
            result(0.2).injection_rate.to_bits(),
            "floats survive the journal bit-exactly"
        );
        assert!(loaded.get("hash9").is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn append_is_atomic_no_stray_tmp_files() {
        let path = temp_path("atomic");
        let mut journal = Journal::create(&path).unwrap();
        journal
            .record(JournalEntry {
                point_hash: "h".into(),
                index: 0,
                attempts: 1,
                retry_decision: None,
                result: result(0.5),
            })
            .unwrap();
        let dir = path.parent().unwrap();
        let names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["sweep.journal.jsonl".to_owned()]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_trailing_line_recovers_the_valid_prefix() {
        let path = temp_path("torn");
        let mut journal = Journal::create(&path).unwrap();
        for i in 0..2 {
            journal
                .record(JournalEntry {
                    point_hash: format!("hash{i}"),
                    index: i,
                    attempts: 1,
                    retry_decision: None,
                    result: result(0.1 * (i as f64 + 1.0)),
                })
                .unwrap();
        }
        // Simulate a crash mid-append: a third record cut off partway.
        let mut torn = std::fs::read_to_string(&path).unwrap();
        torn.push_str("{\"point_hash\":\"hash2\",\"index\":2,\"at");
        std::fs::write(&path, &torn).unwrap();

        let loaded = Journal::load(&path).expect("valid prefix must load");
        assert!(loaded.recovered_truncation());
        assert_eq!(loaded.len(), 2);
        assert!(loaded.get("hash1").is_some());
        assert!(loaded.get("hash2").is_none(), "torn record is dropped");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn bad_line_before_valid_records_still_fails_the_load() {
        let path = temp_path("foreign");
        let mut journal = Journal::create(&path).unwrap();
        journal
            .record(JournalEntry {
                point_hash: "hash0".into(),
                index: 0,
                attempts: 1,
                retry_decision: None,
                result: result(0.1),
            })
            .unwrap();
        // Corrupt the FIRST line; a valid record follows, so this is not
        // truncation and must be refused.
        let good_line = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("not json at all\n{good_line}")).unwrap();
        let error = Journal::load(&path).expect_err("mid-file corruption must not load");
        assert!(
            matches!(error, JournalError::Parse { line: 1, .. }),
            "{error}"
        );
        // A journal that is ONLY a torn line recovers to empty.
        std::fs::write(&path, "{\"point_hash\":\"h\",\"index\":0").unwrap();
        let empty = Journal::load(&path).expect("sole torn line recovers to empty");
        assert!(empty.is_empty());
        assert!(empty.recovered_truncation());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_journal_is_an_io_error() {
        let error = Journal::load("/nonexistent/nowhere.journal.jsonl").unwrap_err();
        assert!(matches!(error, JournalError::Io { .. }), "{error}");
    }

    #[test]
    fn retry_decision_round_trips_and_stays_optional() {
        let path = temp_path("decision");
        let mut journal = Journal::create(&path).unwrap();
        journal
            .record(JournalEntry {
                point_hash: "plain".into(),
                index: 0,
                attempts: 1,
                retry_decision: None,
                result: result(0.1),
            })
            .unwrap();
        journal
            .record(JournalEntry {
                point_hash: "triaged".into(),
                index: 1,
                attempts: 1,
                retry_decision: Some("confirmed_unsafe_no_retry".into()),
                result: result(0.2),
            })
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            !lines[0].contains("retry_decision"),
            "absent decision must not appear on the wire: {}",
            lines[0]
        );
        assert!(lines[1].contains("\"retry_decision\":\"confirmed_unsafe_no_retry\""));
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.get("plain").unwrap().retry_decision, None);
        assert_eq!(
            loaded.get("triaged").unwrap().retry_decision.as_deref(),
            Some("confirmed_unsafe_no_retry")
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn salvage_recovers_prefix_and_suffix_and_reports_bad_lines() {
        let path = temp_path("salvage");
        let mut journal = Journal::create(&path).unwrap();
        for i in 0..3 {
            journal
                .record(JournalEntry {
                    point_hash: format!("hash{i}"),
                    index: i,
                    attempts: 1,
                    retry_decision: None,
                    result: result(0.1 * (i as f64 + 1.0)),
                })
                .unwrap();
        }
        // Corrupt the MIDDLE line: strict load refuses, salvage rescues
        // the records on both sides.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let corrupted = format!("{}\ngarbage in the middle\n{}\n", lines[0], lines[2]);
        std::fs::write(&path, &corrupted).unwrap();
        assert!(Journal::load(&path).is_err(), "strict load must refuse");

        let (salvaged, bad) = Journal::load_salvaging(&path).expect("salvage never refuses");
        assert_eq!(salvaged.len(), 2);
        assert!(salvaged.get("hash0").is_some(), "prefix recovered");
        assert!(salvaged.get("hash2").is_some(), "suffix recovered");
        assert!(salvaged.get("hash1").is_none());
        assert!(!salvaged.recovered_truncation());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].line, 2);
        assert_eq!(bad[0].text, "garbage in the middle");
        assert!(!bad[0].error.is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn salvaged_journal_persists_clean_on_next_record() {
        let path = temp_path("salvage-clean");
        let mut journal = Journal::create(&path).unwrap();
        journal
            .record(JournalEntry {
                point_hash: "keep".into(),
                index: 0,
                attempts: 1,
                retry_decision: None,
                result: result(0.1),
            })
            .unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("junk\n{good}")).unwrap();
        let (mut salvaged, bad) = Journal::load_salvaging(&path).unwrap();
        assert_eq!(bad.len(), 1);
        salvaged
            .record(JournalEntry {
                point_hash: "new".into(),
                index: 1,
                attempts: 1,
                retry_decision: None,
                result: result(0.2),
            })
            .unwrap();
        let rewritten = std::fs::read_to_string(&path).unwrap();
        assert!(
            !rewritten.contains("junk"),
            "the next persist must rewrite the file without the bad line"
        );
        assert_eq!(rewritten.lines().count(), 2);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn sidecar_paths_swap_the_jsonl_suffix() {
        assert_eq!(
            Journal::salvage_sidecar(Path::new("/x/sweep.journal.jsonl")),
            PathBuf::from("/x/sweep.journal.corrupt.jsonl")
        );
        assert_eq!(
            Journal::quarantine_sidecar(Path::new("/x/sweep.journal.jsonl")),
            PathBuf::from("/x/sweep.journal.quarantine.jsonl")
        );
        assert_eq!(
            Journal::quarantine_sidecar(Path::new("odd.log")),
            PathBuf::from("odd.log.quarantine.jsonl")
        );
    }
}

//! The remote backend: sweep points executed by `wormsim-worker`
//! processes over HTTP submit/poll.
//!
//! [`RemoteBackend::connect`] handshakes every worker up front and
//! refuses any whose wire protocol or config digest disagrees with this
//! binary — a mismatched worker would run the *wrong interpretation* of
//! the same bytes, which is worse than a refusal. Each RPC gets the same
//! bounded, seed-jittered retry treatment the simulator applies to
//! transient points, plus socket timeouts, so one dropped packet does not
//! kill an overnight sweep.
//!
//! A worker that stays unreachable past those retries is treated as
//! crashed: it is written off, its in-flight points are re-dispatched
//! verbatim to the survivors, and the sweep continues at reduced
//! capacity. Because results are bit-deterministic in the experiment
//! config, a re-run point produces the identical bytes the lost worker
//! would have — failover never perturbs the journal or the CSV. Only
//! when *every* worker is gone does the failure surface as a
//! [`BackendError`].

use crate::backend::{backoff_ms, BackendError, PointJob, PointStatus, WorkHandle, WorkerBackend};
use crate::http;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;
use wormsim::observe::{json, JsonObject};
use wormsim::{wire_digest, Experiment, ExperimentError, RunResult, WIRE_PROTOCOL};

/// Socket timeout per connect/read/write within one RPC (overridable via
/// `WORMSIM_RPC_TIMEOUT_MS`, chiefly so fault-injection tests can detect
/// a frozen worker in milliseconds instead of tens of seconds).
const RPC_TIMEOUT: Duration = Duration::from_secs(10);
/// Transport attempts per RPC before the backend gives up on a worker.
const RPC_ATTEMPTS: u64 = 3;
/// Malformed (garbled) status bodies tolerated per dispatch before the
/// worker is treated as lost. A single corrupted response — a flaky NIC,
/// a chaos injection — should not cost a worker; a stream of them means
/// the process on the other side is not speaking the protocol anymore.
const GARBLE_STRIKES: u32 = 3;

fn rpc_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        std::env::var("WORMSIM_RPC_TIMEOUT_MS")
            .ok()
            .and_then(|raw| raw.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map_or(RPC_TIMEOUT, Duration::from_millis)
    })
}

struct Worker {
    addr: String,
    slots: usize,
    in_flight: usize,
    /// Set once an RPC to this worker exhausts its transport retries;
    /// dead workers receive no further jobs and count no capacity.
    dead: bool,
    /// Set when the worker reports it is draining (SIGTERM received):
    /// zero capacity for new jobs, but its in-flight points are still
    /// polled to completion — a draining worker is retiring, not dead.
    draining: bool,
}

struct InFlight {
    worker: usize,
    /// The complete job, kept for two reasons: a worker-side
    /// configuration failure is re-derived as a structured
    /// [`ExperimentError`] locally (validation is deterministic in the
    /// experiment alone), and a crashed worker's in-flight points are
    /// re-dispatched verbatim to a survivor.
    job: PointJob,
    /// Times this job has been dispatched (1 = original submit; each
    /// failover re-dispatch increments). The supervisor's poison-point
    /// quarantine reads this via `dispatch_history`.
    dispatches: u64,
    /// The infrastructure error behind the latest re-dispatch.
    last_error: Option<String>,
    /// Simulation heartbeat last reported by a pending `/status` poll;
    /// the supervisor compares successive values to detect hung workers.
    beat: Option<u64>,
    /// Consecutive garbled status bodies from the current worker.
    garbles: u32,
}

/// Why a submit to one specific worker did not take.
enum SendError {
    /// HTTP 503: the worker is draining. Not a failure — pick another.
    Draining,
    /// Transport or protocol failure: the worker is gone.
    Failed(BackendError),
}

/// A pool of `wormsim-worker` processes behind the [`WorkerBackend`]
/// trait. Capacity is the sum of worker slot counts; jobs go to the first
/// worker with a free slot.
pub struct RemoteBackend {
    workers: Vec<Worker>,
    jobs: HashMap<u64, InFlight>,
    next_id: u64,
    digest: String,
}

/// One RPC with transport-level retries: transient socket failures back
/// off (seed-jittered, like point retries) and try again; an HTTP-level
/// error response is returned to the caller for protocol handling.
fn rpc(addr: &str, method: &str, target: &str, body: &str) -> Result<(u16, String), BackendError> {
    let mut last = String::new();
    for attempt in 1..=RPC_ATTEMPTS {
        match http::call(addr, method, target, body, rpc_timeout()) {
            Ok(response) => return Ok(response),
            Err(err) => last = err,
        }
        if attempt < RPC_ATTEMPTS {
            std::thread::sleep(Duration::from_millis(backoff_ms(addr, attempt)));
        }
    }
    Err(BackendError {
        worker: addr.to_owned(),
        message: format!("rpc {method} {target} failed after {RPC_ATTEMPTS} attempts: {last}"),
    })
}

fn get_u64(value: &json::Value, key: &str, addr: &str) -> Result<u64, BackendError> {
    value
        .get(key)
        .and_then(json::Value::as_u64)
        .ok_or_else(|| BackendError {
            worker: addr.to_owned(),
            message: format!("response missing integer field `{key}`"),
        })
}

fn parse_body(body: &str, addr: &str) -> Result<json::Value, BackendError> {
    json::from_str(body).map_err(|err| BackendError {
        worker: addr.to_owned(),
        message: format!("unparseable response body: {err}"),
    })
}

impl RemoteBackend {
    /// Handshakes every address and builds the pool.
    ///
    /// # Errors
    ///
    /// If any worker is unreachable, speaks a different wire protocol
    /// version, or reports a different config digest than this binary.
    pub fn connect(addrs: &[String]) -> Result<RemoteBackend, BackendError> {
        let digest = wire_digest();
        let mut workers = Vec::with_capacity(addrs.len());
        for raw in addrs {
            let addr = http::normalize_addr(raw);
            let (status, body) = rpc(&addr, "GET", "/handshake", "")?;
            if status != 200 {
                return Err(BackendError {
                    worker: addr,
                    message: format!("handshake returned HTTP {status}: {body}"),
                });
            }
            let value = parse_body(&body, &addr)?;
            let wire = get_u64(&value, "wire", &addr)?;
            if wire != u64::from(WIRE_PROTOCOL) {
                return Err(BackendError {
                    worker: addr,
                    message: format!(
                        "wire protocol mismatch: orchestrator v{WIRE_PROTOCOL}, worker v{wire}"
                    ),
                });
            }
            let theirs = value
                .get("digest")
                .and_then(|v| v.as_str())
                .unwrap_or_default();
            if theirs != digest {
                return Err(BackendError {
                    worker: addr,
                    message: format!(
                        "config digest mismatch: orchestrator {digest}, worker {theirs} — rebuild both from the same source"
                    ),
                });
            }
            let slots = get_u64(&value, "threads", &addr)?.max(1) as usize;
            let draining = value
                .get("draining")
                .and_then(json::Value::as_bool)
                .unwrap_or(false);
            workers.push(Worker {
                addr,
                slots,
                in_flight: 0,
                dead: false,
                draining,
            });
        }
        if workers.is_empty() {
            return Err(BackendError {
                worker: "<none>".to_owned(),
                message: "remote backend needs at least one worker address".to_owned(),
            });
        }
        Ok(RemoteBackend {
            workers,
            jobs: HashMap::new(),
            next_id: 0,
            digest,
        })
    }

    /// A worker-side failure arrives as a rendered string; configuration
    /// errors are deterministic in the experiment alone, so re-validating
    /// locally recovers the structured variant. Anything else (which
    /// should not happen) is preserved verbatim as an I/O error.
    fn rederive_error(experiment: &Experiment, message: &str, addr: &str) -> ExperimentError {
        match experiment.validate() {
            Err(err) => err,
            Ok(()) => ExperimentError::Io {
                message: format!("worker {addr} reported: {message}"),
            },
        }
    }

    /// Writes a worker off (idempotent): no further jobs, no capacity.
    /// Its in-flight accounting is zeroed — every point it was running is
    /// re-dispatched as its handle gets polled.
    fn mark_dead(&mut self, slot: usize, cause: &BackendError) {
        if !self.workers[slot].dead {
            self.workers[slot].dead = true;
            self.workers[slot].in_flight = 0;
            eprintln!(
                "worker {} lost ({}); re-dispatching its in-flight points to the survivors",
                self.workers[slot].addr, cause.message
            );
        }
    }

    /// The next submit target among live, non-draining workers: the one
    /// with the most free slots (ties go to the first index), so
    /// heterogeneous workers drain proportionally instead of the first
    /// address soaking up every job. When `oversubscribe` (failover
    /// re-dispatch, where the dead worker's points can exceed the
    /// survivors' free slots), falls back to the least-loaded live
    /// worker. `None` when every worker is dead or draining (or, strict
    /// case, merely full).
    fn pick_live(&self, oversubscribe: bool) -> Option<usize> {
        let free = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.dead && !w.draining && w.in_flight < w.slots)
            .max_by_key(|(i, w)| (w.slots - w.in_flight, self.workers.len() - i))
            .map(|(i, _)| i);
        if free.is_some() || !oversubscribe {
            return free;
        }
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.dead && !w.draining)
            .min_by_key(|(_, w)| w.in_flight)
            .map(|(i, _)| i)
    }

    /// POSTs one job to one worker; counts it in flight on success.
    fn send_job(&mut self, slot: usize, id: u64, job: &PointJob) -> Result<(), SendError> {
        let mut body = String::new();
        let mut obj = JsonObject::begin(&mut body);
        obj.field_str("digest", &self.digest);
        obj.field_u64("job", id);
        obj.field_u64("retries", u64::from(job.retries));
        match &job.resumed_from {
            Some(journal) => obj.field_str("resumed_from", journal),
            None => obj.field_raw("resumed_from", "null"),
        };
        obj.field_raw("experiment", &job.experiment.to_wire_json());
        obj.finish();
        let addr = self.workers[slot].addr.clone();
        let (status, response) = rpc(&addr, "POST", "/submit", &body).map_err(SendError::Failed)?;
        if status == 503 {
            // The worker is shutting down gracefully: no new jobs, but
            // everything it already has will finish. Retire it from the
            // pool without the failover fanfare.
            if !self.workers[slot].draining {
                self.workers[slot].draining = true;
                eprintln!(
                    "worker {} is draining; sending no further jobs",
                    self.workers[slot].addr
                );
            }
            return Err(SendError::Draining);
        }
        if status != 200 {
            return Err(SendError::Failed(BackendError {
                worker: addr,
                message: format!("submit returned HTTP {status}: {response}"),
            }));
        }
        self.workers[slot].in_flight += 1;
        Ok(())
    }

    /// Re-dispatches one in-flight job after its worker failed: mark the
    /// worker dead, resubmit the job verbatim to a survivor, report the
    /// point as still pending. Only when *no* worker survives does the
    /// infrastructure failure reach the orchestrator.
    ///
    /// If the "dead" worker was merely slow and finishes its copy anyway,
    /// nothing diverges: results are bit-deterministic in the experiment,
    /// so the copies are identical and only the re-dispatched one is ever
    /// polled.
    fn fail_over(&mut self, id: u64, mut cause: BackendError) -> Result<PointStatus, BackendError> {
        let slot = self
            .jobs
            .get(&id)
            .expect("caller verified the handle")
            .worker;
        self.mark_dead(slot, &cause);
        let job = self
            .jobs
            .get(&id)
            .expect("caller verified the handle")
            .job
            .clone();
        loop {
            let Some(target) = self.pick_live(true) else {
                return Err(cause);
            };
            match self.send_job(target, id, &job) {
                Ok(()) => {
                    let in_flight = self.jobs.get_mut(&id).expect("caller verified the handle");
                    in_flight.worker = target;
                    in_flight.dispatches += 1;
                    in_flight.last_error = Some(cause.message.clone());
                    in_flight.beat = None;
                    in_flight.garbles = 0;
                    return Ok(PointStatus::Pending);
                }
                Err(SendError::Draining) => {
                    // Marked draining inside send_job; try the next one.
                }
                Err(SendError::Failed(err)) => {
                    self.mark_dead(target, &err);
                    cause = err;
                }
            }
        }
    }
}

/// A fully decoded `/status` body. Decoding is separated from transport
/// so a *garbled* body (chaos corruption, a flaky link) can be treated as
/// a strike against the worker rather than a fatal protocol error.
enum StatusBody {
    Pending {
        heartbeat: Option<u64>,
        draining: bool,
    },
    Done {
        result: RunResult,
        attempts: u64,
        retry_decision: Option<String>,
    },
    Failed {
        message: String,
        attempts: u64,
    },
}

fn decode_status(body: &str) -> Result<StatusBody, String> {
    let value = json::from_str(body).map_err(|err| format!("unparseable response body: {err}"))?;
    let state = value.get("state").and_then(|v| v.as_str()).unwrap_or("");
    let attempts = || {
        value
            .get("attempts")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| "status missing integer field `attempts`".to_owned())
    };
    match state {
        "pending" => Ok(StatusBody::Pending {
            heartbeat: value.get("heartbeat").and_then(json::Value::as_u64),
            draining: value
                .get("draining")
                .and_then(json::Value::as_bool)
                .unwrap_or(false),
        }),
        "done" => {
            let result_value = value
                .get("result")
                .ok_or_else(|| "done status missing `result`".to_owned())?;
            let result = RunResult::from_json(result_value)
                .map_err(|err| format!("undecodable result: {err}"))?;
            Ok(StatusBody::Done {
                result,
                attempts: attempts()?,
                retry_decision: value
                    .get("retry_decision")
                    .and_then(|v| v.as_str())
                    .map(str::to_owned),
            })
        }
        "failed" => Ok(StatusBody::Failed {
            message: value
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("unspecified worker failure")
                .to_owned(),
            attempts: attempts()?,
        }),
        other => Err(format!("unknown job state {other:?} in: {body}")),
    }
}

impl WorkerBackend for RemoteBackend {
    fn submit(&mut self, job: PointJob) -> Result<WorkHandle, BackendError> {
        let id = self.next_id;
        self.next_id += 1;
        // A fresh submit insists on a free slot (the orchestrator sized
        // its in-flight window by `capacity`); but once a worker dies
        // mid-submit the pool has shrunk under the orchestrator's feet,
        // so the retries may oversubscribe a survivor.
        let mut oversubscribe = false;
        let mut cause = BackendError {
            worker: "<pool>".to_owned(),
            message: "submit called with every worker slot occupied".to_owned(),
        };
        loop {
            let Some(slot) = self.pick_live(oversubscribe) else {
                return Err(cause);
            };
            match self.send_job(slot, id, &job) {
                Ok(()) => {
                    self.jobs.insert(
                        id,
                        InFlight {
                            worker: slot,
                            job,
                            dispatches: 1,
                            last_error: None,
                            beat: None,
                            garbles: 0,
                        },
                    );
                    return Ok(WorkHandle(id));
                }
                Err(SendError::Draining) => {
                    // Marked draining inside send_job; the next pick
                    // skips it.
                }
                Err(SendError::Failed(err)) => {
                    self.mark_dead(slot, &err);
                    cause = err;
                    oversubscribe = true;
                }
            }
        }
    }

    fn poll(&mut self, handle: WorkHandle) -> Result<PointStatus, BackendError> {
        let (slot, addr) = {
            let in_flight = self.jobs.get(&handle.0).ok_or_else(|| BackendError {
                worker: "<pool>".to_owned(),
                message: format!("poll of unknown handle {}", handle.0),
            })?;
            (
                in_flight.worker,
                self.workers[in_flight.worker].addr.clone(),
            )
        };
        // The worker was already written off by an earlier failure (its
        // own RPC, or another point's poll): re-dispatch without a doomed
        // round-trip.
        if self.workers[slot].dead {
            let cause = BackendError {
                worker: addr,
                message: "worker is gone".to_owned(),
            };
            return self.fail_over(handle.0, cause);
        }
        let (status, body) = match rpc(&addr, "GET", &format!("/status?job={}", handle.0), "") {
            Ok(response) => response,
            Err(err) => return self.fail_over(handle.0, err),
        };
        if status != 200 {
            let cause = BackendError {
                worker: addr,
                message: format!("status returned HTTP {status}: {body}"),
            };
            return self.fail_over(handle.0, cause);
        }
        match decode_status(&body) {
            Err(garble) => {
                // The transport delivered bytes, but not the protocol's.
                // Tolerate a few (a corrupted response costs nothing —
                // the next poll asks again) before treating the worker
                // as lost.
                let in_flight = self.jobs.get_mut(&handle.0).expect("handle checked above");
                in_flight.garbles += 1;
                if in_flight.garbles < GARBLE_STRIKES {
                    return Ok(PointStatus::Pending);
                }
                let cause = BackendError {
                    worker: addr,
                    message: format!("{GARBLE_STRIKES} garbled status responses; last: {garble}"),
                };
                self.fail_over(handle.0, cause)
            }
            Ok(StatusBody::Pending {
                heartbeat,
                draining,
            }) => {
                let in_flight = self.jobs.get_mut(&handle.0).expect("handle checked above");
                in_flight.garbles = 0;
                if let Some(beat) = heartbeat {
                    in_flight.beat = Some(beat);
                }
                if draining && !self.workers[slot].draining {
                    self.workers[slot].draining = true;
                    eprintln!("worker {addr} is draining; sending no further jobs");
                }
                Ok(PointStatus::Pending)
            }
            Ok(StatusBody::Done {
                result,
                attempts,
                retry_decision,
            }) => {
                self.jobs.remove(&handle.0);
                self.workers[slot].in_flight = self.workers[slot].in_flight.saturating_sub(1);
                Ok(PointStatus::Done {
                    result: Ok(result),
                    attempts,
                    retry_decision,
                })
            }
            Ok(StatusBody::Failed { message, attempts }) => {
                let in_flight = self.jobs.remove(&handle.0).expect("handle checked above");
                self.workers[slot].in_flight = self.workers[slot].in_flight.saturating_sub(1);
                Ok(PointStatus::Done {
                    result: Err(Self::rederive_error(
                        &in_flight.job.experiment,
                        &message,
                        &addr,
                    )),
                    attempts,
                    retry_decision: None,
                })
            }
        }
    }

    fn capacity(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| !w.dead && !w.draining)
            .map(|w| w.slots)
            .sum()
    }

    fn cancel(&mut self) {
        // Best-effort broadcast; a worker that is already gone cannot
        // hold up shutdown.
        for worker in self.workers.iter().filter(|w| !w.dead) {
            let _ = rpc(&worker.addr, "POST", "/cancel", "{}");
        }
    }

    fn poll_interval(&self) -> Duration {
        // HTTP polls are orders of magnitude costlier than a mutex peek;
        // back off accordingly.
        Duration::from_millis(25)
    }

    fn heartbeat(&mut self, handle: WorkHandle) -> Option<u64> {
        self.jobs.get(&handle.0).and_then(|j| j.beat)
    }

    fn dispatch_history(&self, handle: WorkHandle) -> (u64, Option<String>) {
        self.jobs
            .get(&handle.0)
            .map_or((1, None), |j| (j.dispatches, j.last_error.clone()))
    }

    fn write_off(&mut self, handle: WorkHandle) {
        let Some(slot) = self.jobs.get(&handle.0).map(|j| j.worker) else {
            return;
        };
        let cause = BackendError {
            worker: self.workers[slot].addr.clone(),
            message: "written off by the supervisor: simulation heartbeat frozen".to_owned(),
        };
        self.mark_dead(slot, &cause);
    }

    fn forget(&mut self, handle: WorkHandle) {
        if let Some(in_flight) = self.jobs.remove(&handle.0) {
            let worker = &mut self.workers[in_flight.worker];
            if !worker.dead {
                worker.in_flight = worker.in_flight.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::spawn_local;
    use std::time::Instant;
    use wormsim::topology::Topology;
    use wormsim::AlgorithmKind;

    fn job_for(experiment: Experiment, index: usize) -> PointJob {
        PointJob {
            point_hash: experiment.point_hash(),
            experiment,
            index,
            retries: 1,
            inject_panic: false,
            resumed_from: None,
        }
    }

    fn wait_done(
        backend: &mut RemoteBackend,
        handle: WorkHandle,
    ) -> (Result<RunResult, ExperimentError>, u64) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            assert!(Instant::now() < deadline, "remote worker hung");
            match backend.poll(handle).expect("poll") {
                PointStatus::Pending => std::thread::sleep(Duration::from_millis(10)),
                PointStatus::Done {
                    result, attempts, ..
                } => return (result, attempts),
            }
        }
    }

    #[test]
    fn remote_point_matches_local_run_exactly() {
        let addr = spawn_local(2);
        let mut backend =
            RemoteBackend::connect(&[addr.to_string()]).expect("handshake with loopback worker");
        assert_eq!(backend.capacity(), 2);
        let experiment = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
            .offered_load(0.2)
            .quick()
            .seed(1993);
        let local = experiment.clone().run().expect("local run");
        let handle = backend.submit(job_for(experiment, 0)).expect("submit");
        let (result, attempts) = wait_done(&mut backend, handle);
        assert_eq!(attempts, 1);
        let remote = result.expect("remote run succeeds");
        // Bit-exact equality across process + wire + JSON round-trip,
        // minus machine-dependent wall timing.
        assert_eq!(
            remote.latency.mean().to_bits(),
            local.latency.mean().to_bits()
        );
        assert_eq!(remote.cycles_simulated, local.cycles_simulated);
        assert_eq!(remote.messages_measured, local.messages_measured);
        assert_eq!(remote.latency_percentiles, local.latency_percentiles);
    }

    #[test]
    fn worker_reports_configuration_errors_as_structured_failures() {
        let addr = spawn_local(1);
        let mut backend = RemoteBackend::connect(&[addr.to_string()]).expect("handshake");
        // offered_load of 0 is rejected by Experiment::validate.
        let experiment = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::Ecube)
            .offered_load(0.0)
            .quick();
        let handle = backend.submit(job_for(experiment, 0)).expect("submit");
        let (result, _) = wait_done(&mut backend, handle);
        let err = result.expect_err("invalid load must fail");
        assert!(
            matches!(err, ExperimentError::InvalidLoad { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn poll_failure_fails_over_to_the_surviving_worker() {
        let doomed = crate::worker::spawn_killable(1);
        let survivor = spawn_local(1);
        let mut backend = RemoteBackend::connect(&[doomed.addr.to_string(), survivor.to_string()])
            .expect("handshake both workers");
        assert_eq!(backend.capacity(), 2);
        let experiment = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
            .offered_load(0.2)
            .quick()
            .seed(1993);
        let local = experiment.clone().run().expect("local reference run");
        // Submission goes to the first worker with a free slot — the
        // doomed one. Kill it mid-point; the next poll's RPC failure must
        // re-dispatch the job to the survivor, not surface an error.
        let handle = backend.submit(job_for(experiment, 0)).expect("submit");
        doomed.kill();
        let (result, _) = wait_done(&mut backend, handle);
        let remote = result.expect("failover completes the point");
        assert_eq!(
            remote.latency.mean().to_bits(),
            local.latency.mean().to_bits(),
            "the re-dispatched point must reproduce the local result bit for bit"
        );
        assert_eq!(remote.cycles_simulated, local.cycles_simulated);
        assert_eq!(
            backend.capacity(),
            1,
            "the dead worker must drop out of the capacity count"
        );
    }

    #[test]
    fn garbling_worker_is_cut_loose_and_the_point_lands_on_the_survivor() {
        // Every response body (except the chaos-exempt handshake) is
        // corrupted: valid HTTP framing, broken JSON. The backend must
        // write the worker off instead of trusting a byte of it.
        let garbler =
            crate::worker::spawn_chaotic(1, crate::chaos::ChaosPlan::parse("corrupt=1").unwrap());
        let survivor = spawn_local(1);
        let mut backend = RemoteBackend::connect(&[garbler.to_string(), survivor.to_string()])
            .expect("handshake is exempt from response corruption");
        assert_eq!(backend.capacity(), 2);
        let experiment = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
            .offered_load(0.2)
            .quick()
            .seed(1993);
        let local = experiment.clone().run().expect("local reference run");
        let handle = backend.submit(job_for(experiment, 0)).expect("submit");
        let (result, _) = wait_done(&mut backend, handle);
        let remote = result.expect("the point must land on the survivor");
        assert_eq!(
            remote.latency.mean().to_bits(),
            local.latency.mean().to_bits(),
            "the survivor must reproduce the local result bit for bit"
        );
        assert_eq!(
            backend.capacity(),
            1,
            "the garbling worker must be written off"
        );
    }

    #[test]
    fn connect_rejects_a_dead_worker() {
        let err = RemoteBackend::connect(&["127.0.0.1:1".to_owned()])
            .err()
            .expect("port 1 must refuse the handshake");
        assert!(
            err.message.contains("handshake") || err.message.contains("rpc"),
            "got: {err}"
        );
    }
}

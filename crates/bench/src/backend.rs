//! The [`WorkerBackend`] abstraction: where sweep points actually run.
//!
//! The orchestrator ([`run_sweep`](crate::run_sweep)) is backend-agnostic:
//! it submits [`PointJob`]s, polls their [`PointStatus`], and feeds
//! completed points to the deterministic committer. Two backends exist:
//!
//! * [`LocalThreadBackend`] — the classic in-process pool, one OS thread
//!   per slot. Behavior-preserving port of the old scoped-thread
//!   orchestrator: per-point panic isolation, bounded seed-jittered
//!   retries, cooperative shutdown.
//! * [`RemoteBackend`](crate::remote::RemoteBackend) — HTTP submit/poll
//!   against one or more `wormsim-worker` processes (see
//!   [`worker`](crate::worker) and `docs/DISTRIBUTION.md`).
//!
//! Both run the identical per-point retry loop ([`execute_point`]), so a
//! point produces the same result and the same attempt count no matter
//! where it runs — the property the committer turns into byte-identical
//! journals.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wormsim::stats::{ConfidenceInterval, ConvergenceStatus};
use wormsim::verify::TriageVerdict;
use wormsim::{CancelToken, Experiment, ExperimentError, PanicInfo, RunOutcome, RunResult};

/// One schedulable sweep point: the experiment plus the orchestration
/// context a backend needs to run it faithfully anywhere.
#[derive(Clone, Debug)]
pub struct PointJob {
    /// The fully configured experiment (simulation settings only matter on
    /// the wire; observability and cancellation stay with the executor).
    pub experiment: Experiment,
    /// Index in the sweep's deterministic order (provenance and the panic
    /// injection hook; the journal is keyed by hash, not index).
    pub index: usize,
    /// The point's stable configuration digest
    /// ([`Experiment::point_hash`]).
    pub point_hash: String,
    /// Extra attempts for transient outcomes (budget trips, panics).
    pub retries: u32,
    /// Test hook: panic inside the executor on every attempt.
    pub inject_panic: bool,
    /// Journal path this sweep resumed from, if any (provenance, surfaced
    /// in run manifests).
    pub resumed_from: Option<String>,
}

/// A backend's receipt for a submitted job; pass it back to
/// [`WorkerBackend::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkHandle(pub(crate) u64);

/// What [`WorkerBackend::poll`] reports for a handle.
#[derive(Debug)]
pub enum PointStatus {
    /// Still queued or running.
    Pending,
    /// Finished: the point's outcome and the attempts it consumed.
    Done {
        /// The run result, or the configuration error that rejected it.
        result: Result<RunResult, ExperimentError>,
        /// Attempts consumed (1 = first try).
        attempts: u64,
        /// What the triage-aware retry policy decided for this point, if
        /// it engaged at all (see [`execute_point`]). Deterministic, so it
        /// journals identically on every backend.
        retry_decision: Option<String>,
    },
}

/// A backend infrastructure failure: the *machinery* (a worker process, a
/// connection) failed, as opposed to a point's simulation outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendError {
    /// Which worker (address or label) failed.
    pub worker: String,
    /// What went wrong, rendered.
    pub message: String,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {}: {}", self.worker, self.message)
    }
}

impl std::error::Error for BackendError {}

/// Which backend a sweep runs on (`--backend local|remote`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// In-process thread pool (the default).
    Local,
    /// HTTP submit/poll against `wormsim-worker` processes.
    Remote {
        /// Worker addresses (`HOST:PORT`, from repeated `--worker` flags).
        workers: Vec<String>,
    },
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::Local
    }
}

/// Where sweep points execute. Submit up to [`capacity`] jobs, poll their
/// handles until every one reports [`PointStatus::Done`].
///
/// [`capacity`]: WorkerBackend::capacity
pub trait WorkerBackend {
    /// Queues a job; returns a handle to poll.
    ///
    /// # Errors
    ///
    /// Backend infrastructure failures (e.g. a worker RPC that exhausted
    /// its retries). Point-level failures are never `Err` here — they
    /// surface through [`PointStatus::Done`].
    fn submit(&mut self, job: PointJob) -> Result<WorkHandle, BackendError>;

    /// Reports the current status of a submitted job. A `Done` status is
    /// consumed: polling the same handle again is unspecified.
    ///
    /// # Errors
    ///
    /// Backend infrastructure failures, as for [`submit`](Self::submit).
    fn poll(&mut self, handle: WorkHandle) -> Result<PointStatus, BackendError>;

    /// How many jobs the backend can usefully hold in flight. The
    /// orchestrator keeps at most this many submitted-but-unfinished jobs.
    fn capacity(&self) -> usize;

    /// Best-effort cancellation broadcast: make in-flight points stop at
    /// their next boundary. Idempotent.
    fn cancel(&mut self);

    /// How long the orchestrator should sleep between poll rounds that
    /// made no progress.
    fn poll_interval(&self) -> Duration {
        Duration::from_millis(2)
    }

    /// The last progress heartbeat observed for a pending job (the
    /// engine's cycle counter, offset by one), or `None` when the backend
    /// cannot observe per-job progress (the local pool shares one token
    /// across jobs, so it reports nothing). The supervisor uses a frozen
    /// heartbeat to tell a *hung* executor from a slow one.
    fn heartbeat(&mut self, _handle: WorkHandle) -> Option<u64> {
        None
    }

    /// How many executors this job has been dispatched to so far (1 for a
    /// job still on its first executor), plus the most recent reason a
    /// dispatch was lost. The supervisor quarantines a point whose
    /// dispatch count keeps growing — a poison point that kills every
    /// worker it lands on.
    fn dispatch_history(&self, _handle: WorkHandle) -> (u64, Option<String>) {
        (1, None)
    }

    /// Declares a pending job's current executor lost (typically: its
    /// heartbeat froze past the supervisor's deadline). A remote pool
    /// writes the worker off and re-dispatches the job to a survivor on
    /// the next poll; the local pool cannot interrupt a hung thread and
    /// ignores the call.
    fn write_off(&mut self, _handle: WorkHandle) {}

    /// Abandons a job entirely: the backend forgets the handle and
    /// discards any result it may still produce. Used to drop the losing
    /// duplicates of a hedged point and to stop re-dispatching a
    /// quarantined one. Polling a forgotten handle reports `Pending`
    /// forever.
    fn forget(&mut self, _handle: WorkHandle) {}
}

/// Seed-jittered backoff before retry `attempt` of the point with digest
/// `point_hash`: exponential base so repeated transients spread out, plus
/// a per-point jitter so a thundering herd of failed points does not
/// retry in lockstep. Deterministic in (hash, attempt) — no wall clock,
/// no global RNG.
pub(crate) fn backoff_ms(point_hash: &str, attempt: u64) -> u64 {
    let digest = wormsim::observe::fnv1a_hex(&format!("{point_hash}:retry:{attempt}"));
    let jitter = u64::from_str_radix(&digest[..4], 16).unwrap_or(0) % 64;
    (25u64 << attempt.min(5)) + jitter
}

/// Sleeps up to `ms` milliseconds, returning early (within ~10ms) once
/// `cancel` trips — so a SIGINT during retry backoff stops the worker at
/// once instead of waiting out the full exponential delay.
pub(crate) fn cancellable_sleep(ms: u64, cancel: &CancelToken) {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while !cancel.is_cancelled() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// Renders a worker panic into a placeholder [`RunResult`] carrying
/// [`RunOutcome::Harness`], so the surrounding sweep records the failure
/// and keeps running instead of poisoning the pool.
fn panic_result(experiment: &Experiment, payload: &(dyn std::any::Any + Send)) -> RunResult {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    RunResult {
        algorithm: experiment.algorithm_kind().name().to_owned(),
        traffic: experiment.traffic_config().to_string(),
        offered_load: experiment.offered_load_value(),
        injection_rate: 0.0,
        latency: ConfidenceInterval::new(0.0, f64::INFINITY),
        latency_percentiles: [0, 0, 0],
        latency_max: 0,
        class_latencies: Vec::new(),
        achieved_utilization: 0.0,
        delivery_rate: 0.0,
        acceptance_rate: 0.0,
        refused_fraction: 0.0,
        messages_measured: 0,
        convergence: ConvergenceStatus::NeedMoreSamples,
        samples: 0,
        cycles_simulated: 0,
        wall_seconds: 0.0,
        cycles_per_sec: 0.0,
        outcome: RunOutcome::Harness(PanicInfo { message }),
        dropped_events: 0,
        deadlock: None,
        livelock: None,
        triage: None,
    }
}

/// Budget multiplier for the final attempt of a `budget_artifact` retry
/// chain: the re-run gets this many times the configured cycle budget, so
/// a stall the triage blamed on a tight budget has real headroom to
/// finish instead of deterministically reproducing itself.
pub(crate) const RAISED_BUDGET_FACTOR: u64 = 4;

/// Retry decision recorded when a stalled point was triaged
/// `confirmed_unsafe`: the stall is a validated circular wait, retrying
/// is deterministic futility, the result journals as-is.
pub(crate) const DECISION_CONFIRMED_UNSAFE: &str = "confirmed_unsafe_no_retry";
/// Retry decision recorded when a `budget_artifact` stall triggered a
/// retry (the final attempt ran with [`RAISED_BUDGET_FACTOR`]× budget).
pub(crate) const DECISION_BUDGET_RETRIED: &str = "budget_artifact_retried";
/// Retry decision recorded when a `budget_artifact` stall could not be
/// retried: either the retry budget was already spent or the experiment
/// has no cycle budget to raise (re-running the identical configuration
/// would reproduce the identical stall).
pub(crate) const DECISION_BUDGET_NO_RETRY: &str = "budget_artifact_not_retried";

/// The stall triage of a run result, when the run stalled at all.
fn stall_verdict(result: &Result<RunResult, ExperimentError>) -> Option<TriageVerdict> {
    match result {
        Ok(r) if matches!(r.outcome, RunOutcome::Deadlocked | RunOutcome::LiveLocked) => {
            r.triage.as_ref().map(|t| t.verdict)
        }
        _ => None,
    }
}

/// Runs one point with panic isolation and bounded retries — the single
/// executor both backends share. Panics become [`RunOutcome::Harness`]
/// results; transient outcomes (budget trips, panics) retry up to
/// `job.retries` extra times with seed-jittered, cancellation-aware
/// backoff, reusing the identical simulation seed. Configuration errors
/// never retry — they are deterministic.
///
/// Stalled runs go through the triage-aware policy: a stall triaged
/// `confirmed_unsafe` (a validated circular wait) is **never** retried —
/// it is deterministic, and re-running it would only burn budget to
/// reproduce the same deadlock. A stall triaged `budget_artifact` *is*
/// retry-eligible when the experiment has a cycle budget to raise: the
/// final attempt of such a chain runs with [`RAISED_BUDGET_FACTOR`]× the
/// configured budget, giving a congestion-starved run real headroom.
/// The decision taken is returned alongside the result so the journal
/// records it; everything here is deterministic in the job alone, so
/// local and remote executions decide (and journal) identically.
///
/// Returns the final result, the attempts consumed, and the retry
/// decision (when the stall policy engaged).
pub(crate) fn execute_point(
    job: &PointJob,
    cancel: &CancelToken,
) -> (Result<RunResult, ExperimentError>, u64, Option<String>) {
    let max_attempts = u64::from(job.retries).saturating_add(1);
    let raisable_budget = job.experiment.cycle_budget_value();
    let mut attempt = 1u64;
    let mut budget_retry_engaged = false;
    loop {
        let mut attempt_experiment = job
            .experiment
            .clone()
            .attempt(attempt as u32)
            .resumed_from(job.resumed_from.clone());
        if budget_retry_engaged && attempt == max_attempts {
            if let Some(budget) = raisable_budget {
                attempt_experiment = attempt_experiment
                    .cycle_budget(Some(budget.saturating_mul(RAISED_BUDGET_FACTOR)));
            }
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            if job.inject_panic {
                panic!("injected harness panic at point {}", job.index);
            }
            attempt_experiment.run()
        }));
        let result = match run {
            Ok(inner) => inner,
            Err(payload) => Ok(panic_result(&job.experiment, payload.as_ref())),
        };
        let transient = matches!(&result, Ok(r) if r.outcome.is_transient());
        let stall = stall_verdict(&result);
        // Only a budget-artifact stall with a budget to raise is worth a
        // deterministic re-run; confirmed-unsafe stalls never retry.
        let stall_retryable =
            stall == Some(TriageVerdict::BudgetArtifact) && raisable_budget.is_some();
        if (transient || stall_retryable) && attempt < max_attempts && !cancel.is_cancelled() {
            if stall_retryable {
                budget_retry_engaged = true;
            }
            cancellable_sleep(backoff_ms(&job.point_hash, attempt), cancel);
            attempt += 1;
            continue;
        }
        let decision = match stall {
            Some(TriageVerdict::ConfirmedUnsafe) => Some(DECISION_CONFIRMED_UNSAFE.to_owned()),
            Some(TriageVerdict::BudgetArtifact) if budget_retry_engaged => {
                Some(DECISION_BUDGET_RETRIED.to_owned())
            }
            Some(TriageVerdict::BudgetArtifact) => Some(DECISION_BUDGET_NO_RETRY.to_owned()),
            None if budget_retry_engaged => Some(DECISION_BUDGET_RETRIED.to_owned()),
            None => None,
        };
        return (result, attempt, decision);
    }
}

type Finished = (Result<RunResult, ExperimentError>, u64, Option<String>);

struct LocalState {
    queue: VecDeque<(u64, PointJob)>,
    done: HashMap<u64, Finished>,
    quit: bool,
}

struct Shared {
    state: Mutex<LocalState>,
    ready: Condvar,
}

/// The in-process backend: a fixed pool of OS threads draining a shared
/// job queue. Jobs run under [`execute_point`] with the sweep's shutdown
/// token attached, so SIGINT interrupts in-flight points at their next
/// sampling boundary exactly as the pre-backend orchestrator did.
pub struct LocalThreadBackend {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shutdown: CancelToken,
    next_handle: u64,
}

impl LocalThreadBackend {
    /// Spawns a pool of `threads` workers (at least one) wired to the
    /// sweep's `shutdown` token.
    pub fn new(threads: usize, shutdown: CancelToken) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(LocalState {
                queue: VecDeque::new(),
                done: HashMap::new(),
                quit: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let shutdown = shutdown.clone();
                std::thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().expect("no poisoned backend state");
                        loop {
                            if state.quit {
                                return;
                            }
                            if let Some(job) = state.queue.pop_front() {
                                break job;
                            }
                            state = shared.ready.wait(state).expect("no poisoned backend state");
                        }
                    };
                    let (id, job) = job;
                    let finished = execute_point(&job, &shutdown);
                    shared
                        .state
                        .lock()
                        .expect("no poisoned backend state")
                        .done
                        .insert(id, finished);
                })
            })
            .collect();
        LocalThreadBackend {
            shared,
            workers,
            shutdown,
            next_handle: 0,
        }
    }
}

impl WorkerBackend for LocalThreadBackend {
    fn submit(&mut self, mut job: PointJob) -> Result<WorkHandle, BackendError> {
        // Attach the sweep's shutdown token so an in-flight run stops at
        // its next sampling boundary; an uncancelled token never perturbs
        // the simulation.
        job.experiment = job.experiment.cancel_token(self.shutdown.clone());
        let id = self.next_handle;
        self.next_handle += 1;
        self.shared
            .state
            .lock()
            .expect("no poisoned backend state")
            .queue
            .push_back((id, job));
        self.shared.ready.notify_one();
        Ok(WorkHandle(id))
    }

    fn poll(&mut self, handle: WorkHandle) -> Result<PointStatus, BackendError> {
        let mut state = self.shared.state.lock().expect("no poisoned backend state");
        match state.done.remove(&handle.0) {
            Some((result, attempts, retry_decision)) => Ok(PointStatus::Done {
                result,
                attempts,
                retry_decision,
            }),
            None => Ok(PointStatus::Pending),
        }
    }

    fn capacity(&self) -> usize {
        self.workers.len()
    }

    fn cancel(&mut self) {
        // The shutdown token is shared with every job; tripping it (the
        // orchestrator already has) is the whole mechanism.
        self.shutdown.cancel();
    }

    fn forget(&mut self, handle: WorkHandle) {
        // Drop the job if still queued and discard any finished result; a
        // job already running simply completes into the void.
        let mut state = self.shared.state.lock().expect("no poisoned backend state");
        state.queue.retain(|(id, _)| *id != handle.0);
        state.done.remove(&handle.0);
    }
}

impl Drop for LocalThreadBackend {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("no poisoned backend state")
            .quit = true;
        self.ready_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl LocalThreadBackend {
    fn ready_all(&self) {
        self.shared.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::topology::Topology;
    use wormsim::AlgorithmKind;

    fn tiny_job(index: usize) -> PointJob {
        let experiment = Experiment::new(Topology::torus(&[6, 6]), AlgorithmKind::Ecube)
            .offered_load(0.1)
            .quick()
            .seed(5);
        PointJob {
            point_hash: experiment.point_hash(),
            experiment,
            index,
            retries: 0,
            inject_panic: false,
            resumed_from: None,
        }
    }

    #[test]
    fn local_backend_runs_jobs_to_done() {
        let mut backend = LocalThreadBackend::new(2, CancelToken::new());
        assert_eq!(backend.capacity(), 2);
        let handles: Vec<WorkHandle> = (0..3)
            .map(|i| backend.submit(tiny_job(i)).unwrap())
            .collect();
        let mut done = 0;
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut pending: Vec<WorkHandle> = handles;
        while !pending.is_empty() {
            assert!(Instant::now() < deadline, "backend hung");
            pending.retain(
                |&h| match backend.poll(h).expect("local poll never errors") {
                    PointStatus::Pending => true,
                    PointStatus::Done {
                        result,
                        attempts,
                        retry_decision,
                    } => {
                        assert_eq!(attempts, 1);
                        assert_eq!(retry_decision, None);
                        let r = result.expect("valid config");
                        assert!(r.outcome.has_statistics());
                        done += 1;
                        false
                    }
                },
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(done, 3);
    }

    #[test]
    fn injected_panic_is_contained_and_retried() {
        let mut backend = LocalThreadBackend::new(1, CancelToken::new());
        let mut job = tiny_job(7);
        job.inject_panic = true;
        job.retries = 2;
        let handle = backend.submit(job).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "backend hung");
            match backend.poll(handle).unwrap() {
                PointStatus::Pending => std::thread::sleep(Duration::from_millis(5)),
                PointStatus::Done {
                    result, attempts, ..
                } => {
                    assert_eq!(attempts, 3, "1 try + 2 retries");
                    let r = result.expect("panic becomes a Harness result");
                    let RunOutcome::Harness(info) = &r.outcome else {
                        panic!("expected Harness outcome, got {:?}", r.outcome);
                    };
                    assert!(info.message.contains("point 7"), "got: {}", info.message);
                    break;
                }
            }
        }
    }

    #[test]
    fn backoff_sleep_returns_early_on_cancel() {
        let token = CancelToken::new();
        let tripper = token.clone();
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tripper.cancel();
        });
        cancellable_sleep(10_000, &token);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "sleep must not wait out the full 10s backoff"
        );
        handle.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let a = backoff_ms("abc123", 1);
        assert_eq!(a, backoff_ms("abc123", 1), "same inputs, same backoff");
        assert_ne!(
            backoff_ms("abc123", 1),
            backoff_ms("def456", 1),
            "different points jitter differently"
        );
        for attempt in 1..=10 {
            let ms = backoff_ms("abc123", attempt);
            assert!((25..=25 * 32 + 63).contains(&(ms as usize)), "got {ms}");
        }
    }
}

//! Shared harness for regenerating the paper's figures.
//!
//! Runs [`FigureSpec`] sweeps in parallel across worker threads, prints
//! paper-style latency/throughput series, and records CSV files that
//! EXPERIMENTS.md references.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use wormsim::presets::FigureSpec;
use wormsim::{
    format_results_table, format_sweep_csv, ExperimentError, MeasurementSchedule, ObserveConfig,
    RunResult,
};

pub mod cli;
pub mod plot;
mod reference;
pub use reference::{paper_reference, PaperClaim};

/// Command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Measurement schedule (`--quick` selects the short one).
    pub schedule: MeasurementSchedule,
    /// Base RNG seed (`--seed N`).
    pub seed: u64,
    /// Output directory for CSV files (`--out DIR`, default `results`).
    pub out_dir: String,
    /// Worker threads (`--threads N`, default: all cores).
    pub threads: usize,
    /// Directory for per-run sample streams and manifests
    /// (`--observe DIR`); `None` disables them.
    pub observe_dir: Option<String>,
    /// Directory for per-run JSONL event traces (`--trace-out DIR`);
    /// `None` disables them.
    pub trace_dir: Option<String>,
    /// Cycles between time-series samples (`--sample-every N`, 0 = the
    /// observe layer's default stride).
    pub sample_every: u64,
    /// Per-run simulated-cycle cap (`--cycle-budget N`); runs cut short
    /// record `RunOutcome::BudgetExceeded`. `None` disables the cap.
    pub cycle_budget: Option<u64>,
    /// Per-run wall-clock cap in seconds (`--wall-budget SECS`), checked
    /// between sampling periods. `None` disables the cap.
    pub wall_budget_secs: Option<f64>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            schedule: MeasurementSchedule::default(),
            seed: 1993,
            out_dir: "results".to_owned(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            observe_dir: None,
            trace_dir: None,
            sample_every: 0,
            cycle_budget: None,
            wall_budget_secs: None,
        }
    }
}

impl HarnessOptions {
    /// Parses `--quick`, `--saturation`, `--seed N`, `--out DIR`,
    /// `--threads N`, `--observe DIR`, `--trace-out DIR`,
    /// `--sample-every N` from `std::env::args`, exiting with a usage
    /// message on stderr (status 2) for malformed input.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            eprintln!(
                "usage: [--quick|--saturation] [--seed N] [--out DIR] [--threads N] \
                 [--observe DIR] [--trace-out DIR] [--sample-every N] \
                 [--cycle-budget N] [--wall-budget SECS]"
            );
            std::process::exit(2);
        })
    }

    /// Parses an argument iterator (program name already stripped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// malformed integers, and the nonsensical `--threads 0`.
    pub fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = HarnessOptions::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.schedule = MeasurementSchedule::quick(),
                "--saturation" => options.schedule = MeasurementSchedule::saturation(),
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    options.seed = cli::parse_seed(&v)?;
                }
                "--out" => {
                    options.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    options.threads = cli::parse_threads(&v)?;
                }
                "--observe" => {
                    options.observe_dir = Some(args.next().ok_or("--observe needs a directory")?);
                }
                "--trace-out" => {
                    options.trace_dir = Some(args.next().ok_or("--trace-out needs a directory")?);
                }
                "--sample-every" => {
                    let v = args.next().ok_or("--sample-every needs a value")?;
                    options.sample_every = cli::parse_sample_every(&v)?;
                }
                "--cycle-budget" => {
                    let v = args.next().ok_or("--cycle-budget needs a value")?;
                    options.cycle_budget = Some(cli::parse_cycle_budget(&v)?);
                }
                "--wall-budget" => {
                    let v = args.next().ok_or("--wall-budget needs a value")?;
                    options.wall_budget_secs = Some(cli::parse_wall_budget(&v)?);
                }
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected --quick, --saturation, --seed N, \
                         --out DIR, --threads N, --observe DIR, --trace-out DIR, --sample-every N, \
                         --cycle-budget N, --wall-budget SECS)"
                    ))
                }
            }
        }
        Ok(options)
    }
}

/// A figure sweep failure: the first experiment (lowest index in the
/// sweep's deterministic algorithm-major, load-minor order) whose run
/// returned an error.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepError {
    /// Index of the failed point in the sweep's deterministic order.
    pub index: usize,
    /// Algorithm of the failed point.
    pub algorithm: String,
    /// Offered load of the failed point.
    pub offered_load: f64,
    /// What went wrong.
    pub source: ExperimentError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep point {} ({} at offered load {}) failed: {}",
            self.index, self.algorithm, self.offered_load, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Runs every `(algorithm, load)` experiment of a figure in parallel and
/// returns results in deterministic order (algorithm-major, load-minor).
///
/// # Errors
///
/// The first failing experiment wins: its [`SweepError`] is returned,
/// unclaimed points are cancelled via a shared flag (points already
/// running finish but their results are dropped). Workers never panic on
/// experiment failure.
pub fn run_figure(
    spec: &FigureSpec,
    options: &HarnessOptions,
) -> Result<Vec<RunResult>, SweepError> {
    let mut experiments = wormsim::presets::experiments_for(spec, options.schedule, options.seed);
    if options.observe_dir.is_some() || options.trace_dir.is_some() {
        let config = ObserveConfig {
            out_dir: options.observe_dir.as_deref().map(Into::into),
            trace_dir: options.trace_dir.as_deref().map(Into::into),
            sample_every: options.sample_every,
            prefix: spec.id.to_owned(),
        };
        experiments = experiments
            .into_iter()
            .map(|e| e.observe(config.clone()))
            .collect();
    }
    if options.cycle_budget.is_some() || options.wall_budget_secs.is_some() {
        experiments = experiments
            .into_iter()
            .map(|e| {
                e.cycle_budget(options.cycle_budget)
                    .wall_budget_secs(options.wall_budget_secs)
            })
            .collect();
    }
    let total = experiments.len();
    let done = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let failure: Mutex<Option<SweepError>> = Mutex::new(None);
    let started = std::time::Instant::now();
    let slots: Vec<Mutex<Option<RunResult>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..options.threads.max(1) {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                match experiments[i].run() {
                    Ok(result) => {
                        *slots[i].lock().expect("no poisoned slots") = Some(result);
                    }
                    Err(e) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let error = SweepError {
                            index: i,
                            algorithm: experiments[i].algorithm_kind().name().to_owned(),
                            offered_load: experiments[i].offered_load_value(),
                            source: e,
                        };
                        let mut first = failure.lock().expect("no poisoned failure slot");
                        if first.as_ref().is_none_or(|f| i < f.index) {
                            *first = Some(error);
                        }
                        break;
                    }
                }
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                let remaining = total - completed;
                if remaining == 0 {
                    eprint!("\r  {completed}/{total} points              ");
                } else {
                    // Average seconds per completed point predicts the rest.
                    let eta = started.elapsed().as_secs_f64() / completed as f64 * remaining as f64;
                    eprint!("\r  {completed}/{total} points (ETA {eta:.0}s)   ");
                }
                let _ = std::io::stderr().flush();
            });
        }
    });
    eprintln!();

    if let Some(error) = failure.into_inner().expect("no poisoned failure slot") {
        return Err(error);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slots")
                .expect("all slots filled")
        })
        .collect())
}

/// Prints the figure in the paper's two-panel form (latency vs offered
/// load, achieved vs offered throughput), one series per algorithm.
pub fn print_figure(spec: &FigureSpec, results: &[RunResult]) {
    println!("== {} ({}) ==", spec.title, spec.id);
    let loads = &spec.loads;
    println!("\nAverage latency (cycles) vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.1}", r.latency.mean());
        }
        println!();
    }
    println!("\nAchieved channel utilization vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.4}", r.achieved_utilization);
        }
        println!();
    }
    println!("\nPeak achieved utilization per algorithm:");
    for (ai, algo) in spec.algorithms.iter().enumerate() {
        let series = &results[ai * loads.len()..(ai + 1) * loads.len()];
        let best = series
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("finite")
            })
            .expect("non-empty series");
        println!(
            "  {:>6}: {:.3} (at offered {:.2})",
            algo.name(),
            best.achieved_utilization,
            best.offered_load
        );
    }
    // ASCII renditions of the two panels, in the paper's style.
    let latency_series: Vec<plot::Series> = spec
        .algorithms
        .iter()
        .enumerate()
        .map(|(ai, algo)| plot::Series {
            label: algo.name().to_owned(),
            marker: plot::MARKERS[ai % plot::MARKERS.len()],
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].latency.mean()))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Average latency (cycles)", &latency_series, 64, 18)
    );
    let util_series: Vec<plot::Series> = latency_series
        .iter()
        .enumerate()
        .map(|(ai, s)| plot::Series {
            label: s.label.clone(),
            marker: s.marker,
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].achieved_utilization))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Achieved channel utilization", &util_series, 64, 18)
    );
    println!("{}", format_results_table(results));
}

/// Prints the paper's quoted numbers next to ours for the figure.
pub fn print_paper_comparison(spec_id: &str, results: &[RunResult]) {
    let claims = paper_reference(spec_id);
    if claims.is_empty() {
        return;
    }
    println!("Paper vs measured:");
    for claim in claims {
        let measured = (claim.measure)(results);
        println!(
            "  {:<62} paper {:>6}  measured {:>7.3}",
            claim.what, claim.paper_value, measured
        );
    }
    println!();
}

/// Writes the sweep CSV under the output directory, returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(spec_id: &str, results: &[RunResult], out_dir: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{spec_id}.csv"));
    std::fs::write(&path, format_sweep_csv(results))?;
    Ok(path.display().to_string())
}

/// Peak achieved utilization of one algorithm's series.
pub fn peak_utilization(results: &[RunResult], algorithm: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .map(|r| r.achieved_utilization)
        .fold(0.0, f64::max)
}

/// Latency of one algorithm at the offered load closest to `load`.
pub fn latency_at(results: &[RunResult], algorithm: &str, load: f64) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .min_by(|a, b| {
            (a.offered_load - load)
                .abs()
                .partial_cmp(&(b.offered_load - load).abs())
                .expect("finite")
        })
        .map_or(f64::NAN, |r| r.latency.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::presets;

    fn parse(args: &[&str]) -> Result<HarnessOptions, String> {
        HarnessOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn options_parse_well_formed_args() {
        let options = parse(&["--quick", "--seed", "7", "--threads", "3", "--out", "o"]).unwrap();
        assert_eq!(options.seed, 7);
        assert_eq!(options.threads, 3);
        assert_eq!(options.out_dir, "o");
    }

    #[test]
    fn options_parse_observability_flags() {
        let options = parse(&[
            "--observe",
            "obs",
            "--trace-out",
            "traces",
            "--sample-every",
            "250",
        ])
        .unwrap();
        assert_eq!(options.observe_dir.as_deref(), Some("obs"));
        assert_eq!(options.trace_dir.as_deref(), Some("traces"));
        assert_eq!(options.sample_every, 250);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.observe_dir, None);
        assert_eq!(defaults.trace_dir, None);
        assert_eq!(defaults.sample_every, 0);
    }

    #[test]
    fn options_reject_zero_threads() {
        assert!(parse(&["--threads", "0"]).is_err());
    }

    #[test]
    fn options_reject_bad_sample_every() {
        assert!(parse(&["--sample-every", "0"]).is_err());
        assert!(parse(&["--sample-every", "soon"]).is_err());
        assert!(parse(&["--sample-every"]).is_err());
        assert!(parse(&["--observe"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn options_reject_malformed_integers() {
        assert!(parse(&["--threads", "three"]).is_err());
        assert!(parse(&["--threads", "-1"]).is_err());
        assert!(parse(&["--seed", "2e9"]).is_err());
        assert!(parse(&["--seed", "0xbeef"]).is_err());
    }

    #[test]
    fn options_reject_missing_values_and_unknown_flags() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--warp-speed"]).is_err());
    }

    #[test]
    fn harness_runs_a_tiny_figure() {
        // A reduced fig3: two algorithms, two loads, quick schedule.
        let mut spec = presets::fig3();
        spec.loads = vec![0.1, 0.3];
        spec.algorithms = vec![
            wormsim::AlgorithmKind::Ecube,
            wormsim::AlgorithmKind::PositiveHop,
        ];
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: std::env::temp_dir()
                .join("wormsim-test")
                .display()
                .to_string(),
            threads: 4,
            ..HarnessOptions::default()
        };
        let results = run_figure(&spec, &options).expect("all points run");
        assert_eq!(results.len(), 4);
        // Ordering: algorithm-major, load-minor.
        assert_eq!(results[0].algorithm, "ecube");
        assert!((results[0].offered_load - 0.1).abs() < 1e-12);
        assert_eq!(results[3].algorithm, "phop");
        assert!((results[3].offered_load - 0.3).abs() < 1e-12);
        let path = write_csv("test", &results, &options.out_dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(peak_utilization(&results, "phop") > 0.2);
        assert!(latency_at(&results, "ecube", 0.1) > 15.0);
    }

    #[test]
    fn sweep_error_names_the_first_failing_point() {
        // Load 9.0 is invalid, so the second point of each series fails.
        // One worker thread makes "first error wins" exact: index 1.
        let mut spec = presets::fig3();
        spec.loads = vec![0.1, 9.0];
        spec.algorithms = vec![
            wormsim::AlgorithmKind::Ecube,
            wormsim::AlgorithmKind::PositiveHop,
        ];
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            threads: 1,
            ..HarnessOptions::default()
        };
        let error = run_figure(&spec, &options).expect_err("invalid load must fail the sweep");
        assert_eq!(error.index, 1);
        assert_eq!(error.algorithm, "ecube");
        assert!((error.offered_load - 9.0).abs() < 1e-12);
        assert!(matches!(
            error.source,
            wormsim::ExperimentError::InvalidLoad { .. }
        ));
        let message = error.to_string();
        assert!(message.contains("ecube"), "got: {message}");
        assert!(message.contains('9'), "got: {message}");
        use std::error::Error as _;
        assert!(error.source().is_some());
    }
}

//! Shared harness for regenerating the paper's figures.
//!
//! Runs [`FigureSpec`] sweeps in parallel across worker threads, prints
//! paper-style latency/throughput series, and records CSV files that
//! EXPERIMENTS.md references.
//!
//! The harness is crash-safe: every completed point is checkpointed to a
//! [`Journal`] (atomic JSONL, keyed by the point's configuration digest),
//! worker panics are contained to the point that raised them, transient
//! outcomes retry with seed-jittered backoff, and SIGINT drains in-flight
//! points before flushing partial results and printing a ready-to-paste
//! resume command. See `docs/ROBUSTNESS.md`.

use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use wormsim::presets::FigureSpec;
use wormsim::stats::{ConfidenceInterval, ConvergenceStatus};
use wormsim::topology::Topology;
use wormsim::{
    format_results_table, format_sweep_csv, CancelToken, Experiment, ExperimentError,
    MeasurementSchedule, ObserveConfig, PanicInfo, RunOutcome, RunResult,
};

pub mod cli;
mod journal;
pub mod plot;
mod reference;
pub use journal::{Journal, JournalEntry, JournalError};
pub use reference::{paper_reference, PaperClaim};

/// The token the installed SIGINT handler trips. Process-global because a
/// signal handler has no other way to reach session state.
static SIGINT_TOKEN: OnceLock<CancelToken> = OnceLock::new();

const SIGINT: i32 = 2;

extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store through the
    // token. No allocation, no locks, no I/O.
    if let Some(token) = SIGINT_TOKEN.get() {
        token.cancel();
    }
}

extern "C" {
    // Vendored libc-free binding: `signal(2)` is in every libc this
    // simulator builds against, and the harness only needs this one hook.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Routes SIGINT (Ctrl-C) to `token` instead of killing the process, so a
/// sweep can stop dispatching, drain in-flight points, flush the journal
/// and partial CSVs, and print a resume command. First caller wins: the
/// token registered first stays registered for the process lifetime.
pub fn install_sigint_handler(token: &CancelToken) {
    let _ = SIGINT_TOKEN.set(token.clone());
    // SAFETY: `on_sigint` is async-signal-safe (a single atomic store) and
    // has the exact `extern "C" fn(i32)` shape signal(2) expects; the
    // handler address stays valid for the process lifetime.
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

/// Command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Measurement schedule (`--quick` selects the short one).
    pub schedule: MeasurementSchedule,
    /// Topology override (`--topo torus:32x32`, `--topo 8^3`, ...); `None`
    /// keeps each figure's own network (the paper's 16×16 torus), so
    /// default goldens and resume journals stay bit-identical.
    pub topology: Option<Topology>,
    /// Base RNG seed (`--seed N`).
    pub seed: u64,
    /// Output directory for CSV files (`--out DIR`, default `results`).
    pub out_dir: String,
    /// Worker threads (`--threads N`, default: all cores).
    pub threads: usize,
    /// Directory for per-run sample streams and manifests
    /// (`--observe DIR`); `None` disables them.
    pub observe_dir: Option<String>,
    /// Directory for per-run JSONL event traces (`--trace-out DIR`);
    /// `None` disables them.
    pub trace_dir: Option<String>,
    /// Cycles between time-series samples (`--sample-every N`, 0 = the
    /// observe layer's default stride).
    pub sample_every: u64,
    /// Deep telemetry (`--metrics`): per-channel/per-VC-class counters,
    /// latency histograms, the phase profiler, and per-run
    /// `metrics.json` + `heatmap.csv` exports. Requires `--observe`.
    pub metrics: bool,
    /// Per-run simulated-cycle cap (`--cycle-budget N`); runs cut short
    /// record `RunOutcome::BudgetExceeded`. `None` disables the cap.
    pub cycle_budget: Option<u64>,
    /// Per-run wall-clock cap in seconds (`--wall-budget SECS`), checked
    /// between sampling periods. `None` disables the cap.
    pub wall_budget_secs: Option<f64>,
    /// Journal to resume from (`--resume FILE`): points already recorded
    /// there are skipped and their results spliced back in bit-identically;
    /// new completions append to the same file.
    pub resume: Option<String>,
    /// Extra attempts for points with transient outcomes — budget trips
    /// and harness panics (`--retries N`, default 1). Retries reuse the
    /// identical seed; only the backoff delay between attempts is jittered.
    pub retries: u32,
    /// Test hook (`--fail-after-points N`): simulate a crash by exiting
    /// the process (status 3) once N points have been journaled this run,
    /// without flushing anything else. Exercises the resume path.
    pub fail_after_points: Option<usize>,
    /// Test hook (not CLI-exposed): panic inside the worker at this point
    /// index, exercising per-point panic isolation.
    pub inject_panic: Option<usize>,
    /// Cooperative shutdown flag. Binaries route SIGINT here via
    /// [`install_sigint_handler`]; tests trip it directly.
    pub shutdown: CancelToken,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            schedule: MeasurementSchedule::default(),
            topology: None,
            seed: 1993,
            out_dir: "results".to_owned(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            observe_dir: None,
            trace_dir: None,
            sample_every: 0,
            metrics: false,
            cycle_budget: None,
            wall_budget_secs: None,
            resume: None,
            retries: 1,
            fail_after_points: None,
            inject_panic: None,
            shutdown: CancelToken::new(),
        }
    }
}

impl HarnessOptions {
    /// Parses `--quick`, `--saturation`, `--seed N`, `--out DIR`,
    /// `--threads N`, `--observe DIR`, `--trace-out DIR`,
    /// `--sample-every N` from `std::env::args`, exiting with a usage
    /// message on stderr (status 2) for malformed input.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            eprintln!(
                "usage: [--quick|--saturation] [--topo T] [--seed N] [--out DIR] [--threads N] \
                 [--observe DIR] [--trace-out DIR] [--sample-every N] [--metrics] \
                 [--cycle-budget N] [--wall-budget SECS] [--resume JOURNAL] [--retries N]"
            );
            std::process::exit(2);
        })
    }

    /// Parses an argument iterator (program name already stripped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// malformed integers, and the nonsensical `--threads 0`.
    pub fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = HarnessOptions::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.schedule = MeasurementSchedule::quick(),
                "--saturation" => options.schedule = MeasurementSchedule::saturation(),
                "--topo" => {
                    let v = args.next().ok_or("--topo needs a value")?;
                    options.topology = Some(cli::parse_topology(&v)?);
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    options.seed = cli::parse_seed(&v)?;
                }
                "--out" => {
                    options.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    options.threads = cli::parse_threads(&v)?;
                }
                "--observe" => {
                    options.observe_dir = Some(args.next().ok_or("--observe needs a directory")?);
                }
                "--trace-out" => {
                    options.trace_dir = Some(args.next().ok_or("--trace-out needs a directory")?);
                }
                "--sample-every" => {
                    let v = args.next().ok_or("--sample-every needs a value")?;
                    options.sample_every = cli::parse_sample_every(&v)?;
                }
                "--metrics" => options.metrics = true,
                "--cycle-budget" => {
                    let v = args.next().ok_or("--cycle-budget needs a value")?;
                    options.cycle_budget = Some(cli::parse_cycle_budget(&v)?);
                }
                "--wall-budget" => {
                    let v = args.next().ok_or("--wall-budget needs a value")?;
                    options.wall_budget_secs = Some(cli::parse_wall_budget(&v)?);
                }
                "--resume" => {
                    options.resume = Some(args.next().ok_or("--resume needs a journal file")?);
                }
                "--retries" => {
                    let v = args.next().ok_or("--retries needs a value")?;
                    options.retries = cli::parse_retries(&v)?;
                }
                "--fail-after-points" => {
                    let v = args.next().ok_or("--fail-after-points needs a value")?;
                    options.fail_after_points = Some(cli::parse_fail_after(&v)?);
                }
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected --quick, --saturation, --topo T, \
                         --seed N, --out DIR, --threads N, --observe DIR, --trace-out DIR, \
                         --sample-every N, --metrics, --cycle-budget N, --wall-budget SECS, \
                         --resume JOURNAL, --retries N)"
                    ))
                }
            }
        }
        if options.metrics && options.observe_dir.is_none() {
            return Err("--metrics needs --observe DIR (metrics export to the observe dir)".into());
        }
        Ok(options)
    }

    /// The `--topo` override, or the paper's default 16×16 torus.
    ///
    /// For binaries that study a single network rather than a
    /// [`FigureSpec`] sweep.
    pub fn topology_or_paper(&self) -> Topology {
        self.topology
            .clone()
            .unwrap_or_else(wormsim::presets::paper_topology)
    }
}

/// A figure sweep failure: the first experiment (lowest index in the
/// sweep's deterministic algorithm-major, load-minor order) whose run
/// returned an error.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepError {
    /// Index of the failed point in the sweep's deterministic order.
    pub index: usize,
    /// Algorithm of the failed point.
    pub algorithm: String,
    /// Offered load of the failed point.
    pub offered_load: f64,
    /// What went wrong.
    pub source: ExperimentError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep point {} ({} at offered load {}) failed: {}",
            self.index, self.algorithm, self.offered_load, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Any failure of the sweep *machinery*, as opposed to the simulation: a
/// failing point configuration or a journal that cannot be read/written.
#[derive(Clone, Debug, PartialEq)]
pub enum HarnessError {
    /// A point's configuration was rejected (see [`SweepError`]).
    Sweep(SweepError),
    /// The run journal could not be loaded or persisted. Fatal by design:
    /// continuing without checkpoints would silently void the crash-safety
    /// contract.
    Journal(JournalError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Sweep(e) => e.fmt(f),
            HarnessError::Journal(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Sweep(e) => Some(e),
            HarnessError::Journal(e) => Some(e),
        }
    }
}

impl From<SweepError> for HarnessError {
    fn from(e: SweepError) -> Self {
        HarnessError::Sweep(e)
    }
}

impl From<JournalError> for HarnessError {
    fn from(e: JournalError) -> Self {
        HarnessError::Journal(e)
    }
}

/// How a figure sweep ended.
#[derive(Debug)]
pub enum FigureRun {
    /// Every point ran (or was resumed); results in deterministic order
    /// (algorithm-major, load-minor).
    Complete(Vec<RunResult>),
    /// Shutdown tripped mid-sweep. In-flight points were drained, every
    /// completed point is journaled, and `partial` holds the completed
    /// results in sweep order (missing points simply absent).
    Interrupted {
        /// Results of the points that completed before shutdown.
        partial: Vec<RunResult>,
        /// Completed (journaled) point count.
        completed: usize,
        /// Total points in the sweep.
        total: usize,
        /// The journal to pass back via `--resume`.
        journal: PathBuf,
    },
}

/// One sweep's raw per-point outcomes from [`run_experiments`].
#[derive(Debug)]
pub struct ExperimentsRun {
    /// Per point, in input order: `None` if the point never ran (shutdown
    /// before dispatch, or cancelled by an earlier failure in fail-fast
    /// mode), otherwise the run result or its configuration error.
    pub outcomes: Vec<Option<Result<RunResult, ExperimentError>>>,
    /// Attempts each completed point took (1 = first try; 0 if never ran).
    pub attempts: Vec<u64>,
    /// Whether the shutdown token tripped before every point completed.
    pub interrupted: bool,
    /// Points spliced in from the resume journal rather than re-run.
    pub resumed: usize,
    /// Where the journal lives; pass via `--resume` to continue.
    pub journal: PathBuf,
}

/// Seed-jittered backoff before retry `attempt` of the point with digest
/// `point_hash`: exponential base so repeated transients spread out, plus
/// a per-point jitter so a thundering herd of failed points does not
/// retry in lockstep. Deterministic in (hash, attempt) — no wall clock,
/// no global RNG.
fn backoff_ms(point_hash: &str, attempt: u64) -> u64 {
    let digest = wormsim::observe::fnv1a_hex(&format!("{point_hash}:retry:{attempt}"));
    let jitter = u64::from_str_radix(&digest[..4], 16).unwrap_or(0) % 64;
    (25u64 << attempt.min(5)) + jitter
}

/// Renders a worker panic into a placeholder [`RunResult`] carrying
/// [`RunOutcome::Harness`], so the surrounding sweep records the failure
/// and keeps running instead of poisoning the pool.
fn panic_result(experiment: &Experiment, payload: &(dyn std::any::Any + Send)) -> RunResult {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    RunResult {
        algorithm: experiment.algorithm_kind().name().to_owned(),
        traffic: experiment.traffic_config().to_string(),
        offered_load: experiment.offered_load_value(),
        injection_rate: 0.0,
        latency: ConfidenceInterval::new(0.0, f64::INFINITY),
        latency_percentiles: [0, 0, 0],
        latency_max: 0,
        class_latencies: Vec::new(),
        achieved_utilization: 0.0,
        delivery_rate: 0.0,
        acceptance_rate: 0.0,
        refused_fraction: 0.0,
        messages_measured: 0,
        convergence: ConvergenceStatus::NeedMoreSamples,
        samples: 0,
        cycles_simulated: 0,
        wall_seconds: 0.0,
        cycles_per_sec: 0.0,
        outcome: RunOutcome::Harness(PanicInfo { message }),
        dropped_events: 0,
        deadlock: None,
        livelock: None,
    }
}

/// Runs one point with panic isolation and bounded retries. Panics become
/// [`RunOutcome::Harness`] results; transient outcomes (budget trips,
/// panics) retry up to `options.retries` extra times with seed-jittered
/// backoff, reusing the identical simulation seed. Configuration errors
/// never retry — they are deterministic. Returns the final result and the
/// number of attempts consumed.
fn run_point(
    experiment: &Experiment,
    index: usize,
    point_hash: &str,
    options: &HarnessOptions,
) -> (Result<RunResult, ExperimentError>, u64) {
    let max_attempts = u64::from(options.retries).saturating_add(1);
    let mut attempt = 1u64;
    loop {
        let attempt_experiment = experiment
            .clone()
            .attempt(attempt as u32)
            .resumed_from(options.resume.clone());
        let run = catch_unwind(AssertUnwindSafe(|| {
            if options.inject_panic == Some(index) {
                panic!("injected harness panic at point {index}");
            }
            attempt_experiment.run()
        }));
        let result = match run {
            Ok(inner) => inner,
            Err(payload) => Ok(panic_result(experiment, payload.as_ref())),
        };
        let transient = matches!(&result, Ok(r) if r.outcome.is_transient());
        if transient && attempt < max_attempts && !options.shutdown.is_cancelled() {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms(
                point_hash, attempt,
            )));
            attempt += 1;
            continue;
        }
        return (result, attempt);
    }
}

/// Orchestrates an arbitrary experiment list with the full robustness
/// stack: journaled checkpoints (skipping points already recorded when
/// `options.resume` is set), per-point panic isolation, bounded retries
/// with backoff, and cooperative shutdown that drains in-flight points.
///
/// `journal_name` names the journal file created under `options.out_dir`
/// when not resuming. With `fail_fast`, the first point whose
/// *configuration* is rejected cancels the remaining points (figure
/// sweeps: one bad config means the whole figure is wrong); without it,
/// configuration errors are recorded per point and the sweep continues
/// (fault sweeps: a plan that disconnects the network is data, not a bug).
///
/// # Errors
///
/// Journal I/O or parse failures. Point-level outcomes — including
/// configuration errors — are reported in the returned
/// [`ExperimentsRun`], not as `Err`.
pub fn run_experiments(
    experiments: &[Experiment],
    options: &HarnessOptions,
    journal_name: &str,
    fail_fast: bool,
) -> Result<ExperimentsRun, HarnessError> {
    let journal = match &options.resume {
        Some(path) => Journal::load(path)?,
        None => Journal::create(Path::new(&options.out_dir).join(journal_name))?,
    };
    let journal_path = journal.path().to_path_buf();
    let hashes: Vec<String> = experiments.iter().map(Experiment::point_hash).collect();

    // One worker slot: the point's outcome plus the attempts it took.
    type Slot = Option<(Result<RunResult, ExperimentError>, u64)>;
    let total = experiments.len();
    let slots: Vec<Mutex<Slot>> = (0..total).map(|_| Mutex::new(None)).collect();
    let mut resumed = 0usize;
    for (i, hash) in hashes.iter().enumerate() {
        if let Some(entry) = journal.get(hash) {
            *slots[i].lock().expect("no poisoned slots") =
                Some((Ok(entry.result.clone()), entry.attempts));
            resumed += 1;
        }
    }
    if resumed > 0 {
        eprintln!(
            "resuming: {resumed}/{total} points already journaled in {}",
            journal_path.display()
        );
    }

    let journal = Mutex::new(journal);
    let journal_failure: Mutex<Option<JournalError>> = Mutex::new(None);
    let journaled_this_run = AtomicUsize::new(0);
    let done = AtomicUsize::new(resumed);
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let started = std::time::Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..options.threads.max(1) {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Relaxed) || options.shutdown.is_cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                if slots[i].lock().expect("no poisoned slots").is_some() {
                    continue; // resumed from the journal
                }
                let (result, attempts) = run_point(&experiments[i], i, &hashes[i], options);
                match &result {
                    Ok(r) if r.outcome == RunOutcome::Interrupted => {
                        // Shutdown drained this point mid-run: its partial
                        // statistics are not data. Leave the slot empty so
                        // a resume re-runs it from scratch.
                        continue;
                    }
                    Ok(r) => {
                        let entry = JournalEntry {
                            point_hash: hashes[i].clone(),
                            index: i,
                            attempts,
                            result: r.clone(),
                        };
                        if let Err(e) = journal.lock().expect("no poisoned journal").record(entry) {
                            aborted.store(true, Ordering::Relaxed);
                            let mut failure =
                                journal_failure.lock().expect("no poisoned failure slot");
                            if failure.is_none() {
                                *failure = Some(e);
                            }
                            break;
                        }
                        let journaled = journaled_this_run.fetch_add(1, Ordering::Relaxed) + 1;
                        if options
                            .fail_after_points
                            .is_some_and(|limit| journaled >= limit)
                        {
                            // Crash simulation for the resume tests: die
                            // hard, right now, leaving only the journal.
                            eprintln!(
                                "\nfail-after-points: simulating a crash after {journaled} \
                                 journaled points"
                            );
                            std::process::exit(3);
                        }
                    }
                    Err(_) if fail_fast => {
                        aborted.store(true, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
                *slots[i].lock().expect("no poisoned slots") = Some((result, attempts));
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                let remaining = total - completed;
                if remaining == 0 {
                    eprint!("\r  {completed}/{total} points              ");
                } else {
                    // Average seconds per completed point predicts the rest.
                    let fresh = completed.saturating_sub(resumed).max(1);
                    let eta = started.elapsed().as_secs_f64() / fresh as f64 * remaining as f64;
                    eprint!("\r  {completed}/{total} points (ETA {eta:.0}s)   ");
                }
                let _ = std::io::stderr().flush();
            });
        }
    });
    eprintln!();

    if let Some(error) = journal_failure
        .into_inner()
        .expect("no poisoned failure slot")
    {
        return Err(error.into());
    }
    let mut outcomes = Vec::with_capacity(total);
    let mut attempts = Vec::with_capacity(total);
    for slot in slots {
        match slot.into_inner().expect("no poisoned slots") {
            Some((result, n)) => {
                outcomes.push(Some(result));
                attempts.push(n);
            }
            None => {
                outcomes.push(None);
                attempts.push(0);
            }
        }
    }
    let interrupted = outcomes.iter().any(Option::is_none) && !aborted.load(Ordering::Relaxed);
    Ok(ExperimentsRun {
        outcomes,
        attempts,
        interrupted,
        resumed,
        journal: journal_path,
    })
}

/// Runs every `(algorithm, load)` experiment of a figure in parallel with
/// the full robustness stack (see [`run_experiments`]) and returns results
/// in deterministic order (algorithm-major, load-minor).
///
/// # Errors
///
/// The first failing experiment wins: its [`SweepError`] is returned and
/// unclaimed points are cancelled (points already running finish but their
/// results are dropped). Journal failures surface as
/// [`HarnessError::Journal`]. Worker panics do not fail the sweep — they
/// are recorded per point as [`RunOutcome::Harness`].
/// Applies the `--topo` override (if any) to a figure spec: retargets the
/// network, remaps topology-dependent traffic (see
/// [`FigureSpec::with_topology`]), and drops algorithms the new topology
/// rejects (e.g. the negative-hop schemes on odd-radix tori), reporting each
/// skip on stderr.
///
/// Without an override the spec is returned untouched, so the default 16×16
/// figure outputs stay bit-identical.
///
/// # Panics
///
/// Panics if the override leaves no runnable algorithm.
pub fn apply_topology_override(spec: FigureSpec, options: &HarnessOptions) -> FigureSpec {
    let Some(topo) = &options.topology else {
        return spec;
    };
    let mut spec = spec.with_topology(topo.clone());
    spec.algorithms
        .retain(|kind| match kind.build(&spec.topology) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("skipping {kind}: {e}");
                false
            }
        });
    assert!(
        !spec.algorithms.is_empty(),
        "no selected algorithm supports {topo}"
    );
    spec
}

pub fn run_figure(spec: &FigureSpec, options: &HarnessOptions) -> Result<FigureRun, HarnessError> {
    let mut experiments = wormsim::presets::experiments_for(spec, options.schedule, options.seed);
    if options.observe_dir.is_some() || options.trace_dir.is_some() {
        let config = ObserveConfig {
            out_dir: options.observe_dir.as_deref().map(Into::into),
            trace_dir: options.trace_dir.as_deref().map(Into::into),
            sample_every: options.sample_every,
            prefix: spec.id.to_owned(),
            metrics: options.metrics,
        };
        experiments = experiments
            .into_iter()
            .map(|e| e.observe(config.clone()))
            .collect();
    }
    experiments = experiments
        .into_iter()
        .map(|e| {
            e.cycle_budget(options.cycle_budget)
                .wall_budget_secs(options.wall_budget_secs)
                .cancel_token(options.shutdown.clone())
        })
        .collect();

    let run = run_experiments(
        &experiments,
        options,
        &format!("{}.journal.jsonl", spec.id),
        true,
    )?;

    // First configuration error (lowest index) wins, as before.
    for (i, outcome) in run.outcomes.iter().enumerate() {
        if let Some(Err(e)) = outcome {
            return Err(SweepError {
                index: i,
                algorithm: experiments[i].algorithm_kind().name().to_owned(),
                offered_load: experiments[i].offered_load_value(),
                source: e.clone(),
            }
            .into());
        }
    }
    let total = run.outcomes.len();
    let results: Vec<RunResult> = run
        .outcomes
        .into_iter()
        .flatten()
        .map(|r| r.expect("errors returned above"))
        .collect();
    if results.len() < total {
        let completed = results.len();
        return Ok(FigureRun::Interrupted {
            partial: results,
            completed,
            total,
            journal: run.journal,
        });
    }
    Ok(FigureRun::Complete(results))
}

/// The command line to paste to continue an interrupted sweep: the current
/// invocation with any stale `--resume`/`--fail-after-points` stripped and
/// `--resume <journal>` appended.
pub fn resume_command(journal: &Path) -> String {
    let mut parts = Vec::new();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--resume" || arg == "--fail-after-points" {
            let _ = args.next();
            continue;
        }
        parts.push(arg);
    }
    parts.push("--resume".to_owned());
    parts.push(journal.display().to_string());
    parts.join(" ")
}

/// Runs a figure for a binary: installs the SIGINT handler, and on
/// interruption flushes a partial CSV, prints the resume command, and
/// exits 130; on error exits 1. Returns only when the sweep completed.
pub fn run_figure_or_exit(spec: &FigureSpec, options: &HarnessOptions) -> Vec<RunResult> {
    install_sigint_handler(&options.shutdown);
    match run_figure(spec, options) {
        Ok(FigureRun::Complete(results)) => results,
        Ok(FigureRun::Interrupted {
            partial,
            completed,
            total,
            journal,
        }) => {
            if !partial.is_empty() {
                match write_csv(&format!("{}.partial", spec.id), &partial, &options.out_dir) {
                    Ok(path) => eprintln!("wrote partial results to {path}"),
                    Err(e) => eprintln!("could not write partial CSV: {e}"),
                }
            }
            eprintln!("interrupted: {completed}/{total} points completed and journaled");
            eprintln!("resume with: {}", resume_command(&journal));
            std::process::exit(130);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the figure in the paper's two-panel form (latency vs offered
/// load, achieved vs offered throughput), one series per algorithm.
pub fn print_figure(spec: &FigureSpec, results: &[RunResult]) {
    println!("== {} ({}) ==", spec.title, spec.id);
    let loads = &spec.loads;
    println!("\nAverage latency (cycles) vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.1}", r.latency.mean());
        }
        println!();
    }
    println!("\nAchieved channel utilization vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.4}", r.achieved_utilization);
        }
        println!();
    }
    println!("\nPeak achieved utilization per algorithm:");
    for (ai, algo) in spec.algorithms.iter().enumerate() {
        let series = &results[ai * loads.len()..(ai + 1) * loads.len()];
        let best = series
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("finite")
            })
            .expect("non-empty series");
        println!(
            "  {:>6}: {:.3} (at offered {:.2})",
            algo.name(),
            best.achieved_utilization,
            best.offered_load
        );
    }
    // ASCII renditions of the two panels, in the paper's style.
    let latency_series: Vec<plot::Series> = spec
        .algorithms
        .iter()
        .enumerate()
        .map(|(ai, algo)| plot::Series {
            label: algo.name().to_owned(),
            marker: plot::MARKERS[ai % plot::MARKERS.len()],
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].latency.mean()))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Average latency (cycles)", &latency_series, 64, 18)
    );
    let util_series: Vec<plot::Series> = latency_series
        .iter()
        .enumerate()
        .map(|(ai, s)| plot::Series {
            label: s.label.clone(),
            marker: s.marker,
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].achieved_utilization))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Achieved channel utilization", &util_series, 64, 18)
    );
    println!("{}", format_results_table(results));
}

/// Prints the paper's quoted numbers next to ours for the figure.
pub fn print_paper_comparison(spec_id: &str, results: &[RunResult]) {
    let claims = paper_reference(spec_id);
    if claims.is_empty() {
        return;
    }
    println!("Paper vs measured:");
    for claim in claims {
        let measured = (claim.measure)(results);
        println!(
            "  {:<62} paper {:>6}  measured {:>7.3}",
            claim.what, claim.paper_value, measured
        );
    }
    println!();
}

/// Writes the sweep CSV under the output directory (atomically, via a
/// temp-file rename, so a crash mid-write never leaves a torn CSV),
/// returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(spec_id: &str, results: &[RunResult], out_dir: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{spec_id}.csv"));
    wormsim::observe::atomic_write(&path, format_sweep_csv(results))?;
    Ok(path.display().to_string())
}

/// Peak achieved utilization of one algorithm's series.
pub fn peak_utilization(results: &[RunResult], algorithm: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .map(|r| r.achieved_utilization)
        .fold(0.0, f64::max)
}

/// Latency of one algorithm at the offered load closest to `load`.
pub fn latency_at(results: &[RunResult], algorithm: &str, load: f64) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .min_by(|a, b| {
            (a.offered_load - load)
                .abs()
                .partial_cmp(&(b.offered_load - load).abs())
                .expect("finite")
        })
        .map_or(f64::NAN, |r| r.latency.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::presets;

    fn parse(args: &[&str]) -> Result<HarnessOptions, String> {
        HarnessOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn options_parse_well_formed_args() {
        let options = parse(&["--quick", "--seed", "7", "--threads", "3", "--out", "o"]).unwrap();
        assert_eq!(options.seed, 7);
        assert_eq!(options.threads, 3);
        assert_eq!(options.out_dir, "o");
    }

    #[test]
    fn options_parse_topology_override() {
        let options = parse(&["--topo", "8^3"]).unwrap();
        assert_eq!(options.topology, Some(Topology::k_ary_n_cube(8, 3)));
        assert_eq!(parse(&[]).unwrap().topology, None);
        assert!(parse(&["--topo"]).is_err());
        assert!(parse(&["--topo", "donut:9"]).is_err());
    }

    #[test]
    fn topology_override_rewrites_spec() {
        let options = parse(&["--topo", "torus:8x8"]).unwrap();
        let spec = apply_topology_override(presets::fig4(), &options);
        assert_eq!(spec.topology, Topology::torus(&[8, 8]));
        // The corner hotspot moved with the network.
        match &spec.traffic {
            wormsim::TrafficConfig::Hotspot { nodes, .. } => {
                assert_eq!(nodes, &vec![vec![7, 7]]);
            }
            other => panic!("unexpected traffic {other:?}"),
        }
        // All six paper algorithms run on an even-radix torus.
        assert_eq!(spec.algorithms.len(), 6);
        // An odd-radix torus drops the bipartite-only schemes but keeps
        // the rest runnable.
        let odd = parse(&["--topo", "torus:9x9"]).unwrap();
        let spec = apply_topology_override(presets::fig3(), &odd);
        assert!(!spec.algorithms.is_empty());
        assert!(spec.algorithms.len() < 6);
        // No override: the spec is untouched.
        let spec = apply_topology_override(presets::fig3(), &parse(&[]).unwrap());
        assert_eq!(spec.topology, presets::paper_topology());
    }

    #[test]
    fn options_parse_observability_flags() {
        let options = parse(&[
            "--observe",
            "obs",
            "--trace-out",
            "traces",
            "--sample-every",
            "250",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(options.observe_dir.as_deref(), Some("obs"));
        assert_eq!(options.trace_dir.as_deref(), Some("traces"));
        assert_eq!(options.sample_every, 250);
        assert!(options.metrics);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.observe_dir, None);
        assert_eq!(defaults.trace_dir, None);
        assert_eq!(defaults.sample_every, 0);
        assert!(!defaults.metrics);
        // Metrics export into the observe dir, so it must be set.
        let err = parse(&["--metrics"]).unwrap_err();
        assert!(err.contains("--observe"), "got: {err}");
    }

    #[test]
    fn options_reject_zero_threads() {
        assert!(parse(&["--threads", "0"]).is_err());
    }

    #[test]
    fn options_reject_bad_sample_every() {
        assert!(parse(&["--sample-every", "0"]).is_err());
        assert!(parse(&["--sample-every", "soon"]).is_err());
        assert!(parse(&["--sample-every"]).is_err());
        assert!(parse(&["--observe"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn options_reject_malformed_integers() {
        assert!(parse(&["--threads", "three"]).is_err());
        assert!(parse(&["--threads", "-1"]).is_err());
        assert!(parse(&["--seed", "2e9"]).is_err());
        assert!(parse(&["--seed", "0xbeef"]).is_err());
    }

    #[test]
    fn options_reject_missing_values_and_unknown_flags() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--warp-speed"]).is_err());
    }

    #[test]
    fn options_parse_robustness_flags() {
        let options = parse(&[
            "--resume",
            "results/fig3.journal.jsonl",
            "--retries",
            "3",
            "--fail-after-points",
            "2",
        ])
        .unwrap();
        assert_eq!(
            options.resume.as_deref(),
            Some("results/fig3.journal.jsonl")
        );
        assert_eq!(options.retries, 3);
        assert_eq!(options.fail_after_points, Some(2));
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.resume, None);
        assert_eq!(defaults.retries, 1);
        assert_eq!(defaults.fail_after_points, None);
        assert!(!defaults.shutdown.is_cancelled());
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--retries", "many"]).is_err());
        assert!(parse(&["--fail-after-points", "0"]).is_err());
    }

    fn temp_out_dir(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("wormsim-bench-{}-{name}", std::process::id()))
            .display()
            .to_string()
    }

    fn tiny_spec() -> FigureSpec {
        let mut spec = presets::fig3();
        spec.loads = vec![0.1, 0.3];
        spec.algorithms = vec![
            wormsim::AlgorithmKind::Ecube,
            wormsim::AlgorithmKind::PositiveHop,
        ];
        spec
    }

    fn complete(run: FigureRun) -> Vec<RunResult> {
        match run {
            FigureRun::Complete(results) => results,
            FigureRun::Interrupted { .. } => panic!("sweep unexpectedly interrupted"),
        }
    }

    #[test]
    fn harness_runs_a_tiny_figure() {
        // A reduced fig3: two algorithms, two loads, quick schedule.
        let spec = tiny_spec();
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("tiny-figure"),
            threads: 4,
            ..HarnessOptions::default()
        };
        let results = complete(run_figure(&spec, &options).expect("all points run"));
        assert_eq!(results.len(), 4);
        // Ordering: algorithm-major, load-minor.
        assert_eq!(results[0].algorithm, "ecube");
        assert!((results[0].offered_load - 0.1).abs() < 1e-12);
        assert_eq!(results[3].algorithm, "phop");
        assert!((results[3].offered_load - 0.3).abs() < 1e-12);
        let path = write_csv("test", &results, &options.out_dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(peak_utilization(&results, "phop") > 0.2);
        assert!(latency_at(&results, "ecube", 0.1) > 15.0);
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn sweep_error_names_the_first_failing_point() {
        // Load 9.0 is invalid, so the second point of each series fails.
        // One worker thread makes "first error wins" exact: index 1.
        let mut spec = tiny_spec();
        spec.loads = vec![0.1, 9.0];
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            threads: 1,
            out_dir: temp_out_dir("first-failure"),
            ..HarnessOptions::default()
        };
        let harness_error =
            run_figure(&spec, &options).expect_err("invalid load must fail the sweep");
        let HarnessError::Sweep(error) = harness_error else {
            panic!("expected a sweep error, got: {harness_error}");
        };
        assert_eq!(error.index, 1);
        assert_eq!(error.algorithm, "ecube");
        assert!((error.offered_load - 9.0).abs() < 1e-12);
        assert!(matches!(
            error.source,
            wormsim::ExperimentError::InvalidLoad { .. }
        ));
        let message = error.to_string();
        assert!(message.contains("ecube"), "got: {message}");
        assert!(message.contains('9'), "got: {message}");
        use std::error::Error as _;
        assert!(error.source().is_some());
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn injected_panic_is_isolated_and_recorded() {
        // One point panics; the sweep must still complete, with the panic
        // rendered as a Harness outcome rather than poisoning the pool.
        // retries: 0 so the panic is recorded on the first attempt.
        let spec = tiny_spec();
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("inject-panic"),
            threads: 2,
            retries: 0,
            inject_panic: Some(2),
            ..HarnessOptions::default()
        };
        let results = complete(run_figure(&spec, &options).expect("panic must not fail sweep"));
        assert_eq!(results.len(), 4);
        let RunOutcome::Harness(info) = &results[2].outcome else {
            panic!(
                "expected a harness panic outcome, got {:?}",
                results[2].outcome
            );
        };
        assert!(info.message.contains("injected"), "got: {}", info.message);
        assert_eq!(
            results[2].samples, 0,
            "panicked point carries no statistics"
        );
        for (i, r) in results.iter().enumerate() {
            if i != 2 {
                assert!(r.outcome.has_statistics(), "point {i} ran normally");
            }
        }
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn transient_panic_is_retried_until_attempts_exhaust() {
        // The injection fires on every attempt of point 1, so with two
        // retries the point is tried 3 times (with backoff between), ends
        // as a Harness outcome, and the attempt count is recorded.
        let spec = tiny_spec();
        let experiments = wormsim::presets::experiments_for(&spec, MeasurementSchedule::quick(), 5);
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("retry"),
            threads: 1,
            retries: 2,
            inject_panic: Some(1),
            ..HarnessOptions::default()
        };
        let run = run_experiments(&experiments, &options, "retry.journal.jsonl", true).unwrap();
        assert!(!run.interrupted);
        assert_eq!(run.resumed, 0);
        assert_eq!(run.attempts[1], 3, "retries exhausted: 1 try + 2 retries");
        assert!(run
            .attempts
            .iter()
            .enumerate()
            .all(|(i, &a)| i == 1 || a == 1));
        let Some(Ok(result)) = &run.outcomes[1] else {
            panic!("point 1 must carry a result");
        };
        assert!(matches!(result.outcome, RunOutcome::Harness(_)));
        // The journaled entry remembers the attempts too.
        let journal = Journal::load(&run.journal).unwrap();
        let entry = journal
            .get(&experiments[1].point_hash())
            .expect("point 1 journaled");
        assert_eq!(entry.attempts, 3);
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn pre_tripped_shutdown_interrupts_before_dispatch() {
        let spec = tiny_spec();
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("pre-tripped"),
            threads: 2,
            ..HarnessOptions::default()
        };
        options.shutdown.cancel();
        match run_figure(&spec, &options).expect("interruption is not an error") {
            FigureRun::Interrupted {
                partial,
                completed,
                total,
                journal,
            } => {
                assert!(partial.is_empty());
                assert_eq!(completed, 0);
                assert_eq!(total, 4);
                assert!(journal.exists(), "journal path must exist for the hint");
            }
            FigureRun::Complete(_) => panic!("pre-tripped shutdown must interrupt"),
        }
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn resume_skips_journaled_points_and_matches_clean_run() {
        let spec = tiny_spec();
        let out_dir = temp_out_dir("resume-unit");
        let base = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: out_dir.clone(),
            threads: 1,
            ..HarnessOptions::default()
        };
        // Clean reference run.
        let clean = complete(run_figure(&spec, &base).expect("clean run"));
        let journal_path = Path::new(&out_dir).join("fig3.journal.jsonl");
        assert!(journal_path.exists());

        // Truncate the journal to its first two points (simulated crash),
        // then resume: the two journaled points are spliced, two re-run.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&journal_path, truncated).unwrap();
        let resumed_options = HarnessOptions {
            resume: Some(journal_path.display().to_string()),
            ..base
        };
        let resumed = complete(run_figure(&spec, &resumed_options).expect("resumed run"));
        assert_eq!(
            format_sweep_csv(&clean),
            format_sweep_csv(&resumed),
            "resumed sweep must be byte-identical to the clean run"
        );
        // The journal is whole again after the resume.
        let journal = Journal::load(&journal_path).unwrap();
        assert_eq!(journal.len(), 4);
        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let a = backoff_ms("abc123", 1);
        assert_eq!(a, backoff_ms("abc123", 1), "same inputs, same backoff");
        assert_ne!(
            backoff_ms("abc123", 1),
            backoff_ms("def456", 1),
            "different points jitter differently"
        );
        for attempt in 1..=10 {
            let ms = backoff_ms("abc123", attempt);
            assert!((25..=25 * 32 + 63).contains(&(ms as usize)), "got {ms}");
        }
    }
}
